//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic property-testing harness exposing the same
//! names its tests already call: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range / tuple / [`Just`] /
//! `prop::collection::vec` / [`prop_oneof!`] strategies, `prop_map`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `prop::num::f32::NORMAL`.
//!
//! Differences from upstream proptest: sampling is seeded from the test
//! name (fully deterministic across runs — failures always reproduce),
//! and there is **no shrinking**; a failing case reports the values it
//! drew instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 stream used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the generated tests use their own
    /// fully-qualified name, so every test gets a distinct, stable
    /// stream).
    pub fn from_test_name(name: &str) -> TestRng {
        // FNV-1a over the name, then one splitmix round to spread it.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`; `lo` on an empty range.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of test values. Object-safe: `prop_map` carries a
/// `Sized` bound so `Box<dyn Strategy<Value = V>>` works (that is what
/// [`prop_oneof!`] builds).
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f` (same name as proptest).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------

/// Mirror of proptest's `prop` module tree (only the paths this
/// workspace uses).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a size specification for [`vec`].
        pub trait SizeRange {
            /// `(min, max_exclusive)` bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl SizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        // By-value `size` mirrors upstream proptest's signature.
        #[allow(clippy::needless_pass_by_value)]
        pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            assert!(min < max, "empty vec size range");
            VecStrategy { element, min, max }
        }

        /// Output of [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.usize_in(self.min, self.max);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Numeric bit-pattern strategies.
    pub mod num {
        /// `f32` strategies.
        pub mod f32 {
            use crate::{Strategy, TestRng};

            /// Strategy over all *normal* `f32` values (no zeros,
            /// subnormals, infinities, or NaNs), uniform over bit
            /// patterns like upstream proptest.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF32;

            impl Strategy for NormalF32 {
                type Value = f32;

                fn sample(&self, rng: &mut TestRng) -> f32 {
                    loop {
                        let v = f32::from_bits(rng.next_u64() as u32);
                        if v.is_normal() {
                            return v;
                        }
                    }
                }
            }

            /// The normal-floats strategy constant.
            pub const NORMAL: NormalF32 = NormalF32;
        }
    }
}

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Per-test configuration (only the field this workspace sets).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — draw a fresh case.
    Reject(String),
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection (assumption not met).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// One import for everything, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests (same surface syntax as proptest's macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( cfg = ($cfg:expr);
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_test_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __strategies = ( $( $strat, )* );
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    #[allow(unused_variables)]
                    let ( $( ref $arg, )* ) = __strategies;
                    $( let $arg = $crate::Strategy::sample($arg, &mut __rng); )*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 100_000,
                                "prop_assume! rejected too many cases: {}",
                                __why
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {} failed: {}", __passed, __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Boolean assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __l,
                __r,
            )));
        }
    }};
}

/// Inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_ne failed: {} == {} ({:?})",
                stringify!($a),
                stringify!($b),
                __l,
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec![$( ::std::boxed::Box::new($s), )+];
        $crate::Union::new(__options)
    }};
}

// ---------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = TestRng::from_test_name("bounds");
        let ints = 3u64..17;
        let floats = -2.0f64..2.0;
        let vecs = prop::collection::vec(0u32..10, 2..6);
        for _ in 0..1000 {
            let i = ints.sample(&mut rng);
            assert!((3..17).contains(&i));
            let f = floats.sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let v = vecs.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let mut rng = TestRng::from_test_name("compose");
        let s = prop_oneof![Just(0u64), (1u64..5, 1u64..5).prop_map(|(a, b)| a + b),];
        let mut seen_zero = false;
        let mut seen_sum = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                0 => seen_zero = true,
                2..=8 => seen_sum = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen_zero && seen_sum);
    }

    #[test]
    fn normal_f32_is_normal() {
        let mut rng = TestRng::from_test_name("normal");
        for _ in 0..1000 {
            assert!(prop::num::f32::NORMAL.sample(&mut rng).is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_test_name("same");
        let mut b = TestRng::from_test_name("same");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, assertions and assumptions work.
        #[test]
        fn macro_end_to_end(a in 1u64..100, xs in prop::collection::vec(0i32..10, 0..4)) {
            prop_assume!(a != 13);
            prop_assert!(a >= 1);
            prop_assert_eq!(xs.len(), xs.iter().filter(|&&x| x < 10).count());
            prop_assert_ne!(a, 0);
        }
    }
}
