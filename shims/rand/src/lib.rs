//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of exactly the API
//! surface its code calls: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges, and [`Rng::gen_bool`].
//!
//! The generator core is xoshiro256** seeded through splitmix64 — not
//! the upstream ChaCha-based `StdRng`, so streams differ from real
//! `rand`, but every consumer in this workspace only relies on
//! *determinism given a seed* and reasonable statistical quality, both
//! of which hold.

use std::ops::Range;

/// Seedable generators (the one constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, generic over the value type via [`SampleUniform`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range,
    /// matching `rand`'s contract.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_raw(), range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        u64_to_unit_f64(self.next_raw()) < p.clamp(0.0, 1.0)
    }
}

/// The raw 64-bit source behind [`Rng`].
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_raw(&mut self) -> u64;
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform f64 in [0, 1).
#[inline(always)]
fn u64_to_unit_f64(x: u64) -> f64 {
    // 53 mantissa bits give the densest uniform grid in [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `range` using 64 random bits.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let u = u64_to_unit_f64(bits) as $t;
                let v = range.start + (range.end - range.start) * u;
                // Floating rounding can land exactly on `end`; the
                // half-open contract excludes it.
                if v >= range.end {
                    <$t>::from_bits(range.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    };
}

impl_sample_float!(f32);
impl_sample_float!(f64);

macro_rules! impl_sample_int {
    ($t:ty, $wide:ty) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Multiply-shift reduction: negligible modulo bias for
                // the spans this workspace draws from.
                let off = ((bits as u128 * span as u128) >> 64) as $wide;
                (range.start as $wide).wrapping_add(off) as $t
            }
        }
    };
}

impl_sample_int!(u8, u64);
impl_sample_int!(u16, u64);
impl_sample_int!(u32, u64);
impl_sample_int!(u64, u64);
impl_sample_int!(usize, u64);
impl_sample_int!(i32, i64);
impl_sample_int!(i64, i64);

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; see the crate docs for the differences).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_raw(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 60)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y = r.gen_range(-0.05f32..0.05);
            assert!((-0.05..0.05).contains(&y));
            let n = r.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert_eq!((0..1000).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..1000).filter(|_| r.gen_bool(1.0)).count(), 1000);
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
