//! Overload scenario (Lesson 10 at fleet scale): offer a server more
//! load than its SLO-derived capacity and compare two policies — serve
//! everything (goodput collapses past saturation) vs shed expired
//! requests with admission control and retries (goodput plateaus).
//!
//! BERT0 is profiled **once** (compile + cycle simulation); each sweep
//! point then replicates the discrete-event run across several arrival
//! seeds in parallel (`TPU_SIM_THREADS` caps the workers) and prints
//! the canonical seed's numbers with a ±95% confidence interval.
//!
//! ```text
//! cargo run --release --example overload_sweep
//! ```

use tpu_bench::multiseed::{Envelope, MultiSeedRunner};
use tpugen::core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpugen::prelude::*;

const REPLICATIONS: usize = 5;

fn main() {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    println!(
        "app {} on {}: p99 SLO {} ms",
        app.spec.name, chip.name, app.spec.slo_p99_ms
    );

    let profiled =
        ProfiledApp::new(&app, &chip, &options).expect("BERT0 profiles; sweep config is valid");
    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    println!(
        "profiled once; {REPLICATIONS} seeded replications per point on up to {} threads",
        tpu_par::num_threads()
    );

    for shedding in [false, true] {
        println!(
            "\npolicy: {}",
            if shedding {
                "shed expired + queue cap + 1 retry"
            } else {
                "serve every request (no protection)"
            }
        );
        for factor in [0.5, 0.8, 1.0, 1.2, 1.5, 2.0] {
            let reps = runner.run(|seed| {
                let p = profiled
                    .overload_point(factor, shedding, 4000, seed)
                    .expect("sweep config is valid");
                assert!(p.report.conservation_holds());
                p
            });
            let goodput = Envelope::from_samples(
                &reps
                    .iter()
                    .map(|p| p.report.goodput_rps)
                    .collect::<Vec<_>>(),
            );
            let p = &reps[0];
            let r = &p.report;
            println!(
                "  load {:>3.0}% ({:>5.0} rps offered): goodput {:>5.0}/s (mean {}), \
                 thpt {:>5.0}/s, shed {:>4}, retries {:>4}, late {:>4}, p99 {:>6.2} ms",
                factor * 100.0,
                p.offered_rps,
                r.goodput_rps,
                goodput.pm(0),
                r.throughput_rps,
                r.shed,
                r.metrics.retries.get(),
                r.metrics.completed_late.get(),
                r.p99_s * 1e3,
            );
        }
    }
    println!(
        "\nwithout shedding the server keeps serving requests that already \
         blew the SLO,\nso goodput collapses past saturation; shedding turns \
         the cliff into a plateau."
    );
}
