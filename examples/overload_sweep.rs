//! Overload scenario (Lesson 10 at fleet scale): offer a server more
//! load than its SLO-derived capacity and compare two policies — serve
//! everything (goodput collapses past saturation) vs shed expired
//! requests with admission control and retries (goodput plateaus).
//!
//! ```text
//! cargo run --release --example overload_sweep
//! ```

use tpugen::core::slo_operating_point_under_overload;
use tpugen::prelude::*;

fn main() {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    println!(
        "app {} on {}: p99 SLO {} ms",
        app.spec.name, chip.name, app.spec.slo_p99_ms
    );

    for shedding in [false, true] {
        println!(
            "\npolicy: {}",
            if shedding {
                "shed expired + queue cap + 1 retry"
            } else {
                "serve every request (no protection)"
            }
        );
        for factor in [0.5, 0.8, 1.0, 1.2, 1.5, 2.0] {
            let p =
                slo_operating_point_under_overload(&app, &chip, &options, factor, shedding, 4000)
                    .expect("BERT0 profiles; sweep config is valid");
            let r = &p.report;
            assert!(r.conservation_holds());
            println!(
                "  load {:>3.0}% ({:>5.0} rps offered): goodput {:>5.0}/s, thpt {:>5.0}/s, \
                 shed {:>4}, retries {:>4}, late {:>4}, p99 {:>6.2} ms",
                factor * 100.0,
                p.offered_rps,
                r.goodput_rps,
                r.throughput_rps,
                r.shed,
                r.metrics.retries.get(),
                r.metrics.completed_late.get(),
                r.p99_s * 1e3,
            );
        }
    }
    println!(
        "\nwithout shedding the server keeps serving requests that already \
         blew the SLO,\nso goodput collapses past saturation; shedding turns \
         the cliff into a plateau."
    );
}
