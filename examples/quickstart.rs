//! Quickstart: compile a production model for TPUv4i and simulate one
//! inference batch.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpugen::prelude::*;

fn main() {
    // 1. Pick a chip from the generation catalog (the paper's Table 1).
    let chip = catalog::tpu_v4i();
    println!("chip: {chip}");

    // 2. Build a production app's HLO graph at a batch size.
    let app = zoo::bert0();
    let graph = app.build(4).expect("BERT0 builds at batch 4");
    println!(
        "model: {} — {:.1}M params, {:.2} GFLOP/batch",
        graph.name(),
        graph.weight_count() as f64 / 1e6,
        graph.flops() as f64 / 1e9
    );

    // 3. Compile: fusion, CMEM placement, tiling, double buffering.
    let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
    println!("compiled: {exe}");

    // 4. Simulate the step plan on the chip.
    let report = Simulator::new(chip).run(exe.plan()).expect("simulates");
    println!("{report}");
    println!(
        "=> {:.2} ms/batch, {:.0} inferences/s, {:.1} GFLOPS/W",
        report.seconds * 1e3,
        4.0 / report.seconds,
        report.gflops_per_watt()
    );
}
