//! Serving scenario (Lesson 10): find the batch size an application's
//! p99 SLO admits, then simulate a serving day at increasing load and
//! watch the tail.
//!
//! ```text
//! cargo run --release --example serving_sweep
//! ```

use tpugen::prelude::*;
use tpugen::serving::des::{simulate, ServingConfig};
use tpugen::serving::slo::{max_batch_within_slo, max_throughput_under_slo};

fn main() {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let slo_s = app.spec.slo_p99_ms / 1e3;
    println!(
        "app {} on {}: p99 SLO {} ms",
        app.spec.name, chip.name, app.spec.slo_p99_ms
    );

    // Profile latency vs batch through the compiler + simulator.
    let model = LatencyModel::profile(&app, &chip, &CompilerOptions::default(), &[1, 4, 16, 64])
        .expect("profiles");
    for &(b, t) in model.points() {
        println!("  batch {b:>3}: {:.2} ms service latency", t * 1e3);
    }

    // The SLO picks the batch (Lesson 10), not memory size.
    let cap = max_batch_within_slo(&model, slo_s, 256).unwrap_or(1);
    println!("largest batch within SLO: {cap}");

    // Load sweep: p99 vs arrival rate.
    let capacity = model.throughput(cap);
    for frac in [0.3, 0.6, 0.8, 0.95] {
        let report = simulate(
            &model,
            &ServingConfig {
                arrival_rate_rps: capacity * frac,
                max_batch: cap,
                batch_timeout_s: slo_s * 0.1,
                requests: 4000,
                seed: 3,
            },
        )
        .expect("valid serving config");
        println!(
            "  load {:>3.0}%: p50 {:.2} ms, p99 {:.2} ms, mean batch {:.1} ({})",
            frac * 100.0,
            report.p50_s * 1e3,
            report.p99_s * 1e3,
            report.mean_batch,
            if report.p99_s <= slo_s {
                "meets SLO"
            } else {
                "VIOLATES SLO"
            },
        );
    }

    // And the headline number: max sustainable throughput under the SLO.
    let best = max_throughput_under_slo(&model, slo_s, cap, 4000, 3);
    println!(
        "max throughput under {} ms p99: {:.0} inferences/s",
        app.spec.slo_p99_ms, best.max_rps
    );
}
