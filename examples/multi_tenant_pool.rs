//! Multi-tenant serving pool (Lesson 7): several models share one chip.
//! While every tenant's weights fit HBM, switching is free; one tenant
//! too many and the pool falls off a cliff (weight swaps over the host
//! link dominate the tail).
//!
//! ```text
//! cargo run --release --example multi_tenant_pool
//! ```

use tpugen::prelude::*;
use tpugen::serving::multitenant::{simulate_tenants, MultiTenantConfig, Tenant};

fn main() {
    let chip = catalog::tpu_v4i();
    println!(
        "pool on {}: HBM {} GiB, host link 16 GB/s\n",
        chip.name,
        chip.hbm.capacity_bytes >> 30
    );

    // Profile one real model; every tenant serves a copy of it.
    let model = LatencyModel::profile(
        &zoo::mlp0(),
        &chip,
        &CompilerOptions::default(),
        &[1, 8, 32],
    )
    .expect("profiles");
    let weights_per_tenant: u64 = (1.75 * (1u64 << 30) as f64) as u64;

    println!(
        "{:>8} {:>13} {:>7} {:>14} {:>10}",
        "tenants", "all resident", "swaps", "worst p99 ms", "inf/s"
    );
    for n in [1usize, 2, 3, 4, 5, 6, 8] {
        let tenants: Vec<Tenant> = (0..n)
            .map(|i| Tenant {
                name: format!("model-{i}"),
                latency: model.clone(),
                weight_bytes: weights_per_tenant,
                arrival_rate_rps: 400.0,
            })
            .collect();
        let report = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
        println!(
            "{:>8} {:>13} {:>7} {:>14.2} {:>10.0}",
            n,
            if report.all_resident { "yes" } else { "NO" },
            report.swaps,
            report.worst_p99_s() * 1e3,
            report.throughput_rps,
        );
    }
    println!(
        "\nFour 1.75 GiB tenants fit TPUv4i's 8 GiB HBM; the fifth starts \
         swapping and the tail collapses — why inference chips need memory \
         headroom for multi-tenancy (Lesson 7)."
    );
}
