//! Autoregressive LLM serving on one TPUv4i replica (E25's engine,
//! standalone): a 2 GiB int8 decoder streams its weights from HBM every
//! decode step, KV-cache competes for the remaining HBM, and the sweep
//! compares **static** vs **continuous** batching from under- to
//! overload.
//!
//! Each (load, mode) point replicates the decode-loop run across
//! several arrival/token seeds in parallel (`TPU_SIM_THREADS` caps the
//! workers); ±95% CIs quantify the seed noise.
//!
//! ```text
//! cargo run --release --example llm_serving           # full sweep
//! cargo run --release --example llm_serving -- --quick  # CI smoke
//! ```
//!
//! Exits nonzero if any run violates per-token conservation
//! (`tokens_generated == Σ completed outputs`, every arrival completed)
//! or if recording telemetry perturbs the simulation.

use tpu_bench::experiments::generation::{v4i_generation_setup, REPLICATIONS};
use tpu_bench::multiseed::{Envelope, MultiSeedRunner};
use tpu_core::DEFAULT_SWEEP_SEED;
use tpu_serving::des::{simulate_generation, simulate_generation_recorded, BatchingMode};
use tpu_telemetry::Recorder;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut setup = v4i_generation_setup();
    if quick {
        setup.base.requests = 200;
    }
    let gib = 1024.0 * 1024.0 * 1024.0;
    println!(
        "2 GiB int8 decoder on TPUv4i: {:.1} GiB HBM for KV-cache, batch cap {}, \
         TTFT SLO {} ms, est. capacity {:.1} req/s",
        setup.base.kv_capacity_bytes as f64 / gib,
        setup.base.max_batch,
        setup.base.ttft_slo_s.expect("fixture sets an SLO") * 1e3,
        setup.capacity_rps,
    );
    println!(
        "{} requests per run, {REPLICATIONS} seeded replications per point on up to {} threads\n",
        setup.base.requests,
        tpu_par::num_threads()
    );

    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let load_factors: &[f64] = if quick {
        &[0.8, 1.8]
    } else {
        &[0.6, 1.0, 1.5, 2.0]
    };
    for mode in [BatchingMode::Static, BatchingMode::Continuous] {
        println!(
            "{} batching:",
            match mode {
                BatchingMode::Static => "static",
                BatchingMode::Continuous => "continuous",
            }
        );
        for &factor in load_factors {
            let reps = runner.run(|seed| {
                let mut cfg = setup.base;
                cfg.mode = mode;
                cfg.seed = seed;
                cfg.arrival_rate_rps = factor * setup.capacity_rps;
                let r = simulate_generation(&setup.lat, &cfg).expect("sweep config is valid");
                assert!(
                    r.conservation_holds(),
                    "per-token conservation violated (seed {seed}): \
                     {} arrivals vs {} completed, {} tokens vs {} outputs",
                    r.arrivals,
                    r.completed,
                    r.metrics.tokens_generated.get(),
                    r.output_tokens,
                );
                r
            });
            let goodput =
                Envelope::from_samples(&reps.iter().map(|r| r.goodput_rps).collect::<Vec<_>>());
            let ttft = Envelope::from_samples(
                &reps.iter().map(|r| r.p99_ttft_s * 1e3).collect::<Vec<_>>(),
            );
            let r = &reps[0];
            println!(
                "  {factor:>3.1}x load: goodput {:>5.1}/s (mean {}), p99 TTFT {:>6.0} ms \
                 (mean {}), p99 TPOT {:>5.2} ms, {:>5.0} tok/s, kv defers {:>4}, \
                 peak KV {:.2} GiB",
                r.goodput_rps,
                goodput.pm(1),
                r.p99_ttft_s * 1e3,
                ttft.pm(0),
                r.p99_tpot_s * 1e3,
                r.tokens_per_s,
                r.metrics.kv_deferrals.get(),
                r.kv_peak_bytes as f64 / gib,
            );
        }
    }
    println!("\nper-token conservation held across every run");

    // The derived-only contract, demonstrated on one overloaded point:
    // attaching a recorder must not change a single bit of the report.
    let mut cfg = setup.base;
    cfg.mode = BatchingMode::Continuous;
    cfg.arrival_rate_rps = 1.8 * setup.capacity_rps;
    let plain = simulate_generation(&setup.lat, &cfg).expect("valid config");
    let mut rec = Recorder::with_capacity(1 << 20);
    let recorded = simulate_generation_recorded(&setup.lat, &cfg, &mut rec).expect("valid config");
    assert_eq!(plain, recorded, "telemetry perturbed the simulation");
    assert_eq!(rec.counter("complete"), recorded.completed as u64);
    println!(
        "derived-only: recorded report bit-identical ({} events, {} decode steps)",
        rec.len(),
        rec.counter("decode_step"),
    );
}
