//! Execution-timeline example: trace a compiled model through the
//! simulator and render a Gantt chart of every unit — the quickest way
//! to *see* whether a model is memory- or compute-bound and what double
//! buffering buys.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use tpugen::prelude::*;

fn main() {
    let chip = catalog::tpu_v4i();
    let graph = zoo::rnn0().build(8).expect("builds");
    let sim = Simulator::new(chip.clone());

    for (label, options) in [
        (
            "without double buffering (O1)",
            CompilerOptions::level(OptLevel::O1),
        ),
        ("full pipeline (O3)", CompilerOptions::default()),
    ] {
        let exe = compile(&graph, &chip, &options).expect("compiles");
        let (report, trace) = sim.run_traced(exe.plan()).expect("simulates");
        println!("== RNN0 batch 8 on {}, {label} ==", chip.name);
        println!(
            "{:.3} ms, mxu {:.0}%, dma {:.0}%, hbm {:.0}%, cmem {:.0}%",
            report.seconds * 1e3,
            report.utilization(tpugen::sim::Resource::Mxu) * 100.0,
            report.utilization(tpugen::sim::Resource::Dma) * 100.0,
            report.utilization(tpugen::sim::Resource::HbmChannel) * 100.0,
            report.utilization(tpugen::sim::Resource::CmemChannel) * 100.0,
        );
        assert_eq!(trace.find_overlap(), None, "schedule must be consistent");
        println!("{}", trace.render_gantt(100));
    }
}
