//! Pod scale-out: serving BERT1 on 1–4 TPUv4i chips two ways —
//! pipeline parallelism (split the layers) vs data parallelism (split
//! the batch) — over the board's ICI ring.
//!
//! ```text
//! cargo run --release --example pod_scaleout
//! ```

use tpugen::arch::IciTopology;
use tpugen::core::multichip::{simulate_data_parallel, simulate_pipeline};
use tpugen::prelude::*;
use tpugen::workloads::zoo::{self, BERT1_CONFIG};

fn main() {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let batch = 8;
    println!(
        "BERT1 (batch {batch}) on TPUv4i pods; chip has {} ICI links at {} GB/s\n",
        chip.ici_links, chip.ici_gbps
    );

    println!("pipeline parallelism (split layers; throughput scales):");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>16}",
        "chips", "topology", "latency ms", "batches/s", "weights in CMEM"
    );
    let hop = zoo::bert_stage_activation_bytes(&BERT1_CONFIG, batch, DType::Bf16);
    for chips in [1u64, 2, 4] {
        let stages =
            zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, chips).expect("stages build");
        let r = simulate_pipeline(&stages, &chip, &options, hop).expect("simulates");
        println!(
            "{:>6} {:>10} {:>12.2} {:>12.0} {:>15.0}%",
            chips,
            IciTopology::recommended(chips as u32).to_string(),
            r.latency_s * 1e3,
            r.batches_per_sec,
            r.cmem_fraction * 100.0
        );
    }

    println!("\ndata parallelism (split batch; latency drops):");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "chips", "topology", "latency ms", "batches/s", "gather us"
    );
    for chips in [1u64, 2, 4] {
        let r = simulate_data_parallel(&zoo::bert1(), &chip, &options, chips, batch)
            .expect("simulates");
        println!(
            "{:>6} {:>10} {:>12.2} {:>12.0} {:>12.1}",
            chips,
            r.topology.to_string(),
            r.latency_s * 1e3,
            r.batches_per_sec,
            r.gather_seconds * 1e6
        );
    }
    println!(
        "\nPipelining pools CMEM (weights shard across chips); data \
         parallelism replicates weights but cuts per-inference latency — \
         the two tools a TPUv4i board offers (see E15)."
    );
}
