//! Generation shootout (the E5 story): run one production app across
//! TPUv2, TPUv3, TPUv4i and the GPU baseline, comparing latency,
//! throughput and perf/Watt — recompiling the *same* HLO graph for each
//! target (Lesson 2: compiler compatibility).
//!
//! ```text
//! cargo run --release --example generation_shootout [app]
//! ```

use tpugen::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "MLP0".to_owned());
    let app = production_apps()
        .into_iter()
        .find(|a| a.spec.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown app `{name}`, using MLP0");
            zoo::mlp0()
        });
    let batch = 16;
    println!(
        "{} at batch {batch} across the generations:\n",
        app.spec.name
    );
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>10} {:>12}",
        "chip", "dtype", "latency ms", "inf/s", "avg W", "inf/J"
    );

    for chip in catalog::inference_comparison_set() {
        // Serve int8 where quality allows and the chip supports it.
        let dtype = if app.spec.int8_servable && chip.native_types.contains(&DType::Int8) {
            DType::Int8
        } else {
            DType::Bf16
        };
        let graph = app.build_with(batch, dtype).expect("builds");
        let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
        let report = Simulator::new(chip.clone())
            .run(exe.plan())
            .expect("simulates");
        println!(
            "{:<8} {:>6} {:>12.3} {:>12.0} {:>10.0} {:>12.2}",
            chip.name,
            dtype.to_string(),
            report.seconds * 1e3,
            batch as f64 / report.seconds,
            report.average_watts(),
            batch as f64 / report.energy_joules,
        );
    }

    // The binary-compatibility lesson, demonstrated on the side: the
    // TPUv3 binary from this same graph does not load on TPUv4i.
    let graph = app.build(batch).expect("builds");
    let v3_exe =
        compile(&graph, &catalog::tpu_v3(), &CompilerOptions::no_cmem()).expect("compiles");
    let bytes = v3_exe.binary().expect("encodes");
    match tpugen::isa::decode(&bytes, Generation::TpuV4i) {
        Err(e) => println!("\nTPUv3 binary on TPUv4i: {e}"),
        Ok(_) => unreachable!("cross-generation decode must fail"),
    }
}
