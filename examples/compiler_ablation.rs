//! Compiler ablation (Lesson 2 / E7): the same model, compiled with the
//! optimization passes enabled one at a time — the "XLA gains over time"
//! story, plus the backwards-ML-compatibility mode (Lesson 4 / E14).
//!
//! ```text
//! cargo run --release --example compiler_ablation
//! ```

use tpugen::prelude::*;

fn main() {
    let chip = catalog::tpu_v4i();
    let app = zoo::rnn0();
    let graph = app.build(8).expect("builds");
    let sim = Simulator::new(chip.clone());
    println!("{} at batch 8 on {}:\n", app.spec.name, chip.name);

    let mut baseline = None;
    for level in OptLevel::ALL {
        let exe = compile(&graph, &chip, &CompilerOptions::level(level)).expect("compiles");
        let report = sim.run(exe.plan()).expect("simulates");
        let t0 = *baseline.get_or_insert(report.seconds);
        println!(
            "{:?}: {:>8.3} ms  ({:.2}x vs O0)  [{} steps, {} VLIW bundles, {:.0}% weights in CMEM]",
            level,
            report.seconds * 1e3,
            t0 / report.seconds,
            exe.plan().len(),
            exe.program().len(),
            exe.memory().cmem_fraction() * 100.0,
        );
    }

    // Backwards ML compatibility: reproduce TPUv1's 256-wide
    // accumulation order bit-exactly, at a small cost.
    let compat = CompilerOptions {
        bit_exact_with: Some(Generation::TpuV1),
        ..CompilerOptions::default()
    };
    let native = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
    let exact = compile(&graph, &chip, &compat).expect("compiles");
    let t_native = sim.run(native.plan()).expect("simulates").seconds;
    let t_exact = sim.run(exact.plan()).expect("simulates").seconds;
    println!(
        "\nbit-exact TPUv1 numerics on TPUv4i: {:.3} ms vs {:.3} ms native \
         ({:.2}x) — accumulation order {:?}",
        t_exact * 1e3,
        t_native * 1e3,
        t_exact / t_native,
        exact.accum_order(),
    );
}
