//! VLIW playground: write TPU assembly by hand, assemble it, execute it
//! on the functional interpreter, and watch the per-generation binary
//! encodings refuse to cross (Lesson 2 at the instruction level).
//!
//! ```text
//! cargo run --release --example vliw_playground
//! ```

use tpugen::isa::asm::assemble;
use tpugen::isa::interp::{InterpConfig, Interpreter};
use tpugen::isa::{decode, encode};
use tpugen::prelude::*;

const SOURCE: &str = "\
; 4x4 matmul on the MXU: weights at vmem[0], activations at vmem[16],
; results to vmem[64], then a ReLU over the first result vector.
s.li s12, 0
s.li s13, 16
s.li s14, 64
m.push 0
m.mm 0, 4
m.pop 0
s.li s0, 64
v.ld v1, s0
v.relu v2, v1
s.li s0, 128 | v.st v2, s0   ; scalar slot reads pre-bundle s0
s.halt
";

fn main() {
    // 1. One assembly source...
    println!("source:\n{SOURCE}");
    let program = assemble(SOURCE, Generation::TpuV4i).expect("assembles");
    program.verify().expect("verifies");
    println!(
        "assembled: {} bundles, mean occupancy {:.2} slots",
        program.len(),
        program.stats().mean_occupancy()
    );

    // 2. ...executes functionally on the interpreter.
    let mut m = Interpreter::new(InterpConfig::default());
    let weights: Vec<f32> = (0..16)
        .map(|i| if i % 5 == 0 { 1.0 } else { -0.25 })
        .collect();
    let acts: Vec<f32> = (0..16).map(|i| i as f32).collect();
    m.write_mem(MemLevel::Vmem, 0, &weights).expect("in range");
    m.write_mem(MemLevel::Vmem, 16, &acts).expect("in range");
    let stats = m.run(&program).expect("executes");
    println!(
        "executed {} bundles, {} MACs; relu(result row 0) = {:?}",
        stats.bundles_executed,
        stats.macs,
        m.read_mem(MemLevel::Vmem, 128, 4).expect("in range"),
    );

    // 3. The binary is generation-specific.
    let bytes = encode(&program).expect("encodes");
    println!("\nTPUv4i binary: {} bytes", bytes.len());
    for generation in [Generation::TpuV3, Generation::TpuV1, Generation::GpuT4Like] {
        match decode(&bytes, generation) {
            Err(e) => println!("  decode as {generation}: {e}"),
            Ok(_) => unreachable!("cross-generation decode must fail"),
        }
    }
    // The same *source* retargets fine — that's the compatibility that
    // actually matters (Lesson 2).
    let for_v3 = assemble(SOURCE, Generation::TpuV3).expect("assembles");
    println!(
        "  same source assembled for TPUv3: {} bundles, verifies: {}",
        for_v3.len(),
        for_v3.verify().is_ok()
    );
}
