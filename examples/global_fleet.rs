//! Planet-scale fleet demo (E27's engine, standalone): three serving
//! cells behind a geo load-balancer riding a diurnal traffic cycle with
//! a flash crowd — then one cell suffers a full correlated outage.
//!
//! BERT0 is profiled **once**; both policy arms (serve-through vs
//! geo-failover + autoscaling) then run the identical traffic and fault
//! schedule across several seeds, so the gap is pure control-plane
//! value with arrival noise quantified by the ±95% CI.
//!
//! ```text
//! cargo run --release --example global_fleet            # full run
//! cargo run --release --example global_fleet -- --quick # CI smoke
//! ```
//!
//! Exits nonzero if any run violates global request conservation
//! (`arrivals == completed + shed + dropped + failed`, with redirects
//! reconciled per cell).

use tpu_bench::multiseed::{Envelope, MultiSeedRunner};
use tpugen::core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpugen::prelude::*;
use tpugen::serving::fleet::{
    simulate_global, AutoscalerConfig, Cell, CellFault, CellFaultKind, GeoPolicy, GlobalConfig,
    GlobalReport, TrafficModel,
};

const REPLICATIONS: usize = 5;
const CELLS: usize = 3;
const SERVERS_PER_CELL: usize = 3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();

    let profiled =
        ProfiledApp::new(&app, &chip, &options).expect("BERT0 profiles; config is valid");
    let cap = profiled.capacity_rps();
    let fleet_cap = cap * (CELLS * SERVERS_PER_CELL) as f64;

    // Size the horizon so the run stays CI-affordable: ~20k offered
    // requests (6k with --quick) at 65% of fleet capacity.
    let base_rps = 0.65 * fleet_cap;
    let target: f64 = if quick { 6_000.0 } else { 20_000.0 };
    let horizon_s = target / base_rps;
    let epoch_s = horizon_s / 12.0;

    println!(
        "app {} on {} : {CELLS} cells x{SERVERS_PER_CELL} servers, \
         {:.0} rps/server ({:.0} rps fleet), horizon {:.3}s in 12 epochs",
        app.spec.name, chip.name, cap, fleet_cap, horizon_s
    );
    println!(
        "traffic: diurnal ±35% around {:.0} rps, flash crowd 1.8x mid-cycle; \
         cell 0 suffers a full outage for a third of the run",
        base_rps
    );

    let config = |failover: bool, seed: u64| -> GlobalConfig {
        GlobalConfig {
            cells: (0..CELLS)
                .map(|_| {
                    Cell::new(
                        profiled.cell_template(SERVERS_PER_CELL),
                        cap,
                        SERVERS_PER_CELL * 2,
                    )
                })
                .collect(),
            traffic: TrafficModel::diurnal(base_rps, 0.35, horizon_s).with_flash(
                0.45 * horizon_s,
                0.15 * horizon_s,
                1.8,
            ),
            cell_faults: vec![CellFault {
                cell: 0,
                at_s: 0.38 * horizon_s,
                duration_s: 0.33 * horizon_s,
                kind: CellFaultKind::Outage,
            }],
            autoscaler: AutoscalerConfig {
                enabled: failover,
                target_utilization: 0.6,
                step_servers: 1,
                provisioning_lag_epochs: 1,
            },
            geo: GeoPolicy {
                failover,
                redirect_latency_s: profiled.operating_point().slo_s * 0.2,
                overload_threshold: 1.1,
                detect_epochs: 1,
            },
            epoch_s,
            horizon_s,
            seed,
        }
    };

    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let replicate = |failover: bool| -> Vec<GlobalReport> {
        runner.run(|seed| {
            let r = simulate_global(profiled.latency_model(), &config(failover, seed))
                .expect("global config is valid");
            assert!(
                r.conservation_holds(),
                "conservation violated (seed {seed}): {} arrivals vs {} + {} + {} + {}",
                r.arrivals,
                r.completed,
                r.shed,
                r.dropped,
                r.failed
            );
            r
        })
    };

    for failover in [false, true] {
        let arm = if failover {
            "geo-failover + autoscale"
        } else {
            "serve-through          "
        };
        let reps = replicate(failover);
        let avail =
            Envelope::from_samples(&reps.iter().map(|r| r.availability).collect::<Vec<_>>());
        let p99 = Envelope::from_samples(&reps.iter().map(|r| r.p99_s * 1e3).collect::<Vec<_>>());
        let r = &reps[0];
        println!(
            "\n{arm}: availability {} (p99 {} ms over {REPLICATIONS} seeds)",
            avail.pm(3),
            p99.pm(2)
        );
        println!(
            "  funnel: {} arrivals -> {} completed ({} good), {} shed ({} at geo), \
             {} dropped, {} failed ({} to the cell outage)",
            r.arrivals,
            r.completed,
            r.good,
            r.shed,
            r.lb_shed,
            r.dropped,
            r.failed,
            r.cells.iter().map(|c| c.infra_lost).sum::<u64>(),
        );
        println!(
            "  control: {} redirected, {} scale-ups (+{} servers), {} scale-downs, \
             peak {} servers, cell-0 down {:.3}s",
            r.redirected,
            r.autoscaler.scale_ups,
            r.autoscaler.servers_added,
            r.autoscaler.scale_downs,
            r.autoscaler.peak_servers,
            r.cells[0].cell_down_s,
        );
    }

    println!("\nconservation held across every run");
}
