//! Fleet flight recorder, end to end: run a short chaos scenario with
//! the telemetry recorder (and the self-instrumenting DES profiler)
//! attached, export the request lifecycle as a Chrome-trace / Perfetto
//! JSON, and self-check everything the observability layer promises:
//!
//! - the exported trace is schema-valid (open `chrome://tracing` or
//!   <https://ui.perfetto.dev> and load the file to browse it),
//! - every span that opens closes (queued, batch, down families),
//! - the recorded instants reconcile *exactly* with the DES's own
//!   metrics (the conservation identity, event-by-event),
//! - recording is derived-only: the recorded run's report is
//!   bit-identical to the same run without a recorder.
//!
//! ```text
//! cargo run --release --example fleet_trace
//! cargo run --release --example fleet_trace -- --out my_trace.json
//! ```
//!
//! Exits nonzero if any check fails.

use std::process::ExitCode;

use tpugen::core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpugen::prelude::*;
use tpugen::telemetry::{
    chrome_trace_json, render_text, span_balance, validate_chrome_json, Recorder,
};

const SERVERS: usize = 3;
const LOAD_FACTOR: f64 = 2.0;
const REQUESTS: usize = 2000;

fn main() -> ExitCode {
    let mut out_path = String::from("fleet_trace.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let profiled =
        ProfiledApp::new(&app, &chip, &options).expect("BERT0 profiles; config is valid");
    println!(
        "app {} on {} x{SERVERS}: offered {LOAD_FACTOR}x one replica, {REQUESTS} requests",
        app.spec.name, chip.name
    );

    // Fault plan scaled to the no-fault run's wall clock, as in E22/E24:
    // one replica crashes early and failover reroutes around it.
    let baseline = profiled
        .chaos_point(
            SERVERS,
            LOAD_FACTOR,
            &FaultPlan::none(),
            REQUESTS,
            DEFAULT_SWEEP_SEED,
        )
        .expect("valid baseline");
    let d = baseline.report.duration_s;
    let plan = FaultPlan::scheduled(vec![ScheduledFault {
        server: 0,
        at_s: 0.1 * d,
        kind: FaultKind::Crash { mttr_s: 10.0 * d },
    }])
    .with_failover(FailoverConfig {
        enabled: true,
        probe_interval_s: 0.005 * d,
        probe_timeout_s: 0.002 * d,
        recovery_warmup_s: 0.005 * d,
    });

    let mut recorder = Recorder::with_capacity(1 << 18);
    recorder.enable_profiling(true);
    let point = profiled
        .chaos_point_recorded(
            SERVERS,
            LOAD_FACTOR,
            &plan,
            REQUESTS,
            DEFAULT_SWEEP_SEED,
            &mut recorder,
        )
        .expect("valid recorded run");
    let report = &point.report;

    // Derived-only: same plan, same seed, no recorder — bit-identical.
    let unrecorded = profiled
        .chaos_point(SERVERS, LOAD_FACTOR, &plan, REQUESTS, DEFAULT_SWEEP_SEED)
        .expect("valid unrecorded run");
    if unrecorded.report != *report {
        eprintln!("FAIL: recording perturbed the simulation");
        return ExitCode::FAILURE;
    }
    println!("derived-only: recorded report bit-identical to unrecorded run");

    // Reconciliation: conservation, event-by-event.
    let m = &report.metrics;
    let reconciled = report.conservation_holds()
        && recorder.counter("arrive") == report.arrivals as u64
        && recorder.counter("complete") == report.completed as u64
        && recorder.counter("shed_permanent") == report.shed as u64
        && recorder.counter("dropped") == report.dropped as u64
        && recorder.counter("failed_permanent") == report.failed as u64
        && recorder.counter("detected") == m.failures_detected.get()
        && recorder.counter("recovered") == m.failures_recovered.get();
    if !reconciled {
        eprintln!("FAIL: recorded instants do not reconcile with ServingMetrics");
        return ExitCode::FAILURE;
    }
    println!(
        "reconciled: {} arrive == {} complete + {} shed + {} dropped + {} failed",
        report.arrivals, report.completed, report.shed, report.dropped, report.failed
    );

    // Span balance over the full ring.
    let events: Vec<_> = recorder.events().cloned().collect();
    let spans = match span_balance(&events) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("FAIL: unbalanced spans: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "spans: {spans} opened, all closed; ring: {} events, {} dropped",
        recorder.len(),
        recorder.dropped()
    );

    // Export + schema validation.
    let json = chrome_trace_json(&events);
    let records = match validate_chrome_json(&json) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("FAIL: invalid chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    std::fs::write(&out_path, &json).expect("writable trace path");
    println!("wrote {out_path} ({} bytes)", json.len());
    println!("chrome trace schema ok ({records} events)");

    // Timeline excerpt and the self-profiler's event attribution.
    println!("\nfirst 10 recorded events:");
    print!("{}", render_text(recorder.events().take(10)));
    println!(
        "\nDES self-profile ({} events processed):\n{}",
        recorder.counter("events_processed"),
        recorder.profile_report()
    );
    ExitCode::SUCCESS
}
