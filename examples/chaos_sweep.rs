//! Chaos sweep (E22's engine, standalone): inject MTBF-driven server
//! faults into a replicated BERT0 fleet and compare failover-on vs
//! failover-off goodput under *identical* fault plans.
//!
//! BERT0 is profiled **once**; each (MTBF, failover) point then
//! replicates the discrete-event run across several arrival seeds in
//! parallel (`TPU_SIM_THREADS` caps the workers). The fault plan — seed
//! included — is the same for every replication, so the on/off gap is
//! pure failover value with arrival noise quantified by the ±95% CI.
//!
//! ```text
//! cargo run --release --example chaos_sweep           # full sweep
//! cargo run --release --example chaos_sweep -- --quick  # CI smoke
//! ```
//!
//! Exits nonzero if any run violates request conservation
//! (`arrivals == completed + shed + dropped + failed`).

use tpu_bench::multiseed::{Envelope, MultiSeedRunner};
use tpugen::core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpugen::prelude::*;

const REPLICATIONS: usize = 5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let servers = 4;
    let load = 1.35; // x one replica's capacity
    let requests = if quick { 1500 } else { 6000 };

    println!(
        "app {} on {} x{servers}: p99 SLO {} ms, offered {load}x one replica",
        app.spec.name, chip.name, app.spec.slo_p99_ms
    );

    let profiled =
        ProfiledApp::new(&app, &chip, &options).expect("BERT0 profiles; config is valid");
    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let replicate = |plan: &FaultPlan| {
        runner.run(|seed| {
            let p = profiled
                .chaos_point(servers, load, plan, requests, seed)
                .expect("chaos config is valid");
            let r = &p.report;
            assert!(
                r.conservation_holds(),
                "conservation violated (seed {seed}): {} arrivals vs {} + {} + {} + {}",
                r.arrivals,
                r.completed,
                r.shed,
                r.dropped,
                r.failed
            );
            p
        })
    };
    let goodput_env = |reps: &[tpugen::core::ChaosPoint]| {
        Envelope::from_samples(
            &reps
                .iter()
                .map(|p| p.report.goodput_rps)
                .collect::<Vec<_>>(),
        )
    };

    // Calibrate the wall-clock scale with the canonical fault-free run.
    let baseline_reps = replicate(&FaultPlan::none());
    let baseline = &baseline_reps[0];
    let d = baseline.report.duration_s;
    println!(
        "no faults: goodput {:.0}/s (mean {}) over {:.3}s simulated; \
         {REPLICATIONS} seeded replications per point on up to {} threads",
        baseline.report.goodput_rps,
        goodput_env(&baseline_reps).pm(0),
        d,
        tpu_par::num_threads()
    );

    let failover = FailoverConfig {
        enabled: true,
        probe_interval_s: 0.005 * d,
        probe_timeout_s: 0.002 * d,
        recovery_warmup_s: 0.005 * d,
    };
    let mtbf_factors: &[f64] = if quick {
        &[0.5, 0.2]
    } else {
        &[1.0, 0.5, 0.2, 0.1]
    };

    for &factor in mtbf_factors {
        println!("\nMTBF = {factor}x run length (MTTR 5% of run):");
        for enabled in [true, false] {
            let plan = FaultPlan {
                scheduled: Vec::new(),
                mtbf: Some(MtbfFaults {
                    mtbf_s: factor * d,
                    mttr_s: 0.05 * d,
                    horizon_s: d,
                }),
                fault_seed: 7,
                failover,
            };
            let plan = if enabled {
                plan
            } else {
                plan.without_failover()
            };
            let reps = replicate(&plan);
            let env = goodput_env(&reps);
            let r = &reps[0].report;
            let avail = r.metrics.per_server_availability(r.duration_s);
            let mean_avail = avail.iter().sum::<f64>() / avail.len() as f64;
            println!(
                "  failover {:>3}: goodput {:>5.0}/s (mean {}), p99 {:>6.2} ms, shed {:>4}, \
                 failed {:>3}, detected {:>2}, recovered {:>2}, redistributed {:>3}, \
                 availability {:.3}",
                if enabled { "on" } else { "off" },
                r.goodput_rps,
                env.pm(0),
                r.p99_s * 1e3,
                r.shed,
                r.failed,
                r.metrics.failures_detected.get(),
                r.metrics.failures_recovered.get(),
                r.metrics.failover_redistributed.get(),
                mean_avail,
            );
        }
    }
    println!("\nconservation held across every run");
}
