//! Chaos sweep (E22's engine, standalone): inject MTBF-driven server
//! faults into a replicated BERT0 fleet and compare failover-on vs
//! failover-off goodput under *identical* fault plans.
//!
//! ```text
//! cargo run --release --example chaos_sweep           # full sweep
//! cargo run --release --example chaos_sweep -- --quick  # CI smoke
//! ```
//!
//! Exits nonzero if any run violates request conservation
//! (`arrivals == completed + shed + dropped + failed`).

use tpugen::core::chaos_operating_point;
use tpugen::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let servers = 4;
    let load = 1.35; // x one replica's capacity
    let requests = if quick { 1500 } else { 6000 };

    println!(
        "app {} on {} x{servers}: p99 SLO {} ms, offered {load}x one replica",
        app.spec.name, chip.name, app.spec.slo_p99_ms
    );

    // Calibrate the wall-clock scale with a fault-free run.
    let baseline = chaos_operating_point(
        &app,
        &chip,
        &options,
        servers,
        load,
        &FaultPlan::none(),
        requests,
    )
    .expect("BERT0 profiles; config is valid");
    assert!(baseline.report.conservation_holds());
    let d = baseline.report.duration_s;
    println!(
        "no faults: goodput {:.0}/s over {:.3}s simulated",
        baseline.report.goodput_rps, d
    );

    let failover = FailoverConfig {
        enabled: true,
        probe_interval_s: 0.005 * d,
        probe_timeout_s: 0.002 * d,
        recovery_warmup_s: 0.005 * d,
    };
    let mtbf_factors: &[f64] = if quick {
        &[0.5, 0.2]
    } else {
        &[1.0, 0.5, 0.2, 0.1]
    };

    for &factor in mtbf_factors {
        println!("\nMTBF = {factor}x run length (MTTR 5% of run):");
        for enabled in [true, false] {
            let plan = FaultPlan {
                scheduled: Vec::new(),
                mtbf: Some(MtbfFaults {
                    mtbf_s: factor * d,
                    mttr_s: 0.05 * d,
                    horizon_s: d,
                }),
                fault_seed: 7,
                failover,
            };
            let plan = if enabled {
                plan
            } else {
                plan.without_failover()
            };
            let p = chaos_operating_point(&app, &chip, &options, servers, load, &plan, requests)
                .expect("chaos config is valid");
            let r = &p.report;
            assert!(
                r.conservation_holds(),
                "conservation violated: {} arrivals vs {} + {} + {} + {}",
                r.arrivals,
                r.completed,
                r.shed,
                r.dropped,
                r.failed
            );
            let avail = r.metrics.per_server_availability(r.duration_s);
            let mean_avail = avail.iter().sum::<f64>() / avail.len() as f64;
            println!(
                "  failover {:>3}: goodput {:>5.0}/s, p99 {:>6.2} ms, shed {:>4}, failed {:>3}, \
                 detected {:>2}, recovered {:>2}, redistributed {:>3}, availability {:.3}",
                if enabled { "on" } else { "off" },
                r.goodput_rps,
                r.p99_s * 1e3,
                r.shed,
                r.failed,
                r.metrics.failures_detected.get(),
                r.metrics.failures_recovered.get(),
                r.metrics.failover_redistributed.get(),
                mean_avail,
            );
        }
    }
    println!("\nconservation held across every run");
}
