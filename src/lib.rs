//! `tpugen` — a reproduction of *"Ten Lessons From Three Generations
//! Shaped Google's TPUv4i"* (ISCA 2021) as a Rust workspace.
//!
//! This root crate re-exports the whole workspace so examples, tests and
//! downstream users can depend on one name. The per-subsystem crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`arch`] | `tpu-arch` | chip catalog, technology scaling, cooling |
//! | [`numerics`] | `tpu-numerics` | bf16, int8 quantization, accumulation order |
//! | [`isa`] | `tpu-isa` | VLIW bundles, per-generation binary encodings |
//! | [`sim`] | `tpu-sim` | event-driven performance/energy simulator |
//! | [`hlo`] | `tpu-hlo` | mini-XLA compiler (fusion, CMEM planning, lowering) |
//! | [`workloads`] | `tpu-workloads` | the eight production inference apps |
//! | [`serving`] | `tpu-serving` | batching, p99 SLOs, multi-tenancy |
//! | [`tco`] | `tpu-tco` | CapEx/OpEx/TCO and deployment timelines |
//! | [`telemetry`] | `tpu-telemetry` | event sinks, flight recorder, trace export |
//! | [`core`] | `tpu-core` | high-level run/suite/SLO helpers |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index
//! (E1–E14), and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use tpugen::prelude::*;
//!
//! let chip = catalog::tpu_v4i();
//! let run = tpugen::core::run_app(
//!     &zoo::mlp1(), &chip, 4, &CompilerOptions::default(),
//! ).unwrap();
//! assert!(run.report.tflops() > 0.0);
//! ```

pub use tpu_arch as arch;
pub use tpu_core as core;
pub use tpu_hlo as hlo;
pub use tpu_isa as isa;
pub use tpu_numerics as numerics;
pub use tpu_serving as serving;
pub use tpu_sim as sim;
pub use tpu_tco as tco;
pub use tpu_telemetry as telemetry;
pub use tpu_workloads as workloads;

pub use tpu_core::prelude;
