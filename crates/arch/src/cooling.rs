//! Cooling technology and deployment envelopes (paper Lesson 5).
//!
//! "Inference DSAs need air cooling": Google's inference fleet deploys to
//! datacenters worldwide, most of which provide only air cooling. A chip
//! that needs liquid cooling (TPUv3 at 450 W, TPUv4 at ~275 W) can only
//! live in a minority of sites, so TPUv4i was designed to a 175 W TDP.
//! Experiment E13 regenerates this argument quantitatively.

use std::fmt;

/// How a chip is cooled in deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoolingTech {
    /// Forced-air heatsink cooling — available in every datacenter.
    Air,
    /// Direct liquid cooling — available only in purpose-built sites.
    Liquid,
}

impl CoolingTech {
    /// The highest per-chip TDP (watts) this technology can remove in a
    /// standard dense server tray.
    pub const fn max_chip_tdp_w(self) -> f64 {
        match self {
            // TPUv2's 280 W deployed air-cooled; ~300 W is the practical
            // ceiling for dense air-cooled trays.
            CoolingTech::Air => 300.0,
            CoolingTech::Liquid => 600.0,
        }
    }

    /// Fraction of the global datacenter fleet that supports this cooling
    /// technology (air is everywhere; liquid needs plant retrofits).
    pub const fn fleet_availability(self) -> f64 {
        match self {
            CoolingTech::Air => 1.0,
            CoolingTech::Liquid => 0.15,
        }
    }

    /// Cooling-infrastructure overhead as a fraction of chip power
    /// (fans/pumps/heat exchangers; contributes to PUE and to OpEx).
    pub const fn overhead_fraction(self) -> f64 {
        match self {
            CoolingTech::Air => 0.30,
            CoolingTech::Liquid => 0.18,
        }
    }

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            CoolingTech::Air => "air",
            CoolingTech::Liquid => "liquid",
        }
    }
}

impl fmt::Display for CoolingTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The cheapest cooling technology that can handle `tdp_w`, or `None` if
/// nothing can (the chip is undeployable as specified).
pub fn required_cooling(tdp_w: f64) -> Option<CoolingTech> {
    if tdp_w <= CoolingTech::Air.max_chip_tdp_w() {
        Some(CoolingTech::Air)
    } else if tdp_w <= CoolingTech::Liquid.max_chip_tdp_w() {
        Some(CoolingTech::Liquid)
    } else {
        None
    }
}

/// A datacenter rack envelope for deployment math (E13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackEnvelope {
    /// Total power budget of the rack in watts (IT load).
    pub power_budget_w: f64,
    /// Physical accelerator slots.
    pub slots: u32,
    /// Host/infrastructure overhead per accelerator, watts.
    pub host_overhead_w: f64,
}

impl Default for RackEnvelope {
    fn default() -> RackEnvelope {
        RackEnvelope {
            power_budget_w: 20_000.0,
            slots: 64,
            host_overhead_w: 60.0,
        }
    }
}

impl RackEnvelope {
    /// How many chips of `tdp_w` fit in this rack (power- and slot-limited).
    pub fn chips_per_rack(&self, tdp_w: f64) -> u32 {
        if tdp_w <= 0.0 {
            return 0;
        }
        let by_power = (self.power_budget_w / (tdp_w + self.host_overhead_w)).floor() as u32;
        by_power.min(self.slots)
    }

    /// Deployable chips per rack *weighted by fleet availability* of the
    /// required cooling technology. This is the paper's deployment
    /// argument in one number: a 450 W liquid-cooled chip deploys to far
    /// less of the fleet than a 175 W air-cooled one.
    pub fn fleet_weighted_chips(&self, tdp_w: f64) -> f64 {
        match required_cooling(tdp_w) {
            Some(tech) => self.chips_per_rack(tdp_w) as f64 * tech.fleet_availability(),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_cooling_thresholds() {
        assert_eq!(required_cooling(75.0), Some(CoolingTech::Air));
        assert_eq!(required_cooling(175.0), Some(CoolingTech::Air));
        assert_eq!(required_cooling(280.0), Some(CoolingTech::Air));
        assert_eq!(required_cooling(450.0), Some(CoolingTech::Liquid));
        assert_eq!(required_cooling(601.0), None);
    }

    #[test]
    fn air_is_universally_available() {
        assert_eq!(CoolingTech::Air.fleet_availability(), 1.0);
        assert!(CoolingTech::Liquid.fleet_availability() < 0.5);
    }

    #[test]
    fn rack_packing_is_power_limited_for_hot_chips() {
        let rack = RackEnvelope::default();
        // 450 W chips: 20 kW / 510 W = 39 chips.
        assert_eq!(rack.chips_per_rack(450.0), 39);
        // 175 W chips: 20 kW / 235 W = 85, capped by 64 slots.
        assert_eq!(rack.chips_per_rack(175.0), 64);
        assert_eq!(rack.chips_per_rack(0.0), 0);
    }

    #[test]
    fn fleet_weighted_deployment_favors_v4i_envelope() {
        let rack = RackEnvelope::default();
        let v4i = rack.fleet_weighted_chips(175.0); // air
        let v3 = rack.fleet_weighted_chips(450.0); // liquid
        assert!(
            v4i > 5.0 * v3,
            "air-cooled 175 W should deploy >5x the fleet-weighted chips \
             of liquid-cooled 450 W (got {v4i:.1} vs {v3:.1})"
        );
        assert_eq!(rack.fleet_weighted_chips(1000.0), 0.0);
    }

    #[test]
    fn liquid_has_lower_overhead_but_higher_capacity() {
        assert!(CoolingTech::Liquid.overhead_fraction() < CoolingTech::Air.overhead_fraction());
        assert!(CoolingTech::Liquid.max_chip_tdp_w() > CoolingTech::Air.max_chip_tdp_w());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", CoolingTech::Air), "air");
        assert_eq!(format!("{}", CoolingTech::Liquid), "liquid");
    }
}
