//! Chip configuration: the per-generation architectural parameters.

use std::fmt;

use tpu_numerics::accum::AccumOrder;
use tpu_numerics::DType;

use crate::cooling::CoolingTech;
use crate::memory::{MemLevel, MemSpec};
use crate::tech::ProcessNode;

/// Which DSA family and generation a configuration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Generation {
    /// TPUv1 (2015, inference, int8, DDR3).
    TpuV1,
    /// TPUv2 (2017, training+inference, bf16, HBM).
    TpuV2,
    /// TPUv3 (2018, training+inference, bf16, HBM, liquid cooled).
    TpuV3,
    /// TPUv4i (2020, inference, bf16+int8, CMEM, air cooled) — the paper's
    /// subject.
    TpuV4i,
    /// TPUv4 (2020/21, training).
    TpuV4,
    /// A contemporary inference-GPU baseline (T4-class envelope).
    GpuT4Like,
}

impl Generation {
    /// Short display name used in tables.
    pub const fn name(self) -> &'static str {
        match self {
            Generation::TpuV1 => "TPUv1",
            Generation::TpuV2 => "TPUv2",
            Generation::TpuV3 => "TPUv3",
            Generation::TpuV4i => "TPUv4i",
            Generation::TpuV4 => "TPUv4",
            Generation::GpuT4Like => "GPU-T4",
        }
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a chip configuration is internally inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be positive was zero or negative.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The configuration claims no supported compute type.
    NoComputeTypes,
    /// Idle power exceeds TDP.
    IdleAboveTdp {
        /// Idle watts claimed.
        idle_w: f64,
        /// TDP watts claimed.
        tdp_w: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field } => {
                write!(f, "field `{field}` must be positive")
            }
            ConfigError::NoComputeTypes => write!(f, "no supported compute types"),
            ConfigError::IdleAboveTdp { idle_w, tdp_w } => {
                write!(f, "idle power {idle_w} W exceeds TDP {tdp_w} W")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A complete architectural description of one chip.
///
/// Construct via [`ChipConfig::builder`] or take a ready-made generation
/// from [`crate::catalog`]. All derived quantities (peak FLOPS, ridge
/// point, accumulation order) are methods, so the struct stays a plain
/// record of the design choices the paper discusses.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Human-readable name, e.g. `"TPUv4i"`.
    pub name: String,
    /// Which generation this is.
    pub generation: Generation,
    /// Year of first deployment.
    pub year: u32,
    /// Fabrication node.
    pub node: ProcessNode,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Idle power in watts.
    pub idle_w: f64,
    /// Die size in mm^2.
    pub die_mm2: f64,
    /// Number of TensorCores.
    pub cores: u32,
    /// Matrix units per core.
    pub mxus_per_core: u32,
    /// Systolic array dimension (e.g. 128 for a 128x128 MXU).
    pub mxu_dim: u32,
    /// Vector unit lanes per core.
    pub vpu_lanes: u32,
    /// Sublanes per vector lane.
    pub vpu_sublanes: u32,
    /// Vector memory per core.
    pub vmem: MemSpec,
    /// Common memory (None for generations without CMEM).
    pub cmem: Option<MemSpec>,
    /// Scalar memory per core.
    pub smem: MemSpec,
    /// Off-chip memory (HBM / DDR / GDDR).
    pub hbm: MemSpec,
    /// Number of inter-chip interconnect links.
    pub ici_links: u32,
    /// Per-link ICI bandwidth, GB/s each direction.
    pub ici_gbps: f64,
    /// DMA engines available for async copies.
    pub dma_engines: u32,
    /// Compute types with native MXU support.
    pub native_types: Vec<DType>,
    /// Throughput multiplier for int8 relative to bf16 (2.0 on TPUv4i;
    /// 1.0 where int8 runs at bf16 rate; ignored if int8 unsupported).
    pub int8_speedup: f64,
    /// Cooling technology required at this TDP.
    pub cooling: CoolingTech,
}

impl ChipConfig {
    /// Starts building a configuration.
    pub fn builder(name: &str, generation: Generation) -> ChipConfigBuilder {
        ChipConfigBuilder::new(name, generation)
    }

    /// Peak multiply-accumulates per second for `dtype`, or `None` if the
    /// type has no native support.
    pub fn peak_macs_per_sec(&self, dtype: DType) -> Option<f64> {
        if !self.native_types.contains(&dtype) {
            return None;
        }
        let base = self.cores as f64
            * self.mxus_per_core as f64
            * (self.mxu_dim as f64 * self.mxu_dim as f64)
            * self.clock_hz;
        let factor = match dtype {
            DType::Int8 => self.int8_speedup,
            _ => 1.0,
        };
        Some(base * factor)
    }

    /// Peak FLOPS (2 x MACs) for `dtype`, or `None` if unsupported.
    pub fn peak_flops(&self, dtype: DType) -> Option<f64> {
        self.peak_macs_per_sec(dtype).map(|m| 2.0 * m)
    }

    /// The widest-throughput native type (int8 if present, else bf16, ...).
    pub fn fastest_type(&self) -> DType {
        *self
            .native_types
            .iter()
            .max_by(|a, b| {
                let fa = self.peak_flops(**a).unwrap_or(0.0);
                let fb = self.peak_flops(**b).unwrap_or(0.0);
                fa.partial_cmp(&fb).expect("peak flops is finite")
            })
            .expect("validated config has at least one type")
    }

    /// Vector-unit elementwise operations per second (all cores).
    pub fn peak_vpu_ops_per_sec(&self) -> f64 {
        self.cores as f64 * self.vpu_lanes as f64 * self.vpu_sublanes as f64 * self.clock_hz
    }

    /// Operational-intensity ridge point in FLOP/byte against HBM, for
    /// `dtype`; `None` if the type is unsupported.
    ///
    /// Workloads below the ridge are memory bound on this chip — the
    /// quantity the paper's roofline figure (E4) plots.
    pub fn ridge_flops_per_byte(&self, dtype: DType) -> Option<f64> {
        self.peak_flops(dtype).map(|f| f / self.hbm.bandwidth_bps)
    }

    /// The memory spec for a level, if this chip has it.
    pub fn mem(&self, level: MemLevel) -> Option<&MemSpec> {
        match level {
            MemLevel::Hbm => Some(&self.hbm),
            MemLevel::Cmem => self.cmem.as_ref(),
            MemLevel::Vmem => Some(&self.vmem),
            MemLevel::Smem => Some(&self.smem),
        }
    }

    /// Total on-chip SRAM in bytes (VMEM + CMEM + SMEM over all cores).
    pub fn on_chip_sram_bytes(&self) -> u64 {
        self.cores as u64 * (self.vmem.capacity_bytes + self.smem.capacity_bytes)
            + self.cmem.map_or(0, |c| c.capacity_bytes)
    }

    /// The MXU's native fp32 accumulation order (for backwards ML
    /// compatibility checks, Lesson 4).
    pub fn accum_order(&self) -> AccumOrder {
        AccumOrder::systolic(self.mxu_dim as usize)
    }

    /// Whether the chip deploys with air cooling (Lesson 5).
    pub fn is_air_cooled(&self) -> bool {
        self.cooling == CoolingTech::Air
    }

    /// Aggregate ICI bandwidth in bytes/s (all links, one direction).
    pub fn ici_total_bps(&self) -> f64 {
        self.ici_links as f64 * self.ici_gbps * 1e9
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pos(v: f64, field: &'static str) -> Result<(), ConfigError> {
            if v > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NonPositive { field })
            }
        }
        pos(self.clock_hz, "clock_hz")?;
        pos(self.tdp_w, "tdp_w")?;
        pos(self.die_mm2, "die_mm2")?;
        pos(self.cores as f64, "cores")?;
        pos(self.mxus_per_core as f64, "mxus_per_core")?;
        pos(self.mxu_dim as f64, "mxu_dim")?;
        pos(self.vpu_lanes as f64, "vpu_lanes")?;
        pos(self.vpu_sublanes as f64, "vpu_sublanes")?;
        pos(self.hbm.bandwidth_bps, "hbm.bandwidth_bps")?;
        pos(self.int8_speedup, "int8_speedup")?;
        if self.native_types.is_empty() {
            return Err(ConfigError::NoComputeTypes);
        }
        if self.idle_w > self.tdp_w {
            return Err(ConfigError::IdleAboveTdp {
                idle_w: self.idle_w,
                tdp_w: self.tdp_w,
            });
        }
        Ok(())
    }
}

impl fmt::Display for ChipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} cores x {} MXU {}x{}, {:.0} MHz, {:.0} W)",
            self.name,
            self.node,
            self.cores,
            self.mxus_per_core,
            self.mxu_dim,
            self.mxu_dim,
            self.clock_hz / 1e6,
            self.tdp_w
        )
    }
}

/// Builder for [`ChipConfig`]; see [`crate::catalog`] for fully worked
/// examples.
#[derive(Debug, Clone)]
pub struct ChipConfigBuilder {
    cfg: ChipConfig,
}

impl ChipConfigBuilder {
    fn new(name: &str, generation: Generation) -> ChipConfigBuilder {
        // Reasonable neutral defaults; callers override what matters.
        let node = ProcessNode::N16;
        let e = node.energy();
        ChipConfigBuilder {
            cfg: ChipConfig {
                name: name.to_owned(),
                generation,
                year: 2018,
                node,
                clock_hz: 700e6,
                tdp_w: 200.0,
                idle_w: 50.0,
                die_mm2: 400.0,
                cores: 1,
                mxus_per_core: 1,
                mxu_dim: 128,
                vpu_lanes: 128,
                vpu_sublanes: 8,
                vmem: MemSpec::sram(16, 4000.0, 15.0, &e),
                cmem: None,
                smem: MemSpec::sram(4, 500.0, 5.0, &e),
                hbm: MemSpec::hbm(2, 8, 350.0, &e),
                ici_links: 0,
                ici_gbps: 0.0,
                dma_engines: 4,
                native_types: vec![DType::Bf16, DType::Fp32],
                int8_speedup: 1.0,
                cooling: CoolingTech::Air,
            },
        }
    }

    /// Deployment year.
    pub fn year(mut self, y: u32) -> Self {
        self.cfg.year = y;
        self
    }

    /// Process node (also used by catalog helpers for energy lookups).
    pub fn node(mut self, n: ProcessNode) -> Self {
        self.cfg.node = n;
        self
    }

    /// Clock in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.cfg.clock_hz = mhz * 1e6;
        self
    }

    /// TDP and idle power in watts.
    pub fn power_w(mut self, tdp: f64, idle: f64) -> Self {
        self.cfg.tdp_w = tdp;
        self.cfg.idle_w = idle;
        self
    }

    /// Die size in mm^2.
    pub fn die_mm2(mut self, mm2: f64) -> Self {
        self.cfg.die_mm2 = mm2;
        self
    }

    /// TensorCore count, MXUs per core and MXU dimension.
    pub fn compute(mut self, cores: u32, mxus_per_core: u32, mxu_dim: u32) -> Self {
        self.cfg.cores = cores;
        self.cfg.mxus_per_core = mxus_per_core;
        self.cfg.mxu_dim = mxu_dim;
        self
    }

    /// Vector unit shape.
    pub fn vpu(mut self, lanes: u32, sublanes: u32) -> Self {
        self.cfg.vpu_lanes = lanes;
        self.cfg.vpu_sublanes = sublanes;
        self
    }

    /// Vector memory spec.
    pub fn vmem(mut self, spec: MemSpec) -> Self {
        self.cfg.vmem = spec;
        self
    }

    /// Common memory spec (TPUv4i/v4).
    pub fn cmem(mut self, spec: MemSpec) -> Self {
        self.cfg.cmem = Some(spec);
        self
    }

    /// Removes CMEM (for the E6 ablation).
    pub fn no_cmem(mut self) -> Self {
        self.cfg.cmem = None;
        self
    }

    /// Scalar memory spec.
    pub fn smem(mut self, spec: MemSpec) -> Self {
        self.cfg.smem = spec;
        self
    }

    /// Off-chip memory spec.
    pub fn hbm(mut self, spec: MemSpec) -> Self {
        self.cfg.hbm = spec;
        self
    }

    /// Inter-chip links and per-link bandwidth (GB/s).
    pub fn ici(mut self, links: u32, gbps: f64) -> Self {
        self.cfg.ici_links = links;
        self.cfg.ici_gbps = gbps;
        self
    }

    /// DMA engine count.
    pub fn dma_engines(mut self, n: u32) -> Self {
        self.cfg.dma_engines = n;
        self
    }

    /// Native compute types and the int8 throughput multiplier.
    pub fn types(mut self, types: &[DType], int8_speedup: f64) -> Self {
        self.cfg.native_types = types.to_vec();
        self.cfg.int8_speedup = int8_speedup;
        self
    }

    /// Cooling technology.
    pub fn cooling(mut self, c: CoolingTech) -> Self {
        self.cfg.cooling = c;
        self
    }

    /// Finishes, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by [`ChipConfig::validate`].
    pub fn build(self) -> Result<ChipConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ChipConfigBuilder {
        ChipConfig::builder("test", Generation::TpuV4i)
    }

    #[test]
    fn builder_defaults_validate() {
        let c = minimal().build().unwrap();
        assert_eq!(c.name, "test");
        assert!(c.peak_flops(DType::Bf16).unwrap() > 0.0);
    }

    #[test]
    fn peak_flops_formula() {
        let c = minimal()
            .compute(1, 4, 128)
            .clock_mhz(1050.0)
            .types(&[DType::Bf16, DType::Int8], 2.0)
            .build()
            .unwrap();
        let bf16 = c.peak_flops(DType::Bf16).unwrap();
        assert!((bf16 - 4.0 * 128.0 * 128.0 * 2.0 * 1.05e9).abs() / bf16 < 1e-12);
        let int8 = c.peak_flops(DType::Int8).unwrap();
        assert_eq!(int8, 2.0 * bf16);
        assert_eq!(c.peak_flops(DType::Fp16), None);
        assert_eq!(c.fastest_type(), DType::Int8);
    }

    #[test]
    fn ridge_point_is_flops_over_bandwidth() {
        let c = minimal().build().unwrap();
        let ridge = c.ridge_flops_per_byte(DType::Bf16).unwrap();
        let expect = c.peak_flops(DType::Bf16).unwrap() / c.hbm.bandwidth_bps;
        assert!((ridge - expect).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            minimal().clock_mhz(0.0).build().unwrap_err(),
            ConfigError::NonPositive { field: "clock_hz" }
        );
        assert_eq!(
            minimal().types(&[], 1.0).build().unwrap_err(),
            ConfigError::NoComputeTypes
        );
        assert!(matches!(
            minimal().power_w(100.0, 150.0).build().unwrap_err(),
            ConfigError::IdleAboveTdp { .. }
        ));
    }

    #[test]
    fn mem_lookup_by_level() {
        let e = ProcessNode::N7.energy();
        let with = minimal()
            .cmem(MemSpec::sram(128, 5000.0, 20.0, &e))
            .build()
            .unwrap();
        let without = minimal().build().unwrap();
        assert!(with.mem(MemLevel::Cmem).is_some());
        assert!(without.mem(MemLevel::Cmem).is_none());
        assert!(without.mem(MemLevel::Hbm).is_some());
        assert!(without.mem(MemLevel::Vmem).is_some());
    }

    #[test]
    fn on_chip_sram_sums_levels() {
        let e = ProcessNode::N7.energy();
        let c = minimal()
            .compute(2, 1, 128)
            .vmem(MemSpec::sram(16, 1000.0, 10.0, &e))
            .smem(MemSpec::sram(4, 100.0, 5.0, &e))
            .cmem(MemSpec::sram(128, 5000.0, 20.0, &e))
            .build()
            .unwrap();
        assert_eq!(c.on_chip_sram_bytes(), (2 * (16 + 4) + 128) * (1 << 20));
    }

    #[test]
    fn accum_order_tracks_mxu_dim() {
        use tpu_numerics::accum::AccumOrder;
        let c = minimal().compute(1, 1, 256).build().unwrap();
        assert_eq!(c.accum_order(), AccumOrder::Chunked { width: 256 });
    }

    #[test]
    fn display_is_informative() {
        let c = minimal().build().unwrap();
        let s = format!("{c}");
        assert!(s.contains("test"));
        assert!(s.contains("MXU"));
        let err = ConfigError::NoComputeTypes;
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn ici_aggregate_bandwidth() {
        let c = minimal().ici(4, 100.0).build().unwrap();
        assert!((c.ici_total_bps() - 4e11).abs() < 1.0);
    }
}
