//! Architecture descriptions for the TPU-generation reproduction.
//!
//! This crate is the structural substrate of the TPUv4i study: it knows
//! *what the chips are* — process nodes and their (unequal!) scaling,
//! memory-system envelopes, per-generation chip configurations, cooling
//! limits and a first-order floorplan model — but not how programs run on
//! them (that is `tpu-sim`) nor what they cost to own (that is `tpu-tco`).
//!
//! The paper's Lesson 1 ("logic, wires, SRAM and DRAM improve unequally")
//! lives in [`tech`]; Table 1 (the five-generation comparison) lives in
//! [`catalog`]; Lesson 5 (air cooling) is encoded in [`cooling`].
//!
//! # Example
//!
//! ```
//! use tpu_arch::catalog;
//! use tpu_numerics::DType;
//!
//! let v4i = catalog::tpu_v4i();
//! let tflops = v4i.peak_flops(DType::Bf16).unwrap() / 1e12;
//! assert!((tflops - 137.6).abs() < 1.0);
//! assert!(v4i.is_air_cooled());
//! ```

pub mod catalog;
pub mod chip;
pub mod cooling;
pub mod floorplan;
pub mod memory;
pub mod tech;
pub mod topology;

pub use chip::{ChipConfig, ChipConfigBuilder, ConfigError, Generation};
pub use cooling::CoolingTech;
pub use memory::{MemLevel, MemSpec};
pub use tech::{EnergyTable, ProcessNode};
pub use topology::{DegradedIci, IciTopology, LinkFailures, TopologyError};
