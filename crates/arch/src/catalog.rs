//! The generation catalog: Table 1 of the paper as code.
//!
//! Each function returns the architectural envelope of one deployed chip.
//! Headline numbers (clock, MXU organization, peak TFLOPS, HBM bandwidth,
//! TDP, memory capacities, process node, deployment year, cooling) follow
//! the paper's Table 1; quantities the paper does not publish (SRAM
//! bandwidths, latencies, DMA engine counts) are engineering estimates and
//! are flagged inline. EXPERIMENTS.md records which numbers are
//! approximate.

use tpu_numerics::DType;

use crate::chip::{ChipConfig, Generation};
use crate::cooling::CoolingTech;
use crate::memory::MemSpec;
use crate::tech::ProcessNode;

/// TPUv1 (2015): the original int8 inference chip. 256x256 MXU at
/// 700 MHz gives 92 TOPS; 8 GiB DDR3 at 34 GB/s; 28 MiB on-chip buffers.
pub fn tpu_v1() -> ChipConfig {
    let e = ProcessNode::N28.energy();
    ChipConfig::builder("TPUv1", Generation::TpuV1)
        .year(2015)
        .node(ProcessNode::N28)
        .clock_mhz(700.0)
        .power_w(75.0, 28.0)
        .die_mm2(331.0)
        .compute(1, 1, 256)
        .vpu(128, 2) // activation pipeline stand-in (estimate)
        // 24 MiB unified buffer modeled as VMEM; 4 MiB accumulators as SMEM.
        .vmem(MemSpec::sram(24, 1500.0, 20.0, &e))
        .smem(MemSpec::sram(4, 400.0, 5.0, &e))
        .hbm(MemSpec::ddr(8, 34.0, &e))
        .ici(0, 0.0)
        .dma_engines(2)
        .types(&[DType::Int8], 1.0)
        .cooling(CoolingTech::Air)
        .build()
        .expect("catalog config is valid")
}

/// TPUv2 (2017): first training TPU. Two TensorCores, each a 128x128
/// bf16 MXU at 700 MHz → 46 TFLOPS; 16 GiB HBM at 700 GB/s.
pub fn tpu_v2() -> ChipConfig {
    let e = ProcessNode::N16.energy();
    ChipConfig::builder("TPUv2", Generation::TpuV2)
        .year(2017)
        .node(ProcessNode::N16)
        .clock_mhz(700.0)
        .power_w(280.0, 82.0)
        .die_mm2(611.0)
        .compute(2, 1, 128)
        .vpu(128, 8)
        .vmem(MemSpec::sram(16, 2700.0, 15.0, &e)) // per-core (estimate)
        .smem(MemSpec::sram(4, 400.0, 5.0, &e))
        .hbm(MemSpec::hbm(4, 4, 175.0, &e)) // 16 GiB, 700 GB/s
        .ici(4, 62.0) // 496 Gbit/s per link
        .dma_engines(4)
        .types(&[DType::Bf16, DType::Fp32], 1.0)
        .cooling(CoolingTech::Air)
        .build()
        .expect("catalog config is valid")
}

/// TPUv3 (2018): TPUv2 scaled up — two MXUs per core, 940 MHz →
/// 123 TFLOPS; 32 GiB HBM at 900 GB/s; 450 W, liquid cooled.
pub fn tpu_v3() -> ChipConfig {
    let e = ProcessNode::N16.energy();
    ChipConfig::builder("TPUv3", Generation::TpuV3)
        .year(2018)
        .node(ProcessNode::N16)
        .clock_mhz(940.0)
        .power_w(450.0, 123.0)
        .die_mm2(648.0)
        .compute(2, 2, 128)
        .vpu(128, 8)
        .vmem(MemSpec::sram(16, 3600.0, 15.0, &e))
        .smem(MemSpec::sram(4, 400.0, 5.0, &e))
        .hbm(MemSpec::hbm(4, 8, 225.0, &e)) // 32 GiB, 900 GB/s
        .ici(4, 82.0) // 656 Gbit/s per link
        .dma_engines(4)
        .types(&[DType::Bf16, DType::Fp32], 1.0)
        .cooling(CoolingTech::Liquid)
        .build()
        .expect("catalog config is valid")
}

/// TPUv4i (2020): the paper's inference chip. One TensorCore with four
/// 128x128 MXUs at 1050 MHz → 138 bf16 TFLOPS (int8 at 2x); 128 MiB
/// CMEM; 8 GiB HBM at 614 GB/s; 175 W, air cooled.
pub fn tpu_v4i() -> ChipConfig {
    let e = ProcessNode::N7.energy();
    ChipConfig::builder("TPUv4i", Generation::TpuV4i)
        .year(2020)
        .node(ProcessNode::N7)
        .clock_mhz(1050.0)
        .power_w(175.0, 55.0)
        .die_mm2(400.0)
        .compute(1, 4, 128)
        .vpu(128, 8)
        .vmem(MemSpec::sram(16, 8000.0, 12.0, &e))
        .cmem(MemSpec::sram(128, 5000.0, 25.0, &e))
        .smem(MemSpec::sram(8, 500.0, 5.0, &e))
        .hbm(MemSpec::hbm(2, 4, 307.0, &e)) // 8 GiB, 614 GB/s
        .ici(2, 100.0)
        .dma_engines(8)
        .types(&[DType::Int8, DType::Bf16, DType::Fp32], 2.0)
        .cooling(CoolingTech::Air)
        .build()
        .expect("catalog config is valid")
}

/// TPUv4 (2020/21): the training sibling — two TensorCores with four
/// MXUs each → 275 TFLOPS; 32 GiB HBM at 1200 GB/s; liquid cooled.
pub fn tpu_v4() -> ChipConfig {
    let e = ProcessNode::N7.energy();
    ChipConfig::builder("TPUv4", Generation::TpuV4)
        .year(2020)
        .node(ProcessNode::N7)
        .clock_mhz(1050.0)
        .power_w(275.0, 90.0)
        .die_mm2(600.0) // estimate; not published at paper time
        .compute(2, 4, 128)
        .vpu(128, 8)
        .vmem(MemSpec::sram(16, 8000.0, 12.0, &e))
        .cmem(MemSpec::sram(128, 5000.0, 25.0, &e))
        .smem(MemSpec::sram(8, 500.0, 5.0, &e))
        .hbm(MemSpec::hbm(4, 8, 300.0, &e)) // 32 GiB, 1200 GB/s
        .ici(4, 100.0)
        .dma_engines(8)
        .types(&[DType::Int8, DType::Bf16, DType::Fp32], 2.0)
        .cooling(CoolingTech::Liquid)
        .build()
        .expect("catalog config is valid")
}

/// A T4-class inference GPU envelope (2018): 65 fp16 TFLOPS / 130 int8
/// TOPS tensor-core peak, 16 GiB GDDR6 at 320 GB/s, 70 W.
///
/// Modeled as 40 SMs x two 16x16 "MXU-equivalent" tiles so that peak
/// throughput matches the published tensor-core numbers (65 fp16 TFLOPS,
/// 130 int8 TOPS at boost); the organization is a stand-in (the
/// comparison uses only envelope quantities).
pub fn gpu_t4_like() -> ChipConfig {
    let e = ProcessNode::N16.energy();
    ChipConfig::builder("GPU-T4", Generation::GpuT4Like)
        .year(2018)
        .node(ProcessNode::N16)
        .clock_mhz(1590.0) // boost clock (the published peak's basis)
        .power_w(70.0, 20.0)
        .die_mm2(545.0)
        .compute(40, 2, 16) // 40 SMs x 2x(16x16) @ 1590 MHz ≈ 65 fp16 TFLOPS
        .vpu(64, 4)
        // Per-SM register file + L1 (256 KiB) and shared memory (96 KiB);
        // MemSpec::sram is MiB-granular, so construct the specs directly.
        .vmem(MemSpec {
            capacity_bytes: 256 * 1024,
            ..MemSpec::sram(1, 2000.0, 30.0, &e)
        })
        .smem(MemSpec {
            capacity_bytes: 96 * 1024,
            ..MemSpec::sram(1, 400.0, 10.0, &e)
        })
        .hbm(MemSpec::ddr(16, 320.0, &e)) // GDDR6
        .ici(0, 0.0)
        .dma_engines(4)
        .types(&[DType::Int8, DType::Fp16, DType::Fp32], 2.0)
        .cooling(CoolingTech::Air)
        .build()
        .expect("catalog config is valid")
}

/// All five TPU generations, oldest first.
pub fn tpu_generations() -> Vec<ChipConfig> {
    vec![tpu_v1(), tpu_v2(), tpu_v3(), tpu_v4i(), tpu_v4()]
}

/// Everything in the catalog including the GPU baseline.
pub fn all_chips() -> Vec<ChipConfig> {
    let mut v = tpu_generations();
    v.push(gpu_t4_like());
    v
}

/// The chips compared in the paper's inference evaluation (E5):
/// TPUv2, TPUv3, TPUv4i and the GPU baseline.
pub fn inference_comparison_set() -> Vec<ChipConfig> {
    vec![tpu_v2(), tpu_v3(), tpu_v4i(), gpu_t4_like()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GIB;

    #[test]
    fn all_catalog_entries_validate() {
        for c in all_chips() {
            c.validate().expect("catalog entry must validate");
        }
    }

    #[test]
    fn table1_headline_peaks() {
        // TPUv1: 92 int8 TOPS.
        let v1 = tpu_v1();
        assert!((v1.peak_flops(DType::Int8).unwrap() / 1e12 - 91.75).abs() < 0.5);
        assert_eq!(v1.peak_flops(DType::Bf16), None);
        // TPUv2: 46 bf16 TFLOPS.
        assert!((tpu_v2().peak_flops(DType::Bf16).unwrap() / 1e12 - 45.9).abs() < 0.5);
        // TPUv3: 123 bf16 TFLOPS.
        assert!((tpu_v3().peak_flops(DType::Bf16).unwrap() / 1e12 - 123.2).abs() < 0.5);
        // TPUv4i: 138 bf16 TFLOPS, 276 int8 TOPS.
        let v4i = tpu_v4i();
        assert!((v4i.peak_flops(DType::Bf16).unwrap() / 1e12 - 137.6).abs() < 0.5);
        assert!((v4i.peak_flops(DType::Int8).unwrap() / 1e12 - 275.3).abs() < 1.0);
        // TPUv4: 275 bf16 TFLOPS.
        assert!((tpu_v4().peak_flops(DType::Bf16).unwrap() / 1e12 - 275.3).abs() < 1.0);
        // GPU baseline: ~64 fp16 TFLOPS.
        let t4 = gpu_t4_like();
        let fp16 = t4.peak_flops(DType::Fp16).unwrap() / 1e12;
        assert!((55.0..75.0).contains(&fp16), "got {fp16}");
    }

    #[test]
    fn table1_memory_capacities() {
        assert_eq!(tpu_v1().hbm.capacity_bytes, 8 * GIB);
        assert_eq!(tpu_v2().hbm.capacity_bytes, 16 * GIB);
        assert_eq!(tpu_v3().hbm.capacity_bytes, 32 * GIB);
        assert_eq!(tpu_v4i().hbm.capacity_bytes, 8 * GIB);
        assert_eq!(tpu_v4().hbm.capacity_bytes, 32 * GIB);
        assert_eq!(tpu_v4i().cmem.unwrap().capacity_mib(), 128);
        assert!(tpu_v1().cmem.is_none());
        assert!(tpu_v2().cmem.is_none());
        assert!(tpu_v3().cmem.is_none());
    }

    #[test]
    fn table1_bandwidths() {
        assert!((tpu_v1().hbm.bandwidth_gbps() - 34.0).abs() < 0.1);
        assert!((tpu_v2().hbm.bandwidth_gbps() - 700.0).abs() < 1.0);
        assert!((tpu_v3().hbm.bandwidth_gbps() - 900.0).abs() < 1.0);
        assert!((tpu_v4i().hbm.bandwidth_gbps() - 614.0).abs() < 1.0);
        assert!((tpu_v4().hbm.bandwidth_gbps() - 1200.0).abs() < 1.0);
    }

    #[test]
    fn cooling_story_lesson_five() {
        // Inference chips deploy air-cooled; big training chips go liquid.
        assert!(tpu_v1().is_air_cooled());
        assert!(tpu_v2().is_air_cooled());
        assert!(!tpu_v3().is_air_cooled());
        assert!(tpu_v4i().is_air_cooled());
        assert!(!tpu_v4().is_air_cooled());
        // And TPUv4i's TDP is well below TPUv3's despite similar perf.
        assert!(tpu_v4i().tdp_w < tpu_v3().tdp_w / 2.0);
    }

    #[test]
    fn generations_are_chronological() {
        let gens = tpu_generations();
        for pair in gens.windows(2) {
            assert!(pair[0].year <= pair[1].year);
        }
        assert_eq!(gens.len(), 5);
        assert_eq!(all_chips().len(), 6);
        assert_eq!(inference_comparison_set().len(), 4);
    }

    #[test]
    fn v4i_perf_per_watt_dominates_v3_at_peak() {
        // The core of E5's expected shape: peak bf16 FLOPS per TDP watt.
        let v3 = tpu_v3();
        let v4i = tpu_v4i();
        let v3_ppw = v3.peak_flops(DType::Bf16).unwrap() / v3.tdp_w;
        let v4i_ppw = v4i.peak_flops(DType::Bf16).unwrap() / v4i.tdp_w;
        assert!(
            v4i_ppw / v3_ppw > 2.0,
            "v4i should have >2x peak perf/W vs v3, got {:.2}",
            v4i_ppw / v3_ppw
        );
    }

    #[test]
    fn v4i_ridge_point_is_high() {
        // 138 TFLOPS over 614 GB/s ≈ 224 FLOP/byte: most production apps
        // sit below this, i.e. they are memory bound — the motivation for
        // CMEM.
        let ridge = tpu_v4i().ridge_flops_per_byte(DType::Bf16).unwrap();
        assert!((200.0..250.0).contains(&ridge), "got {ridge}");
    }

    #[test]
    fn accumulation_orders_differ_v1_vs_v2plus() {
        use tpu_numerics::accum::AccumOrder;
        assert_eq!(tpu_v1().accum_order(), AccumOrder::Chunked { width: 256 });
        assert_eq!(tpu_v4i().accum_order(), AccumOrder::Chunked { width: 128 });
    }
}
