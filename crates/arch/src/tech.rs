//! Process technology and its unequal scaling (paper Lesson 1).
//!
//! "Semiconductor technology advances unequally": between 45 nm and 7 nm,
//! logic energy improved by roughly an order of magnitude, on-chip SRAM
//! energy by only ~4x, and DRAM-interface energy by ~2x. The consequence
//! drawn in the paper is that a 2020 inference chip should spend area on
//! big on-chip SRAM (CMEM) and on compute, because data movement —
//! especially off-chip — dominates energy.
//!
//! The absolute numbers below are first-order figures in the spirit of
//! Horowitz's ISSCC'14 energy table, scaled per node with *unequal*
//! factors per resource class. Experiment E2 regenerates the paper's
//! scaling figure from this table.

use std::fmt;

/// A fabrication process node used by some TPU generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessNode {
    /// 45 nm class (reference point for the energy table).
    N45,
    /// 28 nm class (TPUv1).
    N28,
    /// 16 nm class (TPUv2, TPUv3; the 12 nm GPU baseline maps here).
    N16,
    /// 7 nm class (TPUv4i, TPUv4).
    N7,
}

impl ProcessNode {
    /// All nodes, newest last.
    pub const ALL: [ProcessNode; 4] = [
        ProcessNode::N45,
        ProcessNode::N28,
        ProcessNode::N16,
        ProcessNode::N7,
    ];

    /// Feature size in nanometres (marketing number).
    pub const fn nanometres(self) -> u32 {
        match self {
            ProcessNode::N45 => 45,
            ProcessNode::N28 => 28,
            ProcessNode::N16 => 16,
            ProcessNode::N7 => 7,
        }
    }

    /// Number of full-node steps since the 45 nm reference.
    pub const fn steps_from_reference(self) -> u32 {
        match self {
            ProcessNode::N45 => 0,
            ProcessNode::N28 => 1,
            ProcessNode::N16 => 2,
            ProcessNode::N7 => 3,
        }
    }

    /// Energy table for this node.
    pub fn energy(self) -> EnergyTable {
        EnergyTable::for_node(self)
    }

    /// Logic (transistor) density relative to 45 nm.
    ///
    /// Density roughly doubles per step — logic keeps shrinking even when
    /// SRAM does not (see [`EnergyTable`] and
    /// [`crate::floorplan::sram_mm2_per_mib`]).
    pub fn logic_density_vs_reference(self) -> f64 {
        2.0f64.powi(self.steps_from_reference() as i32)
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometres())
    }
}

/// Per-operation energy at a given node, in picojoules.
///
/// Scaling factors per full node step are *deliberately unequal*:
/// logic x0.45, SRAM x0.72, DRAM interface x0.85, wires x0.90 — this is
/// the quantitative heart of the paper's Lesson 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// The node this table describes.
    pub node: ProcessNode,
    /// Energy of one int8 multiply-accumulate (pJ).
    pub mac_int8_pj: f64,
    /// Energy of one bf16 multiply with fp32 accumulate (pJ).
    pub mac_bf16_pj: f64,
    /// Energy of one fp32 multiply-accumulate (pJ).
    pub mac_fp32_pj: f64,
    /// Energy per byte read from a large on-chip SRAM (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Energy per byte moved over an HBM interface (pJ/B).
    pub hbm_pj_per_byte: f64,
    /// Energy per byte moved over a DDR/GDDR interface (pJ/B).
    pub ddr_pj_per_byte: f64,
    /// Energy per byte per millimetre of on-chip wire (pJ/B/mm).
    pub wire_pj_per_byte_mm: f64,
}

/// Reference (45 nm) energies, first-order Horowitz-style figures.
const REF: EnergyTable = EnergyTable {
    node: ProcessNode::N45,
    mac_int8_pj: 0.23,      // 0.2 pJ mult + 0.03 pJ add
    mac_bf16_pj: 1.20,      // ~16b fp mult + fp32 add
    mac_fp32_pj: 4.60,      // 3.7 pJ mult + 0.9 pJ add
    sram_pj_per_byte: 5.0,  // multi-megabyte array, incl. H-tree
    hbm_pj_per_byte: 56.0,  // ~7 pJ/bit (2.5D stacked)
    ddr_pj_per_byte: 160.0, // ~20 pJ/bit (off-package)
    wire_pj_per_byte_mm: 0.50,
};

/// Per-step scaling factors, by resource class.
const LOGIC_STEP: f64 = 0.45;
const SRAM_STEP: f64 = 0.72;
const DRAM_STEP: f64 = 0.85;
const WIRE_STEP: f64 = 0.90;

impl EnergyTable {
    /// The energy table for `node`, derived from the 45 nm reference by
    /// unequal per-class scaling.
    pub fn for_node(node: ProcessNode) -> EnergyTable {
        let s = node.steps_from_reference() as i32;
        let logic = LOGIC_STEP.powi(s);
        let sram = SRAM_STEP.powi(s);
        let dram = DRAM_STEP.powi(s);
        let wire = WIRE_STEP.powi(s);
        EnergyTable {
            node,
            mac_int8_pj: REF.mac_int8_pj * logic,
            mac_bf16_pj: REF.mac_bf16_pj * logic,
            mac_fp32_pj: REF.mac_fp32_pj * logic,
            sram_pj_per_byte: REF.sram_pj_per_byte * sram,
            hbm_pj_per_byte: REF.hbm_pj_per_byte * dram,
            ddr_pj_per_byte: REF.ddr_pj_per_byte * dram,
            wire_pj_per_byte_mm: REF.wire_pj_per_byte_mm * wire,
        }
    }

    /// Ratio of DRAM-interface energy to one bf16 MAC at this node.
    ///
    /// This is the "data movement dominates" headline number: at 7 nm one
    /// HBM byte costs hundreds of MACs' worth of energy.
    pub fn hbm_byte_per_bf16_mac(&self) -> f64 {
        self.hbm_pj_per_byte / self.mac_bf16_pj
    }

    /// How much each resource class improved relative to the 45 nm
    /// reference: `(logic, sram, dram, wire)` as improvement factors >= 1.
    pub fn improvement_vs_reference(&self) -> (f64, f64, f64, f64) {
        (
            REF.mac_bf16_pj / self.mac_bf16_pj,
            REF.sram_pj_per_byte / self.sram_pj_per_byte,
            REF.hbm_pj_per_byte / self.hbm_pj_per_byte,
            REF.wire_pj_per_byte_mm / self.wire_pj_per_byte_mm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_ordered_newest_last() {
        let nm: Vec<u32> = ProcessNode::ALL.iter().map(|n| n.nanometres()).collect();
        assert_eq!(nm, vec![45, 28, 16, 7]);
        assert_eq!(ProcessNode::N7.steps_from_reference(), 3);
    }

    #[test]
    fn reference_table_is_identity_at_45nm() {
        let t = EnergyTable::for_node(ProcessNode::N45);
        assert_eq!(t, REF);
    }

    #[test]
    fn all_energies_shrink_with_scaling() {
        let mut prev = EnergyTable::for_node(ProcessNode::N45);
        for node in [ProcessNode::N28, ProcessNode::N16, ProcessNode::N7] {
            let t = EnergyTable::for_node(node);
            assert!(t.mac_int8_pj < prev.mac_int8_pj);
            assert!(t.mac_bf16_pj < prev.mac_bf16_pj);
            assert!(t.mac_fp32_pj < prev.mac_fp32_pj);
            assert!(t.sram_pj_per_byte < prev.sram_pj_per_byte);
            assert!(t.hbm_pj_per_byte < prev.hbm_pj_per_byte);
            assert!(t.wire_pj_per_byte_mm < prev.wire_pj_per_byte_mm);
            prev = t;
        }
    }

    #[test]
    fn scaling_is_unequal_lesson_one() {
        // The paper's Lesson 1: at 7 nm, logic improved much more than
        // SRAM, which improved more than DRAM, which beat wires barely.
        let (logic, sram, dram, wire) =
            EnergyTable::for_node(ProcessNode::N7).improvement_vs_reference();
        assert!(
            logic > 2.0 * sram,
            "logic ({logic:.1}x) should outpace SRAM ({sram:.1}x) by >2x"
        );
        assert!(
            sram > dram,
            "SRAM ({sram:.1}x) should outpace DRAM ({dram:.1}x)"
        );
        assert!(
            dram > wire,
            "DRAM ({dram:.1}x) should outpace wire ({wire:.1}x)"
        );
        assert!(logic > 8.0, "logic should improve ~10x over three steps");
        assert!(dram < 2.0, "DRAM interface improves <2x over three steps");
    }

    #[test]
    fn data_movement_dominates_at_7nm() {
        let t = EnergyTable::for_node(ProcessNode::N7);
        // One HBM byte costs hundreds of bf16 MACs at 7 nm.
        assert!(
            t.hbm_byte_per_bf16_mac() > 100.0,
            "got {}",
            t.hbm_byte_per_bf16_mac()
        );
        // And the gap *grows* as technology scales (the motivation for CMEM).
        let old = EnergyTable::for_node(ProcessNode::N28);
        assert!(t.hbm_byte_per_bf16_mac() > old.hbm_byte_per_bf16_mac());
    }

    #[test]
    fn int8_cheaper_than_bf16_cheaper_than_fp32() {
        for node in ProcessNode::ALL {
            let t = EnergyTable::for_node(node);
            assert!(t.mac_int8_pj < t.mac_bf16_pj);
            assert!(t.mac_bf16_pj < t.mac_fp32_pj);
        }
    }

    #[test]
    fn ddr_costs_more_than_hbm() {
        for node in ProcessNode::ALL {
            let t = EnergyTable::for_node(node);
            assert!(t.ddr_pj_per_byte > t.hbm_pj_per_byte);
        }
    }

    #[test]
    fn logic_density_doubles_per_step() {
        assert_eq!(ProcessNode::N45.logic_density_vs_reference(), 1.0);
        assert_eq!(ProcessNode::N7.logic_density_vs_reference(), 8.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", ProcessNode::N7), "7nm");
    }
}
