//! ICI topologies: how chips in a pod are wired.
//!
//! TPUv4i ships two ICI links per chip, enough for the 4-chip board
//! (a 2x2 ring) the paper describes; the training chips wire larger
//! rings and 2-D tori. This module models hop counts and bisection so
//! the scale-out analysis (E15) can reason about pods bigger than a
//! board.

use std::fmt;

/// A pod interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IciTopology {
    /// One chip, no ICI.
    Single,
    /// A ring of `n >= 2` chips (the 4-chip TPUv4i board is `Ring(4)`).
    Ring(u32),
    /// An `x by y` 2-D torus (TPUv2/v3 pod style), `x, y >= 2`.
    Torus2d {
        /// Chips along the first dimension.
        x: u32,
        /// Chips along the second dimension.
        y: u32,
    },
}

impl IciTopology {
    /// The natural topology for an `n`-chip inference pod: single chip,
    /// a ring up to boards of 8, a near-square torus beyond.
    pub fn recommended(n: u32) -> IciTopology {
        match n {
            0 | 1 => IciTopology::Single,
            2..=8 => IciTopology::Ring(n),
            _ => {
                let mut x = (n as f64).sqrt().floor() as u32;
                while !n.is_multiple_of(x) {
                    x -= 1;
                }
                IciTopology::Torus2d { x, y: n / x }
            }
        }
    }

    /// Number of chips.
    pub fn chips(&self) -> u32 {
        match *self {
            IciTopology::Single => 1,
            IciTopology::Ring(n) => n,
            IciTopology::Torus2d { x, y } => x * y,
        }
    }

    /// ICI links each chip needs in this topology.
    pub fn links_per_chip(&self) -> u32 {
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(2) => 1,
            IciTopology::Ring(_) => 2,
            IciTopology::Torus2d { .. } => 4,
        }
    }

    /// Minimal hop count between chips `a` and `b` (indices in row-major
    /// order for the torus).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let n = self.chips();
        assert!(a < n && b < n, "chip index out of range");
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(n) => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            IciTopology::Torus2d { x, y } => {
                let (ax, ay) = (a % x, a / x);
                let (bx, by) = (b % x, b / x);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(x - dx) + dy.min(y - dy)
            }
        }
    }

    /// The largest minimal hop count between any pair (network diameter).
    pub fn diameter(&self) -> u32 {
        let n = self.chips();
        let mut d = 0;
        for a in 0..n {
            for b in 0..n {
                d = d.max(self.hops(a, b));
            }
        }
        d
    }

    /// Mean hops over all ordered pairs of distinct chips (0 for Single).
    pub fn mean_hops(&self) -> f64 {
        let n = self.chips();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b) as u64;
                }
            }
        }
        total as f64 / (n as u64 * (n as u64 - 1)) as f64
    }

    /// Links crossing the worst-case bisection (the all-reduce
    /// bottleneck for data-parallel serving).
    pub fn bisection_links(&self) -> u32 {
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(2) => 1,
            IciTopology::Ring(_) => 2,
            // Cut the longer dimension: 2 wrap links per row crossing it.
            IciTopology::Torus2d { x, y } => 2 * x.min(y),
        }
    }
}

impl fmt::Display for IciTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IciTopology::Single => write!(f, "single"),
            IciTopology::Ring(n) => write!(f, "ring-{n}"),
            IciTopology::Torus2d { x, y } => write!(f, "torus-{x}x{y}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_shapes() {
        assert_eq!(IciTopology::recommended(1), IciTopology::Single);
        assert_eq!(IciTopology::recommended(4), IciTopology::Ring(4));
        assert_eq!(IciTopology::recommended(8), IciTopology::Ring(8));
        assert_eq!(
            IciTopology::recommended(16),
            IciTopology::Torus2d { x: 4, y: 4 }
        );
        assert_eq!(
            IciTopology::recommended(12),
            IciTopology::Torus2d { x: 3, y: 4 }
        );
        for n in 1..64 {
            assert_eq!(IciTopology::recommended(n).chips(), n.max(1));
        }
    }

    #[test]
    fn ring_hops_wrap() {
        let r = IciTopology::Ring(6);
        assert_eq!(r.hops(0, 1), 1);
        assert_eq!(r.hops(0, 3), 3);
        assert_eq!(r.hops(0, 5), 1); // around the back
        assert_eq!(r.hops(2, 2), 0);
        assert_eq!(r.diameter(), 3);
        assert!((r.mean_hops() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn torus_hops_wrap_both_dims() {
        let t = IciTopology::Torus2d { x: 4, y: 4 };
        // (0,0) to (3,3): 1 hop each way via wraparound.
        assert_eq!(t.hops(0, 15), 2);
        // (0,0) to (2,2): 2+2 without wrap help.
        assert_eq!(t.hops(0, 10), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn v4i_board_matches_its_link_budget() {
        use crate::catalog;
        // The paper's 4-chip TPUv4i board is a ring; v4i's 2 ICI links
        // are exactly what a ring needs.
        let board = IciTopology::recommended(4);
        assert_eq!(board.links_per_chip(), 2);
        assert_eq!(catalog::tpu_v4i().ici_links, 2);
        // A torus would need 4 links — the training chips' budget.
        assert_eq!(IciTopology::Torus2d { x: 4, y: 4 }.links_per_chip(), 4);
        assert_eq!(catalog::tpu_v4().ici_links, 4);
    }

    #[test]
    fn bisection_grows_with_torus_width() {
        assert_eq!(IciTopology::Ring(8).bisection_links(), 2);
        assert_eq!(IciTopology::Torus2d { x: 4, y: 4 }.bisection_links(), 8);
        assert_eq!(IciTopology::Single.bisection_links(), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", IciTopology::Ring(4)), "ring-4");
        assert_eq!(
            format!("{}", IciTopology::Torus2d { x: 2, y: 3 }),
            "torus-2x3"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_bounds_checked() {
        IciTopology::Ring(4).hops(0, 4);
    }
}
