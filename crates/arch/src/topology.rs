//! ICI topologies: how chips in a pod are wired.
//!
//! TPUv4i ships two ICI links per chip, enough for the 4-chip board
//! (a 2x2 ring) the paper describes; the training chips wire larger
//! rings and 2-D tori. This module models hop counts and bisection so
//! the scale-out analysis (E15) can reason about pods bigger than a
//! board.
//!
//! Pods at fleet scale also *break*: TPUv4 routes around failed machines
//! instead of draining the pod. [`LinkFailures`] masks failed links and
//! chips out of a topology, and [`DegradedIci`] answers the questions a
//! failure-aware scheduler asks — can traffic still reroute between two
//! chips (and at what hop cost), is the pod partitioned, what is the
//! largest surviving component, and how much bisection is left.

use std::fmt;

/// A pod interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IciTopology {
    /// One chip, no ICI.
    Single,
    /// A ring of `n >= 2` chips (the 4-chip TPUv4i board is `Ring(4)`).
    Ring(u32),
    /// An `x by y` 2-D torus (TPUv2/v3 pod style), `x, y >= 2`.
    Torus2d {
        /// Chips along the first dimension.
        x: u32,
        /// Chips along the second dimension.
        y: u32,
    },
}

impl IciTopology {
    /// The natural topology for an `n`-chip inference pod: single chip,
    /// a ring up to boards of 8, a near-square torus beyond.
    pub fn recommended(n: u32) -> IciTopology {
        match n {
            0 | 1 => IciTopology::Single,
            2..=8 => IciTopology::Ring(n),
            _ => {
                let mut x = (n as f64).sqrt().floor() as u32;
                while !n.is_multiple_of(x) {
                    x -= 1;
                }
                IciTopology::Torus2d { x, y: n / x }
            }
        }
    }

    /// Number of chips.
    pub fn chips(&self) -> u32 {
        match *self {
            IciTopology::Single => 1,
            IciTopology::Ring(n) => n,
            IciTopology::Torus2d { x, y } => x * y,
        }
    }

    /// ICI links each chip needs in this topology.
    pub fn links_per_chip(&self) -> u32 {
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(2) => 1,
            IciTopology::Ring(_) => 2,
            IciTopology::Torus2d { .. } => 4,
        }
    }

    /// Minimal hop count between chips `a` and `b` (indices in row-major
    /// order for the torus).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let n = self.chips();
        assert!(a < n && b < n, "chip index out of range");
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(n) => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            IciTopology::Torus2d { x, y } => {
                let (ax, ay) = (a % x, a / x);
                let (bx, by) = (b % x, b / x);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(x - dx) + dy.min(y - dy)
            }
        }
    }

    /// The largest minimal hop count between any pair (network diameter).
    pub fn diameter(&self) -> u32 {
        let n = self.chips();
        let mut d = 0;
        for a in 0..n {
            for b in 0..n {
                d = d.max(self.hops(a, b));
            }
        }
        d
    }

    /// Mean hops over all ordered pairs of distinct chips (0 for Single).
    pub fn mean_hops(&self) -> f64 {
        let n = self.chips();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b) as u64;
                }
            }
        }
        total as f64 / (n as u64 * (n as u64 - 1)) as f64
    }

    /// Links crossing the worst-case bisection (the all-reduce
    /// bottleneck for data-parallel serving).
    pub fn bisection_links(&self) -> u32 {
        match *self {
            IciTopology::Single => 0,
            IciTopology::Ring(2) => 1,
            IciTopology::Ring(_) => 2,
            // Cut the longer dimension: 2 wrap links per row crossing it.
            IciTopology::Torus2d { x, y } => 2 * x.min(y),
        }
    }
}

impl IciTopology {
    /// Every physical link as a normalized `(lo, hi)` chip pair, sorted
    /// and deduplicated (a 2-ring and 2-wide torus dimensions would
    /// otherwise list their wrap link twice).
    pub fn links(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut push = |a: u32, b: u32| {
            if a != b {
                let l = (a.min(b), a.max(b));
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        };
        match *self {
            IciTopology::Single => {}
            IciTopology::Ring(n) => {
                for i in 0..n {
                    push(i, (i + 1) % n);
                }
            }
            IciTopology::Torus2d { x, y } => {
                for cy in 0..y {
                    for cx in 0..x {
                        let i = cy * x + cx;
                        push(i, cy * x + (cx + 1) % x);
                        push(i, ((cy + 1) % y) * x + cx);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Chips directly wired to `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn neighbors(&self, a: u32) -> Vec<u32> {
        assert!(a < self.chips(), "chip index out of range");
        self.links()
            .into_iter()
            .filter_map(|(u, v)| {
                if u == a {
                    Some(v)
                } else if v == a {
                    Some(u)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Applies a failure mask, producing the degraded topology view.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] if a failed link is not a physical link of this
    /// topology or a failed chip index is out of range.
    pub fn degrade(&self, failures: &LinkFailures) -> Result<DegradedIci, TopologyError> {
        let n = self.chips();
        let physical = self.links();
        for &(a, b) in &failures.links {
            let norm = (a.min(b), a.max(b));
            if !physical.contains(&norm) {
                return Err(TopologyError::UnknownLink { a, b });
            }
        }
        for &c in &failures.chips {
            if c >= n {
                return Err(TopologyError::ChipOutOfRange { chip: c, chips: n });
            }
        }
        let mut alive = vec![true; n as usize];
        for &c in &failures.chips {
            alive[c as usize] = false;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        let mut surviving = Vec::new();
        for (a, b) in physical {
            let failed = failures
                .links
                .iter()
                .any(|&(u, v)| (u.min(v), u.max(v)) == (a, b));
            // A dead chip takes all its links down with it.
            if failed || !alive[a as usize] || !alive[b as usize] {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
            surviving.push((a, b));
        }
        Ok(DegradedIci {
            topology: *self,
            alive,
            adj,
            surviving,
        })
    }
}

/// A set of failed ICI links and chips to mask out of a topology
/// (TPUv4-style: route around failures instead of draining the pod).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFailures {
    /// Failed links as chip pairs (order within a pair is irrelevant).
    pub links: Vec<(u32, u32)>,
    /// Failed chips; all of a dead chip's links are down.
    pub chips: Vec<u32>,
}

impl LinkFailures {
    /// The healthy mask.
    pub fn none() -> LinkFailures {
        LinkFailures::default()
    }

    /// Only link failures.
    pub fn links(links: Vec<(u32, u32)>) -> LinkFailures {
        LinkFailures {
            links,
            chips: Vec::new(),
        }
    }

    /// Only chip failures.
    pub fn chips(chips: Vec<u32>) -> LinkFailures {
        LinkFailures {
            links: Vec::new(),
            chips,
        }
    }

    /// Whether the mask removes anything.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.chips.is_empty()
    }
}

/// An invalid failure mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The named link is not a physical link of the topology.
    UnknownLink {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// A failed chip index outside the pod.
    ChipOutOfRange {
        /// The offending index.
        chip: u32,
        /// Pod size it must be below.
        chips: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::UnknownLink { a, b } => {
                write!(f, "({a}, {b}) is not a link of this topology")
            }
            TopologyError::ChipOutOfRange { chip, chips } => {
                write!(f, "failed chip {chip} out of range for a {chips}-chip pod")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A topology with a failure mask applied: the question it answers is
/// *reroute or partition* — minimal surviving hop counts where a path
/// exists, `None` where the pod has split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedIci {
    topology: IciTopology,
    alive: Vec<bool>,
    adj: Vec<Vec<u32>>,
    surviving: Vec<(u32, u32)>,
}

impl DegradedIci {
    /// The underlying (healthy) topology.
    pub fn topology(&self) -> IciTopology {
        self.topology
    }

    /// Chips still alive.
    pub fn alive_chips(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }

    /// Whether chip `c` survived the mask.
    pub fn is_alive(&self, c: u32) -> bool {
        self.alive.get(c as usize).copied().unwrap_or(false)
    }

    /// Surviving links.
    pub fn surviving_links(&self) -> &[(u32, u32)] {
        &self.surviving
    }

    /// Minimal hops between `a` and `b` over surviving links (BFS since
    /// shortest paths must now route around holes). `None` when either
    /// endpoint is dead or the survivors are partitioned between them.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn hops(&self, a: u32, b: u32) -> Option<u32> {
        let n = self.topology.chips();
        assert!(a < n && b < n, "chip index out of range");
        if !self.alive[a as usize] || !self.alive[b as usize] {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut dist: Vec<Option<u32>> = vec![None; n as usize];
        dist[a as usize] = Some(0);
        let mut frontier = std::collections::VecDeque::from([a]);
        while let Some(u) = frontier.pop_front() {
            let d = dist[u as usize].expect("visited");
            for &v in &self.adj[u as usize] {
                if dist[v as usize].is_none() {
                    if v == b {
                        return Some(d + 1);
                    }
                    dist[v as usize] = Some(d + 1);
                    frontier.push_back(v);
                }
            }
        }
        None
    }

    /// Whether every pair of *alive* chips can still reach each other.
    pub fn is_connected(&self) -> bool {
        self.largest_component().len() as u32 == self.alive_chips()
    }

    /// The largest set of mutually reachable alive chips (the fragment a
    /// partitioned pod would keep serving from), sorted by index.
    pub fn largest_component(&self) -> Vec<u32> {
        let n = self.topology.chips() as usize;
        let mut seen = vec![false; n];
        let mut best: Vec<u32> = Vec::new();
        for start in 0..n {
            if seen[start] || !self.alive[start] {
                continue;
            }
            let mut comp = vec![start as u32];
            seen[start] = true;
            let mut frontier = std::collections::VecDeque::from([start as u32]);
            while let Some(u) = frontier.pop_front() {
                for &v in &self.adj[u as usize] {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        comp.push(v);
                        frontier.push_back(v);
                    }
                }
            }
            if comp.len() > best.len() {
                best = comp;
            }
        }
        best.sort_unstable();
        best
    }

    /// The largest surviving minimal hop count over alive chip pairs;
    /// `None` if the survivors are partitioned (or nothing is alive).
    pub fn diameter(&self) -> Option<u32> {
        let n = self.topology.chips();
        let mut d = 0;
        let mut any = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if self.alive[a as usize] && self.alive[b as usize] {
                    any = true;
                    d = d.max(self.hops(a, b)?);
                }
            }
        }
        if any || self.alive_chips() == 1 {
            Some(d)
        } else {
            None
        }
    }

    /// Surviving links crossing the healthy topology's worst-case
    /// bisection cut — the degraded all-reduce bottleneck. Equals
    /// [`IciTopology::bisection_links`] with an empty mask.
    pub fn bisection_links(&self) -> u32 {
        let side = |i: u32| -> bool {
            match self.topology {
                IciTopology::Single => false,
                IciTopology::Ring(n) => i < n / 2,
                IciTopology::Torus2d { x, y } => {
                    // Cut across the longer dimension, matching the
                    // healthy bisection count of 2 * min(x, y).
                    if y >= x {
                        (i / x) < y / 2
                    } else {
                        (i % x) < x / 2
                    }
                }
            }
        };
        self.surviving
            .iter()
            .filter(|&&(a, b)| side(a) != side(b))
            .count() as u32
    }
}

impl fmt::Display for IciTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IciTopology::Single => write!(f, "single"),
            IciTopology::Ring(n) => write!(f, "ring-{n}"),
            IciTopology::Torus2d { x, y } => write!(f, "torus-{x}x{y}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_shapes() {
        assert_eq!(IciTopology::recommended(1), IciTopology::Single);
        assert_eq!(IciTopology::recommended(4), IciTopology::Ring(4));
        assert_eq!(IciTopology::recommended(8), IciTopology::Ring(8));
        assert_eq!(
            IciTopology::recommended(16),
            IciTopology::Torus2d { x: 4, y: 4 }
        );
        assert_eq!(
            IciTopology::recommended(12),
            IciTopology::Torus2d { x: 3, y: 4 }
        );
        for n in 1..64 {
            assert_eq!(IciTopology::recommended(n).chips(), n.max(1));
        }
    }

    #[test]
    fn ring_hops_wrap() {
        let r = IciTopology::Ring(6);
        assert_eq!(r.hops(0, 1), 1);
        assert_eq!(r.hops(0, 3), 3);
        assert_eq!(r.hops(0, 5), 1); // around the back
        assert_eq!(r.hops(2, 2), 0);
        assert_eq!(r.diameter(), 3);
        assert!((r.mean_hops() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn torus_hops_wrap_both_dims() {
        let t = IciTopology::Torus2d { x: 4, y: 4 };
        // (0,0) to (3,3): 1 hop each way via wraparound.
        assert_eq!(t.hops(0, 15), 2);
        // (0,0) to (2,2): 2+2 without wrap help.
        assert_eq!(t.hops(0, 10), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn v4i_board_matches_its_link_budget() {
        use crate::catalog;
        // The paper's 4-chip TPUv4i board is a ring; v4i's 2 ICI links
        // are exactly what a ring needs.
        let board = IciTopology::recommended(4);
        assert_eq!(board.links_per_chip(), 2);
        assert_eq!(catalog::tpu_v4i().ici_links, 2);
        // A torus would need 4 links — the training chips' budget.
        assert_eq!(IciTopology::Torus2d { x: 4, y: 4 }.links_per_chip(), 4);
        assert_eq!(catalog::tpu_v4().ici_links, 4);
    }

    #[test]
    fn bisection_grows_with_torus_width() {
        assert_eq!(IciTopology::Ring(8).bisection_links(), 2);
        assert_eq!(IciTopology::Torus2d { x: 4, y: 4 }.bisection_links(), 8);
        assert_eq!(IciTopology::Single.bisection_links(), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", IciTopology::Ring(4)), "ring-4");
        assert_eq!(
            format!("{}", IciTopology::Torus2d { x: 2, y: 3 }),
            "torus-2x3"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_bounds_checked() {
        IciTopology::Ring(4).hops(0, 4);
    }

    #[test]
    fn link_enumeration_matches_link_budget() {
        assert!(IciTopology::Single.links().is_empty());
        assert_eq!(IciTopology::Ring(2).links(), vec![(0, 1)]);
        assert_eq!(IciTopology::Ring(4).links().len(), 4);
        // n chips * 4 links / 2 endpoints; 2-wide dims share wrap links.
        assert_eq!(IciTopology::Torus2d { x: 4, y: 4 }.links().len(), 32);
        assert_eq!(IciTopology::Torus2d { x: 2, y: 2 }.links().len(), 4);
        let mut nbrs = IciTopology::Ring(4).neighbors(0);
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn healthy_mask_reproduces_healthy_metrics() {
        for topo in [
            IciTopology::Ring(6),
            IciTopology::Torus2d { x: 4, y: 4 },
            IciTopology::Torus2d { x: 3, y: 4 },
        ] {
            let d = topo.degrade(&LinkFailures::none()).unwrap();
            assert!(d.is_connected());
            assert_eq!(d.alive_chips(), topo.chips());
            assert_eq!(d.diameter(), Some(topo.diameter()));
            assert_eq!(d.bisection_links(), topo.bisection_links());
            for a in 0..topo.chips() {
                for b in 0..topo.chips() {
                    assert_eq!(d.hops(a, b), Some(topo.hops(a, b)));
                }
            }
        }
    }

    #[test]
    fn ring_reroutes_the_long_way_around_a_cut_link() {
        let d = IciTopology::Ring(6)
            .degrade(&LinkFailures::links(vec![(2, 3)]))
            .unwrap();
        assert!(d.is_connected());
        // 2-3 now goes the long way: 5 hops instead of 1.
        assert_eq!(d.hops(2, 3), Some(5));
        assert_eq!(d.hops(0, 1), Some(1));
        assert_eq!(d.diameter(), Some(5));
        // One of the two bisection-crossing links ({0..3} vs {3..6}) is
        // gone.
        assert_eq!(d.bisection_links(), 1);
    }

    #[test]
    fn two_ring_cuts_partition_the_pod() {
        let d = IciTopology::Ring(6)
            .degrade(&LinkFailures::links(vec![(0, 1), (3, 4)]))
            .unwrap();
        assert!(!d.is_connected());
        // {1,2,3} and {4,5,0} split evenly; largest component has 3.
        assert_eq!(d.hops(0, 1), None);
        assert_eq!(d.hops(0, 4), Some(2), "same fragment still routes");
        assert_eq!(d.diameter(), None);
        assert_eq!(d.largest_component().len(), 3);
    }

    #[test]
    fn torus_routes_around_a_dead_chip() {
        let t = IciTopology::Torus2d { x: 4, y: 4 };
        let d = t.degrade(&LinkFailures::chips(vec![5])).unwrap();
        assert!(d.is_connected(), "a torus survives one chip loss");
        assert_eq!(d.alive_chips(), 15);
        assert!(!d.is_alive(5));
        assert_eq!(d.hops(5, 0), None, "dead chips are unreachable");
        // Neighbors of the hole route around it: 4-6 was 2 hops, still 2
        // via another row.
        assert_eq!(d.hops(4, 6), Some(2));
        assert!(d.bisection_links() < t.bisection_links());
    }

    #[test]
    fn failure_masks_are_validated() {
        let r = IciTopology::Ring(4);
        assert_eq!(
            r.degrade(&LinkFailures::links(vec![(0, 2)])),
            Err(TopologyError::UnknownLink { a: 0, b: 2 })
        );
        assert_eq!(
            r.degrade(&LinkFailures::chips(vec![4])),
            Err(TopologyError::ChipOutOfRange { chip: 4, chips: 4 })
        );
        // Link order within the pair is irrelevant.
        assert!(r.degrade(&LinkFailures::links(vec![(1, 0)])).is_ok());
    }
}
