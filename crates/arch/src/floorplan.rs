//! First-order floorplan (area) model.
//!
//! Used for two things: sanity-checking catalog die sizes, and pricing
//! dies in `tpu-tco` (bigger dies yield worse, so cost grows
//! super-linearly in area). The model is deliberately coarse — MAC area,
//! SRAM macro density and an uncore term per node — but it reproduces the
//! paper-relevant trade-off: at 7 nm, TPUv4i could afford 128 MiB of CMEM
//! in roughly the area two extra MXUs would have taken at 16 nm.

use tpu_numerics::DType;

use crate::chip::ChipConfig;
use crate::tech::ProcessNode;

/// Area of one MAC unit in mm^2 for a given type at a given node.
pub fn mac_mm2(node: ProcessNode, dtype: DType) -> f64 {
    // Reference: a bf16 FMA at 45 nm is roughly 0.0035 mm^2; int8 is ~1/4
    // of that; fp32 ~3x. Logic density doubles per node step.
    let base = match dtype {
        DType::Int8 => 0.0009,
        DType::Bf16 | DType::Fp16 => 0.0035,
        DType::Int32 => 0.0015,
        DType::Fp32 => 0.0105,
    };
    base / node.logic_density_vs_reference()
}

/// SRAM area in mm^2 per MiB at a given node.
///
/// SRAM density improves *slower* than logic (Lesson 1): roughly 1.6x per
/// step instead of 2x.
pub fn sram_mm2_per_mib(node: ProcessNode) -> f64 {
    const REF_MM2_PER_MIB: f64 = 1.9; // 45 nm, including array overheads
    const SRAM_DENSITY_STEP: f64 = 1.6;
    REF_MM2_PER_MIB / SRAM_DENSITY_STEP.powi(node.steps_from_reference() as i32)
}

/// Fixed area of one off-chip memory PHY (HBM or DDR interface), mm^2.
pub const MEM_PHY_MM2: f64 = 12.0;

/// Fixed area of one ICI link (SerDes block), mm^2.
pub const ICI_LINK_MM2: f64 = 4.0;

/// Breakdown of a chip's estimated die area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// All MXU MAC arrays.
    pub mxu_mm2: f64,
    /// Vector units (lanes x sublanes ALUs, generously padded).
    pub vpu_mm2: f64,
    /// All on-chip SRAM (VMEM + CMEM + SMEM).
    pub sram_mm2: f64,
    /// Memory PHYs and ICI SerDes.
    pub io_mm2: f64,
    /// Uncore: NoC, scalar cores, DMA, queues, pad ring (fraction of core
    /// area plus a constant).
    pub uncore_mm2: f64,
}

impl AreaBreakdown {
    /// Total estimated die area in mm^2.
    pub fn total_mm2(&self) -> f64 {
        self.mxu_mm2 + self.vpu_mm2 + self.sram_mm2 + self.io_mm2 + self.uncore_mm2
    }
}

/// Estimates the die-area breakdown for a configuration.
pub fn estimate(cfg: &ChipConfig) -> AreaBreakdown {
    let dtype = if cfg.native_types.contains(&DType::Bf16) {
        DType::Bf16
    } else {
        cfg.native_types[0]
    };
    let macs =
        cfg.cores as f64 * cfg.mxus_per_core as f64 * (cfg.mxu_dim as f64 * cfg.mxu_dim as f64);
    let mxu_mm2 = macs * mac_mm2(cfg.node, dtype);

    // Each VPU ALU is ~an fp32 lane; multiply by 2 for register files.
    let vpu_alus = cfg.cores as f64 * cfg.vpu_lanes as f64 * cfg.vpu_sublanes as f64;
    let vpu_mm2 = vpu_alus * mac_mm2(cfg.node, DType::Fp32) * 2.0;

    let sram_mib = cfg.on_chip_sram_bytes() as f64 / (1 << 20) as f64;
    let sram_mm2 = sram_mib * sram_mm2_per_mib(cfg.node);

    // One PHY per ~256 GB/s of off-chip bandwidth, minimum one.
    let phys = (cfg.hbm.bandwidth_gbps() / 256.0).ceil().max(1.0);
    let io_mm2 = phys * MEM_PHY_MM2 + cfg.ici_links as f64 * ICI_LINK_MM2;

    let core_area = mxu_mm2 + vpu_mm2 + sram_mm2;
    let uncore_mm2 = 0.45 * core_area + 40.0;

    AreaBreakdown {
        mxu_mm2,
        vpu_mm2,
        sram_mm2,
        io_mm2,
        uncore_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn estimates_are_in_the_ballpark_of_catalog_dies() {
        // A first-order model that counts compute + SRAM + IO + generic
        // uncore; it deliberately omits host interfaces, white space and
        // pad-limited area, which dominate the big training dies (TPUv1's
        // 28 nm die was famously under-filled, TPUv2/v3 carry large host
        // and interconnect blocks). So: same order of magnitude, never
        // larger than ~2x the published die.
        for cfg in catalog::all_chips() {
            let est = estimate(&cfg).total_mm2();
            let ratio = est / cfg.die_mm2;
            assert!(
                (0.25..2.0).contains(&ratio),
                "{}: estimated {est:.0} mm^2 vs catalog {:.0} mm^2",
                cfg.name,
                cfg.die_mm2
            );
        }
    }

    #[test]
    fn cmem_is_affordable_at_7nm_not_16nm() {
        // The Lesson-1 consequence: 128 MiB of SRAM at 7 nm costs less
        // area than at 16 nm by ~1.6x, making CMEM a sane 7 nm choice.
        let at7 = 128.0 * sram_mm2_per_mib(ProcessNode::N7);
        let at16 = 128.0 * sram_mm2_per_mib(ProcessNode::N16);
        assert!(at7 < at16 / 1.5);
        // And it is a modest fraction of the v4i die.
        let v4i = catalog::tpu_v4i();
        assert!(at7 < 0.25 * v4i.die_mm2, "CMEM area {at7:.0} mm^2");
    }

    #[test]
    fn int8_macs_are_smaller_than_bf16_than_fp32() {
        for node in ProcessNode::ALL {
            assert!(mac_mm2(node, DType::Int8) < mac_mm2(node, DType::Bf16));
            assert!(mac_mm2(node, DType::Bf16) < mac_mm2(node, DType::Fp32));
        }
    }

    #[test]
    fn newer_nodes_shrink_everything() {
        assert!(mac_mm2(ProcessNode::N7, DType::Bf16) < mac_mm2(ProcessNode::N28, DType::Bf16));
        assert!(sram_mm2_per_mib(ProcessNode::N7) < sram_mm2_per_mib(ProcessNode::N28));
    }

    #[test]
    fn sram_shrinks_slower_than_logic() {
        let logic_gain =
            mac_mm2(ProcessNode::N45, DType::Bf16) / mac_mm2(ProcessNode::N7, DType::Bf16);
        let sram_gain = sram_mm2_per_mib(ProcessNode::N45) / sram_mm2_per_mib(ProcessNode::N7);
        assert!(logic_gain > 1.5 * sram_gain);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let b = estimate(&catalog::tpu_v4i());
        let sum = b.mxu_mm2 + b.vpu_mm2 + b.sram_mm2 + b.io_mm2 + b.uncore_mm2;
        assert!((sum - b.total_mm2()).abs() < 1e-9);
        assert!(b.sram_mm2 > 0.0 && b.mxu_mm2 > 0.0);
    }

    #[test]
    fn v4i_sram_is_a_major_area_consumer() {
        // With 152 MiB of on-chip SRAM, memory should rival compute area —
        // the paper's point that v4i spends area on SRAM, not more MXUs.
        let b = estimate(&catalog::tpu_v4i());
        assert!(
            b.sram_mm2 > b.mxu_mm2,
            "sram {:.0} mm^2 vs mxu {:.0} mm^2",
            b.sram_mm2,
            b.mxu_mm2
        );
    }
}
