//! Memory-system envelopes: capacities, bandwidths, latencies, energies.

use std::fmt;

use crate::tech::EnergyTable;

/// A level of the on- or off-chip memory hierarchy.
///
/// TPUv4i's hierarchy, outermost first: HBM → CMEM (the 128 MiB common
/// memory the paper's E6 ablation studies) → VMEM (vector memory feeding
/// the MXUs) → SMEM (scalar memory). Not every generation has every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLevel {
    /// Off-chip DRAM (HBM for v2+, DDR3 for v1, GDDR6 for the GPU baseline).
    Hbm,
    /// On-chip common memory (TPUv4i/v4 only).
    Cmem,
    /// On-chip vector memory.
    Vmem,
    /// On-chip scalar memory.
    Smem,
}

impl MemLevel {
    /// All levels, outermost first.
    pub const ALL: [MemLevel; 4] = [
        MemLevel::Hbm,
        MemLevel::Cmem,
        MemLevel::Vmem,
        MemLevel::Smem,
    ];

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            MemLevel::Hbm => "hbm",
            MemLevel::Cmem => "cmem",
            MemLevel::Vmem => "vmem",
            MemLevel::Smem => "smem",
        }
    }

    /// Whether this level is on the chip die.
    pub const fn is_on_chip(self) -> bool {
        !matches!(self, MemLevel::Hbm)
    }
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The envelope of one memory level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Access latency in nanoseconds (first-word).
    pub latency_ns: f64,
    /// Transfer energy in picojoules per byte.
    pub pj_per_byte: f64,
}

impl MemSpec {
    /// Builds an HBM-class spec from stack count and per-stack bandwidth,
    /// taking the transfer energy from the node's table.
    pub fn hbm(stacks: u32, gib_per_stack: u64, gbps_per_stack: f64, e: &EnergyTable) -> MemSpec {
        MemSpec {
            capacity_bytes: stacks as u64 * gib_per_stack * GIB,
            bandwidth_bps: stacks as f64 * gbps_per_stack * 1e9,
            latency_ns: 120.0,
            pj_per_byte: e.hbm_pj_per_byte,
        }
    }

    /// Builds a DDR/GDDR-class off-chip spec.
    pub fn ddr(capacity_gib: u64, gbps: f64, e: &EnergyTable) -> MemSpec {
        MemSpec {
            capacity_bytes: capacity_gib * GIB,
            bandwidth_bps: gbps * 1e9,
            latency_ns: 90.0,
            pj_per_byte: e.ddr_pj_per_byte,
        }
    }

    /// Builds an on-chip SRAM spec (CMEM/VMEM/SMEM) from capacity and
    /// bandwidth, taking energy from the node's table. CMEM is a large
    /// array, so we charge an extra wire term for the longer H-tree.
    pub fn sram(
        capacity_mib: u64,
        bandwidth_gbps: f64,
        latency_ns: f64,
        e: &EnergyTable,
    ) -> MemSpec {
        MemSpec {
            capacity_bytes: capacity_mib * MIB,
            bandwidth_bps: bandwidth_gbps * 1e9,
            latency_ns,
            pj_per_byte: e.sram_pj_per_byte,
        }
    }

    /// Capacity in MiB (rounded down).
    pub fn capacity_mib(&self) -> u64 {
        self.capacity_bytes / MIB
    }

    /// Capacity in GiB as a float.
    pub fn capacity_gib(&self) -> f64 {
        self.capacity_bytes as f64 / GIB as f64
    }

    /// Bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_bps / 1e9
    }

    /// Time in seconds to move `bytes` at peak bandwidth, plus latency.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_ns * 1e-9 + bytes as f64 / self.bandwidth_bps
    }

    /// Energy in joules to move `bytes`.
    pub fn transfer_joules(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pj_per_byte * 1e-12
    }
}

/// One MiB in bytes.
pub const MIB: u64 = 1 << 20;
/// One GiB in bytes.
pub const GIB: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::ProcessNode;

    #[test]
    fn levels_ordered_outermost_first() {
        assert_eq!(MemLevel::ALL[0], MemLevel::Hbm);
        assert!(!MemLevel::Hbm.is_on_chip());
        assert!(MemLevel::Cmem.is_on_chip());
        assert!(MemLevel::Vmem.is_on_chip());
        assert_eq!(format!("{}", MemLevel::Cmem), "cmem");
    }

    #[test]
    fn hbm_spec_aggregates_stacks() {
        let e = ProcessNode::N7.energy();
        let h = MemSpec::hbm(2, 4, 307.0, &e);
        assert_eq!(h.capacity_bytes, 8 * GIB);
        assert!((h.bandwidth_gbps() - 614.0).abs() < 1e-9);
        assert_eq!(h.pj_per_byte, e.hbm_pj_per_byte);
    }

    #[test]
    fn sram_is_cheaper_and_faster_than_hbm() {
        let e = ProcessNode::N7.energy();
        let cmem = MemSpec::sram(128, 5000.0, 20.0, &e);
        let hbm = MemSpec::hbm(2, 4, 307.0, &e);
        assert!(cmem.pj_per_byte < hbm.pj_per_byte / 5.0);
        assert!(cmem.latency_ns < hbm.latency_ns);
        assert_eq!(cmem.capacity_mib(), 128);
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let e = ProcessNode::N7.energy();
        let m = MemSpec::sram(16, 1000.0, 10.0, &e); // 1 TB/s, 10 ns
        let t = m.transfer_seconds(1_000_000); // 1 MB at 1 TB/s = 1 us
        assert!((t - (10e-9 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn transfer_energy_is_linear_in_bytes() {
        let e = ProcessNode::N16.energy();
        let m = MemSpec::ddr(8, 34.0, &e);
        assert!((m.transfer_joules(2_000) - 2.0 * m.transfer_joules(1_000)).abs() < 1e-18);
        assert!(m.transfer_joules(1_000_000_000) > 0.0);
    }

    #[test]
    fn ddr_slower_than_hbm_of_same_era() {
        let e = ProcessNode::N16.energy();
        let ddr = MemSpec::ddr(8, 34.0, &e);
        let hbm = MemSpec::hbm(4, 4, 175.0, &e);
        assert!(ddr.bandwidth_bps < hbm.bandwidth_bps);
        assert!(ddr.pj_per_byte > hbm.pj_per_byte);
    }

    #[test]
    fn capacity_helpers() {
        let e = ProcessNode::N7.energy();
        let m = MemSpec::hbm(2, 16, 600.0, &e);
        assert!((m.capacity_gib() - 32.0).abs() < 1e-9);
    }
}
