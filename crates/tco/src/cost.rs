//! CapEx: die cost with yield, memory, package, board, cooling infra.

use tpu_arch::{ChipConfig, CoolingTech, MemLevel, ProcessNode};

/// Wafer cost in USD for a 300 mm wafer at a node (public estimates).
pub fn wafer_cost_usd(node: ProcessNode) -> f64 {
    match node {
        ProcessNode::N45 => 1_800.0,
        ProcessNode::N28 => 2_900.0,
        ProcessNode::N16 => 6_000.0,
        ProcessNode::N7 => 9_500.0,
    }
}

/// Defect density in defects/cm^2 at a (mature) node.
pub fn defect_density_per_cm2(node: ProcessNode) -> f64 {
    match node {
        ProcessNode::N45 => 0.05,
        ProcessNode::N28 => 0.07,
        ProcessNode::N16 => 0.09,
        ProcessNode::N7 => 0.12,
    }
}

/// Usable area of a 300 mm wafer, mm^2 (edge exclusion applied).
pub const WAFER_AREA_MM2: f64 = 66_000.0;

/// Seeds yield model: fraction of good dies for a die of `die_mm2` at
/// defect density `d0` (defects/cm^2).
pub fn die_yield(die_mm2: f64, d0_per_cm2: f64) -> f64 {
    let a_cm2 = die_mm2 / 100.0;
    (-(a_cm2 * d0_per_cm2).sqrt()).exp()
}

/// Cost of one *good* die in USD.
pub fn die_cost_usd(node: ProcessNode, die_mm2: f64) -> f64 {
    // Rectangular dicing loss folded into a 0.9 packing factor.
    let dies_per_wafer = (WAFER_AREA_MM2 / die_mm2 * 0.9).floor().max(1.0);
    let y = die_yield(die_mm2, defect_density_per_cm2(node));
    wafer_cost_usd(node) / (dies_per_wafer * y)
}

/// Memory price per GiB by class, USD (period-appropriate estimates).
pub fn memory_usd_per_gib(is_hbm: bool) -> f64 {
    if is_hbm {
        12.0
    } else {
        3.0 // DDR/GDDR class
    }
}

/// Cooling-infrastructure CapEx attributable to one chip, USD.
pub fn cooling_capex_usd(cooling: CoolingTech) -> f64 {
    match cooling {
        CoolingTech::Air => 40.0,     // heatsink + fan share
        CoolingTech::Liquid => 450.0, // cold plate + loop + plant share
    }
}

/// CapEx breakdown for one deployed accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipCapex {
    /// Good-die cost.
    pub die_usd: f64,
    /// Off-chip memory (HBM stacks or DDR/GDDR).
    pub memory_usd: f64,
    /// Package, substrate (interposer for HBM), test.
    pub package_usd: f64,
    /// Board and host-machine share.
    pub board_usd: f64,
    /// Cooling infrastructure share.
    pub cooling_usd: f64,
}

impl ChipCapex {
    /// Total CapEx in USD.
    pub fn total_usd(&self) -> f64 {
        self.die_usd + self.memory_usd + self.package_usd + self.board_usd + self.cooling_usd
    }
}

/// Prices a catalog chip.
pub fn capex(chip: &ChipConfig) -> ChipCapex {
    let die_usd = die_cost_usd(chip.node, chip.die_mm2);
    // HBM specs carry the node's HBM transfer energy; DDR/GDDR carry the
    // (higher) DDR energy — a reliable class discriminator.
    let e = chip.node.energy();
    let is_hbm = (chip.mem(MemLevel::Hbm).expect("always present").pj_per_byte - e.hbm_pj_per_byte)
        .abs()
        < 1e-9;
    let gib = chip.hbm.capacity_bytes as f64 / (1u64 << 30) as f64;
    let memory_usd = gib * memory_usd_per_gib(is_hbm);
    // 2.5D interposer packaging for HBM parts costs notably more.
    let package_usd = if is_hbm { 120.0 } else { 40.0 };
    let board_usd = 150.0;
    ChipCapex {
        die_usd,
        memory_usd,
        package_usd,
        board_usd,
        cooling_usd: cooling_capex_usd(chip.cooling),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;

    #[test]
    fn yield_decreases_with_area_and_density() {
        assert!(die_yield(100.0, 0.1) > die_yield(600.0, 0.1));
        assert!(die_yield(400.0, 0.05) > die_yield(400.0, 0.12));
        let y = die_yield(400.0, 0.1);
        assert!((0.0..=1.0).contains(&y));
    }

    #[test]
    fn die_cost_grows_superlinearly_in_area() {
        // Doubling area more than doubles cost (fewer dies AND lower
        // yield) — why TPUv4i stayed at ~400 mm^2.
        let small = die_cost_usd(ProcessNode::N7, 300.0);
        let big = die_cost_usd(ProcessNode::N7, 600.0);
        assert!(big > 2.0 * small, "big {big:.0} vs small {small:.0}");
    }

    #[test]
    fn newer_nodes_cost_more_per_die() {
        assert!(die_cost_usd(ProcessNode::N7, 400.0) > die_cost_usd(ProcessNode::N28, 400.0));
    }

    #[test]
    fn capex_breakdowns_are_sane() {
        for chip in catalog::all_chips() {
            let c = capex(&chip);
            assert!(c.die_usd > 0.0, "{}", chip.name);
            assert!(c.total_usd() > c.die_usd);
            assert!(
                (100.0..5000.0).contains(&c.total_usd()),
                "{}: ${:.0}",
                chip.name,
                c.total_usd()
            );
        }
    }

    #[test]
    fn liquid_cooling_costs_capex_too() {
        let v3 = capex(&catalog::tpu_v3());
        let v4i = capex(&catalog::tpu_v4i());
        assert!(v3.cooling_usd > 5.0 * v4i.cooling_usd);
    }

    #[test]
    fn hbm_parts_cost_more_memory_and_package() {
        let v1 = capex(&catalog::tpu_v1()); // DDR3
        let v2 = capex(&catalog::tpu_v2()); // HBM
        assert!(v2.memory_usd > v1.memory_usd);
        assert!(v2.package_usd > v1.package_usd);
    }
}
