//! Total cost of ownership for accelerator deployment.
//!
//! The paper's Lesson 3: design for **performance per TCO**, not per
//! CapEx. A chip's purchase price is only part of its cost; a 450 W
//! liquid-cooled part keeps costing money (power, cooling, stranded rack
//! capacity) for its whole service life, while a 175 W air-cooled part
//! does not. This crate prices that out:
//!
//! - [`cost`]: CapEx — die cost through a wafer-yield model, memory,
//!   package, board and cooling-infrastructure shares;
//! - [`tco`]: OpEx over a service life (power x cooling overhead x
//!   electricity) and the perf/CapEx vs perf/TCO rankings of E10;
//! - [`deploy`]: time-to-deploy with and without backwards ML
//!   compatibility and quantization (Lessons 4 and 6, E14).
//!
//! All dollar figures are public-domain engineering estimates; the
//! experiments depend on their *ratios*, which are robust.
//!
//! # Example
//!
//! ```
//! use tpu_arch::catalog;
//! use tpu_tco::{cost, tco};
//!
//! let v4i = catalog::tpu_v4i();
//! let v3 = catalog::tpu_v3();
//! let m = tco::TcoModel::default();
//! // TPUv3 burns far more OpEx than TPUv4i over 3 years.
//! assert!(m.opex_usd(&v3) > 2.0 * m.opex_usd(&v4i));
//! assert!(cost::capex(&v4i).total_usd() > 0.0);
//! ```

pub mod cost;
pub mod deploy;
pub mod tco;

pub use cost::{capex, ChipCapex};
pub use tco::{TcoModel, TcoReport};
