//! Deployment timelines: backwards ML compatibility buys time (Lesson 4).
//!
//! The paper's point is temporal: models grow 1.5x/year, so every month
//! spent re-validating (or re-quantizing) a model on new hardware is a
//! month of lost capability. With backwards ML compatibility (bit-exact
//! numerics vs the previous generation), a validated model deploys
//! almost immediately; without it, quality re-validation gates launch;
//! int8 deployment adds quantization and a second validation.

/// How a model's numerics relate to what was already validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentPath {
    /// Bit-exact with the generation the model was validated on:
    /// deploy after hardware qualification only.
    BitExactCompatible,
    /// Same format (e.g. bf16) but different accumulation numerics:
    /// needs quality re-validation.
    Revalidate,
    /// Quantized to int8: needs quantization engineering plus
    /// re-validation (Lesson 6's hidden cost).
    QuantizeInt8,
}

/// Engineering-time model, in days (fleet-average estimates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeployModel {
    /// Hardware/serving qualification common to every path.
    pub hardware_qual_days: f64,
    /// Model-quality re-validation (A/B tests, human eval).
    pub revalidation_days: f64,
    /// Quantization engineering (calibration, per-layer exceptions).
    pub quantization_days: f64,
}

impl Default for DeployModel {
    fn default() -> DeployModel {
        DeployModel {
            hardware_qual_days: 14.0,
            revalidation_days: 90.0,
            quantization_days: 120.0,
        }
    }
}

impl DeployModel {
    /// Days from "hardware available" to "model serving in production".
    pub fn time_to_deploy_days(&self, path: DeploymentPath) -> f64 {
        match path {
            DeploymentPath::BitExactCompatible => self.hardware_qual_days,
            DeploymentPath::Revalidate => self.hardware_qual_days + self.revalidation_days,
            DeploymentPath::QuantizeInt8 => {
                self.hardware_qual_days + self.quantization_days + self.revalidation_days
            }
        }
    }

    /// Model-capability growth forgone while waiting to deploy, as a
    /// multiplier (1.5x/year compounding — Lesson 8 applied to Lesson 4).
    pub fn capability_cost(&self, path: DeploymentPath) -> f64 {
        let years = self.time_to_deploy_days(path) / 365.25;
        1.5f64.powf(years)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_ordered() {
        let m = DeployModel::default();
        let exact = m.time_to_deploy_days(DeploymentPath::BitExactCompatible);
        let reval = m.time_to_deploy_days(DeploymentPath::Revalidate);
        let quant = m.time_to_deploy_days(DeploymentPath::QuantizeInt8);
        assert!(exact < reval);
        assert!(reval < quant);
        // Bit-exact deployment is ~7x faster than re-validation.
        assert!(reval / exact > 5.0);
    }

    #[test]
    fn capability_cost_compounds() {
        let m = DeployModel::default();
        let exact = m.capability_cost(DeploymentPath::BitExactCompatible);
        let quant = m.capability_cost(DeploymentPath::QuantizeInt8);
        assert!(exact < 1.05, "two weeks costs almost nothing: {exact}");
        assert!(
            quant > 1.2,
            "7+ months of quantization work costs real capability: {quant}"
        );
    }

    #[test]
    fn custom_model_parameters() {
        let m = DeployModel {
            hardware_qual_days: 10.0,
            revalidation_days: 50.0,
            quantization_days: 100.0,
        };
        assert_eq!(m.time_to_deploy_days(DeploymentPath::Revalidate), 60.0);
        assert_eq!(m.time_to_deploy_days(DeploymentPath::QuantizeInt8), 160.0);
    }
}
