//! OpEx and the perf/CapEx vs perf/TCO comparison (Lesson 3, E10).

use tpu_arch::ChipConfig;

use crate::cost::{capex, ChipCapex};

/// Parameters of the ownership-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoModel {
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
    /// Service life in years.
    pub years: f64,
    /// Fraction of TDP drawn on average in production (chips are not
    /// pegged at TDP; Google reports well under 100%).
    pub average_power_fraction: f64,
    /// Datacenter overhead multiplier excluding chip-specific cooling
    /// (power delivery losses, networking, building).
    pub facility_overhead: f64,
}

impl Default for TcoModel {
    fn default() -> TcoModel {
        TcoModel {
            usd_per_kwh: 0.08,
            years: 3.0,
            average_power_fraction: 0.6,
            facility_overhead: 1.15,
        }
    }
}

/// The per-chip cost report of E10.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoReport {
    /// Chip name.
    pub chip: String,
    /// CapEx breakdown.
    pub capex: ChipCapex,
    /// Operating expense over the service life, USD.
    pub opex_usd: f64,
    /// CapEx + OpEx, USD.
    pub tco_usd: f64,
}

impl TcoModel {
    /// Lifetime operating expense of a chip, USD: average power times the
    /// cooling-technology overhead times facility overhead, at the
    /// electricity price, over the service life.
    pub fn opex_usd(&self, chip: &ChipConfig) -> f64 {
        let avg_w = chip.tdp_w * self.average_power_fraction;
        let cooled_w = avg_w * (1.0 + chip.cooling.overhead_fraction()) * self.facility_overhead;
        let hours = self.years * 365.25 * 24.0;
        cooled_w / 1000.0 * hours * self.usd_per_kwh
    }

    /// Full cost report for a chip.
    pub fn report(&self, chip: &ChipConfig) -> TcoReport {
        let capex = capex(chip);
        let opex_usd = self.opex_usd(chip);
        TcoReport {
            chip: chip.name.clone(),
            tco_usd: capex.total_usd() + opex_usd,
            capex,
            opex_usd,
        }
    }

    /// Performance per CapEx dollar (the metric Lesson 3 warns against).
    pub fn perf_per_capex(&self, chip: &ChipConfig, perf: f64) -> f64 {
        perf / capex(chip).total_usd()
    }

    /// Performance per TCO dollar (the metric Lesson 3 recommends).
    pub fn perf_per_tco(&self, chip: &ChipConfig, perf: f64) -> f64 {
        perf / self.report(chip).tco_usd
    }
}

/// Ranks `(name, perf, chip)` triples by a metric, best first.
pub fn rank_by<F>(entries: &[(String, f64, ChipConfig)], metric: F) -> Vec<String>
where
    F: Fn(&ChipConfig, f64) -> f64,
{
    let mut scored: Vec<(String, f64)> = entries
        .iter()
        .map(|(name, perf, chip)| (name.clone(), metric(chip, *perf)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().map(|(n, _)| n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;

    #[test]
    fn opex_scales_with_tdp_and_years() {
        let m = TcoModel::default();
        let v3 = catalog::tpu_v3();
        let v4i = catalog::tpu_v4i();
        assert!(m.opex_usd(&v3) > 2.0 * m.opex_usd(&v4i));
        let longer = TcoModel {
            years: 6.0,
            ..TcoModel::default()
        };
        assert!((longer.opex_usd(&v4i) / m.opex_usd(&v4i) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn opex_magnitude_is_plausible() {
        // TPUv3 at 450 W: roughly $1k over 3 years at $0.08/kWh.
        let m = TcoModel::default();
        let o = m.opex_usd(&catalog::tpu_v3());
        assert!((500.0..2000.0).contains(&o), "${o:.0}");
    }

    #[test]
    fn tco_is_capex_plus_opex() {
        let m = TcoModel::default();
        for chip in catalog::all_chips() {
            let r = m.report(&chip);
            assert!((r.tco_usd - r.capex.total_usd() - r.opex_usd).abs() < 1e-9);
            assert!(r.tco_usd > r.capex.total_usd());
        }
    }

    #[test]
    fn opex_matters_lesson_three() {
        // For the hot liquid-cooled chip, OpEx rivals CapEx — ignoring
        // it (perf/CapEx) misprices the design space.
        let m = TcoModel::default();
        let r = m.report(&catalog::tpu_v3());
        assert!(
            r.opex_usd > 0.5 * r.capex.total_usd(),
            "opex {:.0} vs capex {:.0}",
            r.opex_usd,
            r.capex.total_usd()
        );
        // For the cool air-cooled inference chip, much less so.
        let r4 = m.report(&catalog::tpu_v4i());
        assert!(r4.opex_usd < r.opex_usd / 2.0);
    }

    #[test]
    fn ranking_flip_between_metrics_is_possible() {
        // Construct two chips with equal perf: one cheap-and-hot, one
        // pricier-and-cool. CapEx prefers the first, TCO the second.
        let m = TcoModel::default();
        let hot = catalog::tpu_v3(); // big OpEx
        let cool = catalog::tpu_v4i();
        let entries = vec![("hot".to_owned(), 1.0, hot), ("cool".to_owned(), 1.0, cool)];
        let by_tco = rank_by(&entries, |c, p| m.perf_per_tco(c, p));
        // At equal performance, TCO must prefer the cool chip.
        assert_eq!(by_tco[0], "cool");
    }

    #[test]
    fn rank_by_orders_best_first() {
        let entries = vec![
            ("a".to_owned(), 1.0, catalog::tpu_v4i()),
            ("b".to_owned(), 3.0, catalog::tpu_v4i()),
        ];
        let m = TcoModel::default();
        let ranked = rank_by(&entries, |c, p| m.perf_per_tco(c, p));
        assert_eq!(ranked, vec!["b".to_owned(), "a".to_owned()]);
    }
}
