//! Property tests for the cost models.

use proptest::prelude::*;
use tpu_arch::{catalog, ProcessNode};
use tpu_tco::cost::{die_cost_usd, die_yield};
use tpu_tco::deploy::{DeployModel, DeploymentPath};
use tpu_tco::TcoModel;

proptest! {
    /// Yield is a probability and decreases monotonically in both area
    /// and defect density.
    #[test]
    fn yield_is_monotone(area in 10.0f64..900.0, d0 in 0.01f64..0.5) {
        let y = die_yield(area, d0);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(die_yield(area * 1.5, d0) <= y);
        prop_assert!(die_yield(area, d0 * 1.5) <= y);
    }

    /// Good-die cost increases super-linearly with area.
    #[test]
    fn die_cost_superlinear(area in 50.0f64..400.0) {
        for node in ProcessNode::ALL {
            let c1 = die_cost_usd(node, area);
            let c2 = die_cost_usd(node, area * 2.0);
            prop_assert!(c2 > 1.9 * c1, "{node}: {c1} -> {c2}");
        }
    }

    /// OpEx scales linearly with electricity price and service life.
    #[test]
    fn opex_is_linear_in_price_and_years(
        price in 0.01f64..1.0,
        years in 0.5f64..10.0,
    ) {
        let chip = catalog::tpu_v4i();
        let base = TcoModel { usd_per_kwh: price, years, ..TcoModel::default() };
        let double_price = TcoModel { usd_per_kwh: 2.0 * price, ..base };
        let double_years = TcoModel { years: 2.0 * years, ..base };
        let o = base.opex_usd(&chip);
        prop_assert!((double_price.opex_usd(&chip) - 2.0 * o).abs() < 1e-9 * o);
        prop_assert!((double_years.opex_usd(&chip) - 2.0 * o).abs() < 1e-9 * o);
    }

    /// perf/TCO is monotone in performance and antitone in price.
    #[test]
    fn perf_per_tco_monotonicity(perf in 1.0f64..1e9, price in 0.02f64..0.5) {
        let chip = catalog::tpu_v3();
        let m = TcoModel { usd_per_kwh: price, ..TcoModel::default() };
        prop_assert!(m.perf_per_tco(&chip, perf * 2.0) > m.perf_per_tco(&chip, perf));
        let pricier = TcoModel { usd_per_kwh: price * 2.0, ..m };
        prop_assert!(pricier.perf_per_tco(&chip, perf) < m.perf_per_tco(&chip, perf));
    }

    /// Deployment paths are strictly ordered for any positive durations.
    #[test]
    fn deploy_paths_ordered(
        qual in 1.0f64..60.0,
        reval in 1.0f64..365.0,
        quant in 1.0f64..365.0,
    ) {
        let m = DeployModel {
            hardware_qual_days: qual,
            revalidation_days: reval,
            quantization_days: quant,
        };
        let a = m.time_to_deploy_days(DeploymentPath::BitExactCompatible);
        let b = m.time_to_deploy_days(DeploymentPath::Revalidate);
        let c = m.time_to_deploy_days(DeploymentPath::QuantizeInt8);
        prop_assert!(a < b && b < c);
        prop_assert!(m.capability_cost(DeploymentPath::QuantizeInt8)
            >= m.capability_cost(DeploymentPath::BitExactCompatible));
    }
}
