//! Property tests: arbitrary programs round-trip through binary and text,
//! and never decode under another generation's spec.

use proptest::prelude::*;
use tpu_arch::{Generation, MemLevel};
use tpu_isa::prelude::*;
use tpu_isa::{asm, decode, encode};

const GENS: [Generation; 6] = [
    Generation::TpuV1,
    Generation::TpuV2,
    Generation::TpuV3,
    Generation::TpuV4i,
    Generation::TpuV4,
    Generation::GpuT4Like,
];

fn sreg() -> impl Strategy<Value = SReg> {
    (0u8..16).prop_map(SReg)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..16).prop_map(VReg)
}

fn scalar_op() -> impl Strategy<Value = ScalarOp> {
    prop_oneof![
        Just(ScalarOp::Nop),
        (sreg(), any::<i32>()).prop_map(|(dst, imm)| ScalarOp::LoadImm { dst, imm }),
        (sreg(), sreg(), sreg()).prop_map(|(dst, a, b)| ScalarOp::Add { dst, a, b }),
        (sreg(), sreg(), sreg()).prop_map(|(dst, a, b)| ScalarOp::Sub { dst, a, b }),
        (sreg(), sreg(), sreg()).prop_map(|(dst, a, b)| ScalarOp::Mul { dst, a, b }),
        (0u8..4).prop_map(|queue| ScalarOp::SyncDma { queue }),
        Just(ScalarOp::Halt),
    ]
}

fn vector_op() -> impl Strategy<Value = VectorOp> {
    prop_oneof![
        Just(VectorOp::Nop),
        (vreg(), vreg(), vreg()).prop_map(|(dst, a, b)| VectorOp::VAdd { dst, a, b }),
        (vreg(), vreg(), vreg()).prop_map(|(dst, a, b)| VectorOp::VMul { dst, a, b }),
        (vreg(), vreg(), vreg()).prop_map(|(dst, a, b)| VectorOp::VMax { dst, a, b }),
        (vreg(), vreg()).prop_map(|(dst, a)| VectorOp::VRelu { dst, a }),
        (vreg(), vreg()).prop_map(|(dst, a)| VectorOp::VXf { dst, a }),
        (vreg(), vreg()).prop_map(|(dst, a)| VectorOp::VReduce { dst, a }),
        (vreg(), sreg()).prop_map(|(dst, addr)| VectorOp::VLoad { dst, addr }),
        (vreg(), sreg()).prop_map(|(src, addr)| VectorOp::VStore { src, addr }),
    ]
}

fn mem_level() -> impl Strategy<Value = MemLevel> {
    prop_oneof![
        Just(MemLevel::Hbm),
        Just(MemLevel::Vmem),
        Just(MemLevel::Smem)
    ]
}

fn dma_op() -> impl Strategy<Value = DmaOp> {
    prop_oneof![
        Just(DmaOp::Nop),
        (0u8..4, mem_level(), mem_level(), any::<u32>()).prop_map(|(queue, src, dst, bytes)| {
            DmaOp::Start {
                queue,
                dir: DmaDirection::new(src, dst),
                bytes,
            }
        }),
    ]
}

fn bundle() -> impl Strategy<Value = Bundle> {
    // vector1/xpose omitted so the bundle is legal on every generation.
    (scalar_op(), vector_op(), dma_op())
        .prop_map(|(s, v, d)| Bundle::new().scalar(s).vector(v).dma(d))
}

fn program(generation: Generation) -> impl Strategy<Value = Program> {
    prop::collection::vec(bundle(), 0..24).prop_map(move |bs| {
        let mut p = Program::new(generation);
        for b in bs {
            p.push(b);
        }
        p
    })
}

proptest! {
    /// encode→decode is the identity for every generation.
    #[test]
    fn binary_round_trip(idx in 0usize..GENS.len(), p in program(Generation::TpuV2)) {
        let generation = GENS[idx];
        let mut q = Program::new(generation);
        for b in p.bundles() {
            q.push(b.clone());
        }
        let bytes = encode(&q).unwrap();
        prop_assert_eq!(decode(&bytes, generation).unwrap(), q);
    }

    /// A binary never decodes under a different generation.
    #[test]
    fn cross_generation_always_fails(
        a in 0usize..GENS.len(),
        b in 0usize..GENS.len(),
        p in program(Generation::TpuV2),
    ) {
        prop_assume!(a != b);
        let mut q = Program::new(GENS[a]);
        for bundle in p.bundles() {
            q.push(bundle.clone());
        }
        let bytes = encode(&q).unwrap();
        prop_assert!(decode(&bytes, GENS[b]).is_err());
    }

    /// Assembly text round-trips for arbitrary programs.
    #[test]
    fn asm_round_trip(p in program(Generation::TpuV4i)) {
        let text = asm::format_program(&p);
        let q = asm::assemble(&text, Generation::TpuV4i).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Truncating an encoded program at any point fails to decode.
    #[test]
    fn truncation_always_detected(p in program(Generation::TpuV4i), frac in 0.0f64..1.0) {
        let bytes = encode(&p).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut], Generation::TpuV4i).is_err());
    }

    /// Stats never exceed structural bounds.
    #[test]
    fn stats_are_bounded(p in program(Generation::TpuV4i)) {
        let s = p.stats();
        prop_assert_eq!(s.bundles, p.len());
        prop_assert!(s.occupied_slots <= p.len() * Bundle::SLOTS);
        prop_assert!(s.mean_occupancy() <= Bundle::SLOTS as f64);
    }
}
