//! A VLIW instruction set for the TPU generations.
//!
//! TPUs are VLIW machines: the compiler statically packs operations for
//! the scalar unit, two vector ALUs, the matrix unit, the transpose/
//! permute unit and the DMA queues into one wide bundle per cycle. The
//! paper's Lesson 2 — "compiler compatibility trumps binary
//! compatibility" — exists because every generation changed the bundle
//! format, the functional-unit mix and the register files, yet software
//! kept working: XLA recompiles the same HLO for each chip.
//!
//! This crate makes that concrete:
//!
//! - [`inst`] and [`bundle`] define the operations and the VLIW bundle.
//! - [`encoding`] defines **per-generation binary formats** that are
//!   mutually incompatible on purpose (different magic, field widths,
//!   opcode numbering). A TPUv3 binary does not decode on TPUv4i —
//!   exactly the situation the paper describes.
//! - [`asm`] is a small textual assembler/disassembler, the
//!   human-readable common ground across generations.
//! - [`program`] holds verified programs and their static statistics.
//! - [`interp`] is a functional interpreter: programs execute against
//!   architectural state and compute real values (the reproduction's
//!   stand-in for a functional chip model).
//!
//! # Example
//!
//! ```
//! use tpu_isa::prelude::*;
//! use tpu_arch::Generation;
//!
//! let mut p = Program::new(Generation::TpuV4i);
//! p.push(Bundle::new().scalar(ScalarOp::LoadImm { dst: SReg(0), imm: 42 }));
//! p.push(Bundle::new().vector(VectorOp::VAdd { dst: VReg(1), a: VReg(1), b: VReg(2) }));
//! p.verify().unwrap();
//!
//! let bytes = tpu_isa::encoding::encode(&p).unwrap();
//! let back = tpu_isa::encoding::decode(&bytes, Generation::TpuV4i).unwrap();
//! assert_eq!(p, back);
//! // The same bytes are *not* a TPUv3 program:
//! assert!(tpu_isa::encoding::decode(&bytes, Generation::TpuV3).is_err());
//! ```

pub mod asm;
pub mod bundle;
pub mod encoding;
pub mod inst;
pub mod interp;
pub mod program;

pub use bundle::Bundle;
pub use encoding::{decode, encode, EncodeError};
pub use inst::{DmaDirection, DmaOp, MxuOp, SReg, ScalarOp, VReg, VectorOp, XposeOp};
pub use program::{Program, VerifyError};

/// Convenient glob import for building programs.
pub mod prelude {
    pub use crate::bundle::Bundle;
    pub use crate::inst::{DmaDirection, DmaOp, MxuOp, SReg, ScalarOp, VReg, VectorOp, XposeOp};
    pub use crate::program::Program;
}
