//! Per-generation binary encodings — deliberately incompatible.
//!
//! Every TPU generation changed its bundle format: different functional
//! units (TPUv1 has no second vector ALU and no transpose slot), different
//! register-file sizes, different opcode numbering, even a different
//! header magic. That is the hardware reality behind Lesson 2: *binary*
//! compatibility across VLIW generations was never on the table, so
//! Google invested in *compiler* compatibility instead.
//!
//! [`encode`] serializes a [`Program`] in its generation's format;
//! [`decode`] refuses anything built for another generation. Experiment
//! E14 and the Lesson-2 integration tests rely on this refusal.

use std::fmt;

use tpu_arch::{Generation, MemLevel};

use crate::bundle::Bundle;
use crate::inst::{DmaDirection, DmaOp, MxuOp, SReg, ScalarOp, VReg, VectorOp, XposeOp};
use crate::program::Program;

/// The binary format parameters of one generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingSpec {
    /// Which generation this spec describes.
    pub generation: Generation,
    /// Header magic (unique per generation).
    pub magic: u32,
    /// Format version byte.
    pub version: u8,
    /// Bits available for a scalar register index.
    pub sreg_bits: u8,
    /// Bits available for a vector register index.
    pub vreg_bits: u8,
    /// Whether the bundle has a second vector ALU slot.
    pub has_vector1: bool,
    /// Whether the bundle has a transpose/permute slot.
    pub has_xpose: bool,
    /// Highest addressable MXU index.
    pub mxu_max: u8,
    /// Whether DMA may address CMEM (TPUv4i/v4 only).
    pub has_cmem: bool,
    /// Offset added to every opcode number (scrambles numbering across
    /// generations so op bytes from one chip are meaningless on another).
    pub opcode_base: u8,
}

impl EncodingSpec {
    /// The encoding spec for a generation.
    pub fn for_generation(generation: Generation) -> EncodingSpec {
        match generation {
            Generation::TpuV1 => EncodingSpec {
                generation,
                magic: 0x5450_5531, // "TPU1"
                version: 1,
                sreg_bits: 4,
                vreg_bits: 4,
                has_vector1: false,
                has_xpose: false,
                mxu_max: 0,
                has_cmem: false,
                opcode_base: 0x10,
            },
            Generation::TpuV2 => EncodingSpec {
                generation,
                magic: 0x5450_5532, // "TPU2"
                version: 2,
                sreg_bits: 5,
                vreg_bits: 6,
                has_vector1: true,
                has_xpose: true,
                mxu_max: 0,
                has_cmem: false,
                opcode_base: 0x20,
            },
            Generation::TpuV3 => EncodingSpec {
                generation,
                magic: 0x5450_5533, // "TPU3"
                version: 3,
                sreg_bits: 5,
                vreg_bits: 6,
                has_vector1: true,
                has_xpose: true,
                mxu_max: 1,
                has_cmem: false,
                opcode_base: 0x30,
            },
            Generation::TpuV4i => EncodingSpec {
                generation,
                magic: 0x5450_3469, // "TP4i"
                version: 4,
                sreg_bits: 5,
                vreg_bits: 7,
                has_vector1: true,
                has_xpose: true,
                mxu_max: 3,
                has_cmem: true,
                opcode_base: 0x40,
            },
            Generation::TpuV4 => EncodingSpec {
                generation,
                magic: 0x5450_5534, // "TPU4"
                version: 4,
                sreg_bits: 5,
                vreg_bits: 7,
                has_vector1: true,
                has_xpose: true,
                mxu_max: 3,
                has_cmem: true,
                opcode_base: 0x50,
            },
            Generation::GpuT4Like => EncodingSpec {
                generation,
                magic: 0x4750_5534, // "GPU4"
                version: 1,
                sreg_bits: 6,
                vreg_bits: 6,
                has_vector1: true,
                has_xpose: false,
                mxu_max: 1,
                has_cmem: false,
                opcode_base: 0x60,
            },
        }
    }

    /// Highest encodable scalar register index.
    pub fn sreg_max(&self) -> u8 {
        ((1u16 << self.sreg_bits) - 1) as u8
    }

    /// Highest encodable vector register index.
    pub fn vreg_max(&self) -> u8 {
        ((1u16 << self.vreg_bits) - 1) as u8
    }
}

/// Error produced while encoding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The bundle uses a slot this generation's format lacks.
    SlotUnsupported {
        /// Generation being encoded for.
        generation: Generation,
        /// Human name of the slot, e.g. `"vector1"`.
        slot: &'static str,
    },
    /// A register index exceeds the generation's register file.
    RegisterOutOfRange {
        /// `"sreg"` or `"vreg"`.
        kind: &'static str,
        /// The offending index.
        index: u8,
        /// Largest legal index.
        max: u8,
    },
    /// An MXU index exceeds the generation's MXU count.
    MxuOutOfRange {
        /// The offending index.
        index: u8,
        /// Largest legal index.
        max: u8,
    },
    /// A DMA transfer addresses CMEM on a chip without CMEM.
    CmemUnsupported {
        /// Generation being encoded for.
        generation: Generation,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::SlotUnsupported { generation, slot } => {
                write!(f, "{generation} bundles have no `{slot}` slot")
            }
            EncodeError::RegisterOutOfRange { kind, index, max } => {
                write!(f, "{kind} index {index} exceeds maximum {max}")
            }
            EncodeError::MxuOutOfRange { index, max } => {
                write!(f, "mxu index {index} exceeds maximum {max}")
            }
            EncodeError::CmemUnsupported { generation } => {
                write!(f, "{generation} has no CMEM to DMA to/from")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced while decoding bytes into a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended prematurely.
    Truncated,
    /// The header magic does not match the expected generation — this is
    /// the "TPUv3 binary on TPUv4i" failure mode.
    BadMagic {
        /// Magic the expected generation uses.
        expected: u32,
        /// Magic found in the stream.
        found: u32,
    },
    /// The version byte does not match.
    BadVersion {
        /// Expected version.
        expected: u8,
        /// Found version.
        found: u8,
    },
    /// An opcode byte is not valid for this generation.
    UnknownOpcode {
        /// Slot in which the byte appeared.
        slot: &'static str,
        /// The offending byte.
        byte: u8,
    },
    /// The payload checksum does not match.
    BadChecksum,
    /// Bytes remained after the declared bundle count.
    TrailingBytes {
        /// Number of unexpected bytes.
        count: usize,
    },
    /// A decoded field is invalid (e.g. memory-level nibble out of range).
    BadField {
        /// Human name of the field.
        field: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "byte stream ended prematurely"),
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "magic 0x{found:08x} is not this generation's 0x{expected:08x} \
                 (binary built for a different chip)"
            ),
            DecodeError::BadVersion { expected, found } => {
                write!(f, "format version {found} differs from expected {expected}")
            }
            DecodeError::UnknownOpcode { slot, byte } => {
                write!(f, "byte 0x{byte:02x} is not a valid {slot} opcode here")
            }
            DecodeError::BadChecksum => write!(f, "payload checksum mismatch"),
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} unexpected trailing bytes")
            }
            DecodeError::BadField { field } => write!(f, "invalid field `{field}`"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Slot-presence flags in the per-bundle header byte.
const F_SCALAR: u8 = 1 << 0;
const F_VECTOR0: u8 = 1 << 1;
const F_VECTOR1: u8 = 1 << 2;
const F_MXU: u8 = 1 << 3;
const F_XPOSE: u8 = 1 << 4;
const F_DMA: u8 = 1 << 5;

/// Serializes a program in its generation's binary format.
///
/// # Errors
///
/// Returns an [`EncodeError`] if the program uses features the
/// generation's format cannot express.
pub fn encode(program: &Program) -> Result<Vec<u8>, EncodeError> {
    let spec = EncodingSpec::for_generation(program.generation());
    let mut payload = Vec::new();
    for bundle in program.bundles() {
        encode_bundle(bundle, &spec, &mut payload)?;
    }
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&spec.magic.to_le_bytes());
    out.push(spec.version);
    out.extend_from_slice(&(program.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    Ok(out)
}

/// Deserializes bytes as a program for `generation`.
///
/// # Errors
///
/// Returns a [`DecodeError`]; in particular [`DecodeError::BadMagic`]
/// when the bytes were encoded for a different generation.
pub fn decode(bytes: &[u8], generation: Generation) -> Result<Program, DecodeError> {
    let spec = EncodingSpec::for_generation(generation);
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.u32()?;
    if magic != spec.magic {
        return Err(DecodeError::BadMagic {
            expected: spec.magic,
            found: magic,
        });
    }
    let version = r.u8()?;
    if version != spec.version {
        return Err(DecodeError::BadVersion {
            expected: spec.version,
            found: version,
        });
    }
    let count = r.u32()? as usize;
    let payload_start = r.pos;
    let mut bundles = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        bundles.push(decode_bundle(&mut r, &spec)?);
    }
    let payload_end = r.pos;
    let checksum = r.u32()?;
    if checksum != fnv1a(&bytes[payload_start..payload_end]) {
        return Err(DecodeError::BadChecksum);
    }
    if r.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes {
            count: bytes.len() - r.pos,
        });
    }
    let mut p = Program::new(generation);
    for b in bundles {
        p.push(b);
    }
    Ok(p)
}

/// Checks one bundle's encodability without building a whole program
/// (used by [`Program::verify`]).
pub(crate) fn encode_bundle_for_verify(
    b: &Bundle,
    spec: &EncodingSpec,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    encode_bundle(b, spec, out)
}

fn encode_bundle(b: &Bundle, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let mut flags = 0u8;
    if b.scalar != ScalarOp::Nop {
        flags |= F_SCALAR;
    }
    if b.vector0 != VectorOp::Nop {
        flags |= F_VECTOR0;
    }
    if b.vector1 != VectorOp::Nop {
        if !spec.has_vector1 {
            return Err(EncodeError::SlotUnsupported {
                generation: spec.generation,
                slot: "vector1",
            });
        }
        flags |= F_VECTOR1;
    }
    if b.mxu != MxuOp::Nop {
        flags |= F_MXU;
    }
    if b.xpose != XposeOp::Nop {
        if !spec.has_xpose {
            return Err(EncodeError::SlotUnsupported {
                generation: spec.generation,
                slot: "xpose",
            });
        }
        flags |= F_XPOSE;
    }
    if b.dma != DmaOp::Nop {
        flags |= F_DMA;
    }
    out.push(flags);
    if flags & F_SCALAR != 0 {
        encode_scalar(&b.scalar, spec, out)?;
    }
    if flags & F_VECTOR0 != 0 {
        encode_vector(&b.vector0, spec, out)?;
    }
    if flags & F_VECTOR1 != 0 {
        encode_vector(&b.vector1, spec, out)?;
    }
    if flags & F_MXU != 0 {
        encode_mxu(&b.mxu, spec, out)?;
    }
    if flags & F_XPOSE != 0 {
        encode_xpose(&b.xpose, spec, out)?;
    }
    if flags & F_DMA != 0 {
        encode_dma(&b.dma, spec, out)?;
    }
    Ok(())
}

fn decode_bundle(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<Bundle, DecodeError> {
    let flags = r.u8()?;
    let mut b = Bundle::new();
    if flags & F_SCALAR != 0 {
        b.scalar = decode_scalar(r, spec)?;
    }
    if flags & F_VECTOR0 != 0 {
        b.vector0 = decode_vector(r, spec)?;
    }
    if flags & F_VECTOR1 != 0 {
        if !spec.has_vector1 {
            return Err(DecodeError::BadField { field: "vector1" });
        }
        b.vector1 = decode_vector(r, spec)?;
    }
    if flags & F_MXU != 0 {
        b.mxu = decode_mxu(r, spec)?;
    }
    if flags & F_XPOSE != 0 {
        if !spec.has_xpose {
            return Err(DecodeError::BadField { field: "xpose" });
        }
        b.xpose = decode_xpose(r, spec)?;
    }
    if flags & F_DMA != 0 {
        b.dma = decode_dma(r, spec)?;
    }
    Ok(b)
}

fn check_sreg(r: SReg, spec: &EncodingSpec) -> Result<u8, EncodeError> {
    if r.0 > spec.sreg_max() {
        Err(EncodeError::RegisterOutOfRange {
            kind: "sreg",
            index: r.0,
            max: spec.sreg_max(),
        })
    } else {
        Ok(r.0)
    }
}

fn check_vreg(r: VReg, spec: &EncodingSpec) -> Result<u8, EncodeError> {
    if r.0 > spec.vreg_max() {
        Err(EncodeError::RegisterOutOfRange {
            kind: "vreg",
            index: r.0,
            max: spec.vreg_max(),
        })
    } else {
        Ok(r.0)
    }
}

fn encode_scalar(op: &ScalarOp, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let base = spec.opcode_base;
    match *op {
        ScalarOp::Nop => out.push(base),
        ScalarOp::LoadImm { dst, imm } => {
            out.push(base + 1);
            out.push(check_sreg(dst, spec)?);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        ScalarOp::Add { dst, a, b } => {
            out.push(base + 2);
            out.push(check_sreg(dst, spec)?);
            out.push(check_sreg(a, spec)?);
            out.push(check_sreg(b, spec)?);
        }
        ScalarOp::Sub { dst, a, b } => {
            out.push(base + 3);
            out.push(check_sreg(dst, spec)?);
            out.push(check_sreg(a, spec)?);
            out.push(check_sreg(b, spec)?);
        }
        ScalarOp::Mul { dst, a, b } => {
            out.push(base + 4);
            out.push(check_sreg(dst, spec)?);
            out.push(check_sreg(a, spec)?);
            out.push(check_sreg(b, spec)?);
        }
        ScalarOp::LoopEnd { counter, offset } => {
            out.push(base + 5);
            out.push(check_sreg(counter, spec)?);
            out.extend_from_slice(&offset.to_le_bytes());
        }
        ScalarOp::SyncDma { queue } => {
            out.push(base + 6);
            out.push(queue);
        }
        ScalarOp::Halt => out.push(base + 7),
    }
    Ok(())
}

fn decode_scalar(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<ScalarOp, DecodeError> {
    let byte = r.u8()?;
    let Some(code) = byte.checked_sub(spec.opcode_base) else {
        return Err(DecodeError::UnknownOpcode {
            slot: "scalar",
            byte,
        });
    };
    Ok(match code {
        0 => ScalarOp::Nop,
        1 => ScalarOp::LoadImm {
            dst: SReg(r.u8()?),
            imm: r.i32()?,
        },
        2 => ScalarOp::Add {
            dst: SReg(r.u8()?),
            a: SReg(r.u8()?),
            b: SReg(r.u8()?),
        },
        3 => ScalarOp::Sub {
            dst: SReg(r.u8()?),
            a: SReg(r.u8()?),
            b: SReg(r.u8()?),
        },
        4 => ScalarOp::Mul {
            dst: SReg(r.u8()?),
            a: SReg(r.u8()?),
            b: SReg(r.u8()?),
        },
        5 => ScalarOp::LoopEnd {
            counter: SReg(r.u8()?),
            offset: r.u16()?,
        },
        6 => ScalarOp::SyncDma { queue: r.u8()? },
        7 => ScalarOp::Halt,
        _ => {
            return Err(DecodeError::UnknownOpcode {
                slot: "scalar",
                byte,
            })
        }
    })
}

fn encode_vector(op: &VectorOp, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let base = spec.opcode_base;
    match *op {
        VectorOp::Nop => out.push(base),
        VectorOp::VAdd { dst, a, b } => {
            out.push(base + 1);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
            out.push(check_vreg(b, spec)?);
        }
        VectorOp::VMul { dst, a, b } => {
            out.push(base + 2);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
            out.push(check_vreg(b, spec)?);
        }
        VectorOp::VMax { dst, a, b } => {
            out.push(base + 3);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
            out.push(check_vreg(b, spec)?);
        }
        VectorOp::VRelu { dst, a } => {
            out.push(base + 4);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
        }
        VectorOp::VXf { dst, a } => {
            out.push(base + 5);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
        }
        VectorOp::VLoad { dst, addr } => {
            out.push(base + 6);
            out.push(check_vreg(dst, spec)?);
            out.push(check_sreg(addr, spec)?);
        }
        VectorOp::VStore { src, addr } => {
            out.push(base + 7);
            out.push(check_vreg(src, spec)?);
            out.push(check_sreg(addr, spec)?);
        }
        VectorOp::VReduce { dst, a } => {
            out.push(base + 8);
            out.push(check_vreg(dst, spec)?);
            out.push(check_vreg(a, spec)?);
        }
    }
    Ok(())
}

fn decode_vector(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<VectorOp, DecodeError> {
    let byte = r.u8()?;
    let Some(code) = byte.checked_sub(spec.opcode_base) else {
        return Err(DecodeError::UnknownOpcode {
            slot: "vector",
            byte,
        });
    };
    Ok(match code {
        0 => VectorOp::Nop,
        1 => VectorOp::VAdd {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
            b: VReg(r.u8()?),
        },
        2 => VectorOp::VMul {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
            b: VReg(r.u8()?),
        },
        3 => VectorOp::VMax {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
            b: VReg(r.u8()?),
        },
        4 => VectorOp::VRelu {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
        },
        5 => VectorOp::VXf {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
        },
        6 => VectorOp::VLoad {
            dst: VReg(r.u8()?),
            addr: SReg(r.u8()?),
        },
        7 => VectorOp::VStore {
            src: VReg(r.u8()?),
            addr: SReg(r.u8()?),
        },
        8 => VectorOp::VReduce {
            dst: VReg(r.u8()?),
            a: VReg(r.u8()?),
        },
        _ => {
            return Err(DecodeError::UnknownOpcode {
                slot: "vector",
                byte,
            })
        }
    })
}

fn encode_mxu(op: &MxuOp, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let base = spec.opcode_base;
    let check = |mxu: u8| -> Result<u8, EncodeError> {
        if mxu > spec.mxu_max {
            Err(EncodeError::MxuOutOfRange {
                index: mxu,
                max: spec.mxu_max,
            })
        } else {
            Ok(mxu)
        }
    };
    match *op {
        MxuOp::Nop => out.push(base),
        MxuOp::PushWeights { mxu } => {
            out.push(base + 1);
            out.push(check(mxu)?);
        }
        MxuOp::MatMul { mxu, rows } => {
            out.push(base + 2);
            out.push(check(mxu)?);
            out.extend_from_slice(&rows.to_le_bytes());
        }
        MxuOp::PopResults { mxu } => {
            out.push(base + 3);
            out.push(check(mxu)?);
        }
    }
    Ok(())
}

fn decode_mxu(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<MxuOp, DecodeError> {
    let byte = r.u8()?;
    let Some(code) = byte.checked_sub(spec.opcode_base) else {
        return Err(DecodeError::UnknownOpcode { slot: "mxu", byte });
    };
    Ok(match code {
        0 => MxuOp::Nop,
        1 => MxuOp::PushWeights { mxu: r.u8()? },
        2 => MxuOp::MatMul {
            mxu: r.u8()?,
            rows: r.u16()?,
        },
        3 => MxuOp::PopResults { mxu: r.u8()? },
        _ => return Err(DecodeError::UnknownOpcode { slot: "mxu", byte }),
    })
}

fn encode_xpose(op: &XposeOp, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let base = spec.opcode_base;
    match *op {
        XposeOp::Nop => out.push(base),
        XposeOp::Transpose { src, dst } => {
            out.push(base + 1);
            out.push(check_vreg(src, spec)?);
            out.push(check_vreg(dst, spec)?);
        }
        XposeOp::Permute { src, dst } => {
            out.push(base + 2);
            out.push(check_vreg(src, spec)?);
            out.push(check_vreg(dst, spec)?);
        }
    }
    Ok(())
}

fn decode_xpose(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<XposeOp, DecodeError> {
    let byte = r.u8()?;
    let Some(code) = byte.checked_sub(spec.opcode_base) else {
        return Err(DecodeError::UnknownOpcode {
            slot: "xpose",
            byte,
        });
    };
    Ok(match code {
        0 => XposeOp::Nop,
        1 => XposeOp::Transpose {
            src: VReg(r.u8()?),
            dst: VReg(r.u8()?),
        },
        2 => XposeOp::Permute {
            src: VReg(r.u8()?),
            dst: VReg(r.u8()?),
        },
        _ => {
            return Err(DecodeError::UnknownOpcode {
                slot: "xpose",
                byte,
            })
        }
    })
}

fn mem_level_code(level: MemLevel) -> u8 {
    match level {
        MemLevel::Hbm => 0,
        MemLevel::Cmem => 1,
        MemLevel::Vmem => 2,
        MemLevel::Smem => 3,
    }
}

fn mem_level_from(code: u8) -> Option<MemLevel> {
    match code {
        0 => Some(MemLevel::Hbm),
        1 => Some(MemLevel::Cmem),
        2 => Some(MemLevel::Vmem),
        3 => Some(MemLevel::Smem),
        _ => None,
    }
}

fn encode_dma(op: &DmaOp, spec: &EncodingSpec, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let base = spec.opcode_base;
    match *op {
        DmaOp::Nop => out.push(base),
        DmaOp::Start { queue, dir, bytes } => {
            if !spec.has_cmem && (dir.src == MemLevel::Cmem || dir.dst == MemLevel::Cmem) {
                return Err(EncodeError::CmemUnsupported {
                    generation: spec.generation,
                });
            }
            out.push(base + 1);
            out.push(queue);
            out.push((mem_level_code(dir.src) << 4) | mem_level_code(dir.dst));
            out.extend_from_slice(&bytes.to_le_bytes());
        }
    }
    Ok(())
}

fn decode_dma(r: &mut Reader<'_>, spec: &EncodingSpec) -> Result<DmaOp, DecodeError> {
    let byte = r.u8()?;
    let Some(code) = byte.checked_sub(spec.opcode_base) else {
        return Err(DecodeError::UnknownOpcode { slot: "dma", byte });
    };
    Ok(match code {
        0 => DmaOp::Nop,
        1 => {
            let queue = r.u8()?;
            let levels = r.u8()?;
            let src =
                mem_level_from(levels >> 4).ok_or(DecodeError::BadField { field: "dma.src" })?;
            let dst =
                mem_level_from(levels & 0xF).ok_or(DecodeError::BadField { field: "dma.dst" })?;
            if !spec.has_cmem && (src == MemLevel::Cmem || dst == MemLevel::Cmem) {
                return Err(DecodeError::BadField { field: "dma.cmem" });
            }
            DmaOp::Start {
                queue,
                dir: DmaDirection::new(src, dst),
                bytes: r.u32()?,
            }
        }
        _ => return Err(DecodeError::UnknownOpcode { slot: "dma", byte }),
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program(generation: Generation) -> Program {
        let mut p = Program::new(generation);
        p.push(
            Bundle::new()
                .scalar(ScalarOp::LoadImm {
                    dst: SReg(1),
                    imm: -7,
                })
                .dma(DmaOp::Start {
                    queue: 0,
                    dir: DmaDirection::new(MemLevel::Hbm, MemLevel::Vmem),
                    bytes: 4096,
                }),
        );
        p.push(
            Bundle::new()
                .vector(VectorOp::VAdd {
                    dst: VReg(2),
                    a: VReg(0),
                    b: VReg(1),
                })
                .mxu(MxuOp::MatMul { mxu: 0, rows: 128 }),
        );
        p.push(Bundle::new().scalar(ScalarOp::Halt));
        p
    }

    #[test]
    fn round_trip_every_generation() {
        for generation in [
            Generation::TpuV1,
            Generation::TpuV2,
            Generation::TpuV3,
            Generation::TpuV4i,
            Generation::TpuV4,
            Generation::GpuT4Like,
        ] {
            let p = sample_program(generation);
            let bytes = encode(&p).unwrap();
            let q = decode(&bytes, generation).unwrap();
            assert_eq!(p, q, "round trip failed for {generation}");
        }
    }

    #[test]
    fn cross_generation_decode_fails_with_bad_magic() {
        // The Lesson-2 demonstration: a TPUv3 binary is not a TPUv4i one.
        let v3 = encode(&sample_program(Generation::TpuV3)).unwrap();
        let err = decode(&v3, Generation::TpuV4i).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));
        // And in every other direction too.
        let v4i = encode(&sample_program(Generation::TpuV4i)).unwrap();
        assert!(decode(&v4i, Generation::TpuV1).is_err());
        assert!(decode(&v4i, Generation::TpuV2).is_err());
        assert!(decode(&v4i, Generation::GpuT4Like).is_err());
    }

    #[test]
    fn forged_header_still_fails_on_opcodes() {
        // Even if someone patches the header, the opcode numbering is
        // generation-specific: the body cannot be misread as valid.
        let v3 = encode(&sample_program(Generation::TpuV3)).unwrap();
        let v4i_spec = EncodingSpec::for_generation(Generation::TpuV4i);
        let mut forged = v3;
        forged[..4].copy_from_slice(&v4i_spec.magic.to_le_bytes());
        forged[4] = v4i_spec.version;
        let err = decode(&forged, Generation::TpuV4i).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::UnknownOpcode { .. }
                    | DecodeError::BadChecksum
                    | DecodeError::Truncated
                    | DecodeError::BadField { .. }
                    | DecodeError::TrailingBytes { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn v1_lacks_vector1_and_xpose_slots() {
        let mut p = Program::new(Generation::TpuV1);
        p.push(Bundle::new().vector1(VectorOp::VRelu {
            dst: VReg(0),
            a: VReg(0),
        }));
        assert_eq!(
            encode(&p).unwrap_err(),
            EncodeError::SlotUnsupported {
                generation: Generation::TpuV1,
                slot: "vector1"
            }
        );
        let mut p2 = Program::new(Generation::TpuV1);
        p2.push(Bundle::new().xpose(XposeOp::Transpose {
            src: VReg(0),
            dst: VReg(1),
        }));
        assert!(matches!(
            encode(&p2).unwrap_err(),
            EncodeError::SlotUnsupported { slot: "xpose", .. }
        ));
    }

    #[test]
    fn register_files_differ_across_generations() {
        // v64 is legal on TPUv4i (7 vreg bits) but not on TPUv3 (6 bits).
        let op = VectorOp::VRelu {
            dst: VReg(64),
            a: VReg(64),
        };
        let mut v4i = Program::new(Generation::TpuV4i);
        v4i.push(Bundle::new().vector(op));
        assert!(encode(&v4i).is_ok());
        let mut v3 = Program::new(Generation::TpuV3);
        v3.push(Bundle::new().vector(op));
        assert!(matches!(
            encode(&v3).unwrap_err(),
            EncodeError::RegisterOutOfRange { kind: "vreg", .. }
        ));
    }

    #[test]
    fn mxu_index_range_tracks_generation() {
        let op = MxuOp::MatMul { mxu: 3, rows: 8 };
        let mut v4i = Program::new(Generation::TpuV4i);
        v4i.push(Bundle::new().mxu(op));
        assert!(encode(&v4i).is_ok());
        let mut v2 = Program::new(Generation::TpuV2);
        v2.push(Bundle::new().mxu(op));
        assert!(matches!(
            encode(&v2).unwrap_err(),
            EncodeError::MxuOutOfRange { index: 3, max: 0 }
        ));
    }

    #[test]
    fn cmem_dma_only_on_cmem_chips() {
        let op = DmaOp::Start {
            queue: 0,
            dir: DmaDirection::new(MemLevel::Hbm, MemLevel::Cmem),
            bytes: 1024,
        };
        let mut v4i = Program::new(Generation::TpuV4i);
        v4i.push(Bundle::new().dma(op));
        assert!(encode(&v4i).is_ok());
        let mut v3 = Program::new(Generation::TpuV3);
        v3.push(Bundle::new().dma(op));
        assert_eq!(
            encode(&v3).unwrap_err(),
            EncodeError::CmemUnsupported {
                generation: Generation::TpuV3
            }
        );
    }

    #[test]
    fn corruption_is_detected() {
        let p = sample_program(Generation::TpuV4i);
        let good = encode(&p).unwrap();
        // Flip a payload byte: checksum (or opcode decoding) must object.
        let mut bad = good.clone();
        let mid = good.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(decode(&bad, Generation::TpuV4i).is_err());
        // Truncation must be detected.
        assert!(matches!(
            decode(&good[..good.len() - 3], Generation::TpuV4i).unwrap_err(),
            DecodeError::Truncated | DecodeError::BadChecksum
        ));
        // Trailing garbage must be detected.
        let mut long = good;
        long.push(0xAB);
        assert!(decode(&long, Generation::TpuV4i).is_err());
    }

    #[test]
    fn error_displays_are_informative() {
        let e = DecodeError::BadMagic {
            expected: 0x5450_3469,
            found: 0x5450_5533,
        };
        let s = format!("{e}");
        assert!(s.contains("different chip"));
        assert!(!format!(
            "{}",
            EncodeError::CmemUnsupported {
                generation: Generation::TpuV1
            }
        )
        .is_empty());
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new(Generation::TpuV2);
        let bytes = encode(&p).unwrap();
        assert_eq!(decode(&bytes, Generation::TpuV2).unwrap(), p);
    }
}
