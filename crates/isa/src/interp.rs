//! A functional interpreter for the VLIW ISA.
//!
//! The performance simulator (`tpu-sim`) models *time*; this module
//! models *values*: it executes bundles against architectural state so
//! hand-written programs compute real results, testable against the
//! reference numerics in `tpu-numerics`. It is the reproduction's
//! stand-in for a functional chip model (the paper's teams had RTL
//! simulation; we have this).
//!
//! # Addressing conventions
//!
//! The binary ISA encodes transfer *sizes* but keeps addresses in scalar
//! registers, as real descriptor-based DMA does. The interpreter fixes
//! which registers carry which address:
//!
//! | Register | Role |
//! |---|---|
//! | `s10` | DMA source element offset |
//! | `s11` | DMA destination element offset |
//! | `s12` | `PushWeights`: weight tile base in VMEM |
//! | `s13` | `MatMul`: activation rows base in VMEM |
//! | `s14` | `PopResults`: result base in VMEM |
//!
//! All memories are word (f32) addressed. DMA is synchronous here
//! (`SyncDma` is a no-op); the *timing* of asynchrony is `tpu-sim`'s
//! job.
//!
//! # Example
//!
//! ```
//! use tpu_arch::Generation;
//! use tpu_isa::interp::{Interpreter, InterpConfig};
//! use tpu_isa::asm::assemble;
//!
//! // v1 = relu(v0 + v0), elementwise.
//! let p = assemble("v.add v1, v0, v0\ns.halt", Generation::TpuV4i).unwrap();
//! let mut m = Interpreter::new(InterpConfig::default());
//! m.write_vreg(0, &[1.0, -2.0, 3.0]);
//! m.run(&p).unwrap();
//! assert_eq!(&m.vreg(1)[..3], &[2.0, -4.0, 6.0]);
//! ```

use std::fmt;

use crate::inst::{DmaOp, MxuOp, ScalarOp, VectorOp, XposeOp};
use crate::program::Program;
use tpu_arch::MemLevel;

/// Sizing of the interpreted machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpConfig {
    /// Vector register length in elements (lanes x sublanes).
    pub vector_len: usize,
    /// Systolic array dimension.
    pub mxu_dim: usize,
    /// VMEM size in f32 words.
    pub vmem_words: usize,
    /// HBM size in f32 words.
    pub hbm_words: usize,
    /// CMEM size in f32 words (0 = absent).
    pub cmem_words: usize,
    /// Upper bound on executed bundles (runaway-loop guard).
    pub max_steps: usize,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            vector_len: 8,
            mxu_dim: 4,
            vmem_words: 1 << 16,
            hbm_words: 1 << 18,
            cmem_words: 1 << 16,
            max_steps: 1 << 20,
        }
    }
}

/// Error raised during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A memory access fell outside the level's size.
    OutOfBounds {
        /// Which memory.
        level: MemLevel,
        /// Offending element offset.
        offset: usize,
        /// Words requested.
        len: usize,
    },
    /// `MatMul`/`PopResults` before `PushWeights` on that MXU.
    MxuNotLoaded {
        /// The MXU index.
        mxu: u8,
    },
    /// The program ran past the step budget (probably an infinite loop).
    StepBudgetExceeded,
    /// DMA addressed CMEM but the config has none.
    NoCmem,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { level, offset, len } => {
                write!(f, "access of {len} words at {offset} exceeds {level}")
            }
            InterpError::MxuNotLoaded { mxu } => {
                write!(f, "mxu {mxu} used before PushWeights")
            }
            InterpError::StepBudgetExceeded => write!(f, "step budget exceeded"),
            InterpError::NoCmem => write!(f, "this configuration has no CMEM"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Bundles executed (loop iterations counted individually).
    pub bundles_executed: usize,
    /// MACs performed by MatMul instructions.
    pub macs: u64,
    /// Words moved by DMA.
    pub dma_words: u64,
}

// Address-convention registers (see module docs).
const R_DMA_SRC: usize = 10;
const R_DMA_DST: usize = 11;
const R_MXU_WEIGHTS: usize = 12;
const R_MXU_ACTS: usize = 13;
const R_MXU_OUT: usize = 14;

/// The architectural state plus an executor.
#[derive(Debug, Clone)]
pub struct Interpreter {
    config: InterpConfig,
    sregs: Vec<i64>,
    vregs: Vec<Vec<f32>>,
    vmem: Vec<f32>,
    hbm: Vec<f32>,
    cmem: Vec<f32>,
    /// Per-MXU loaded weight tile (row-major d x d) and result buffer.
    mxu_weights: Vec<Option<Vec<f32>>>,
    mxu_results: Vec<Vec<f32>>,
    stats: InterpStats,
}

impl Interpreter {
    /// Creates a zeroed machine.
    pub fn new(config: InterpConfig) -> Interpreter {
        Interpreter {
            sregs: vec![0; 256],
            vregs: vec![vec![0.0; config.vector_len]; 256],
            vmem: vec![0.0; config.vmem_words],
            hbm: vec![0.0; config.hbm_words],
            cmem: vec![0.0; config.cmem_words],
            mxu_weights: vec![None; 256],
            mxu_results: vec![Vec::new(); 256],
            stats: InterpStats::default(),
            config,
        }
    }

    /// Reads a scalar register.
    pub fn sreg(&self, i: usize) -> i64 {
        self.sregs[i]
    }

    /// Writes a scalar register.
    pub fn write_sreg(&mut self, i: usize, v: i64) {
        self.sregs[i] = v;
    }

    /// Reads a vector register.
    pub fn vreg(&self, i: usize) -> &[f32] {
        &self.vregs[i]
    }

    /// Writes the first `data.len()` lanes of a vector register.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the vector length.
    pub fn write_vreg(&mut self, i: usize, data: &[f32]) {
        assert!(data.len() <= self.config.vector_len, "vector too long");
        self.vregs[i][..data.len()].copy_from_slice(data);
    }

    /// A view of VMEM.
    pub fn vmem(&self) -> &[f32] {
        &self.vmem
    }

    /// Writes words into a memory level at an element offset.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::OutOfBounds`] when the write exceeds the
    /// level's capacity.
    pub fn write_mem(
        &mut self,
        level: MemLevel,
        offset: usize,
        data: &[f32],
    ) -> Result<(), InterpError> {
        let mem = self.mem_mut(level)?;
        if offset + data.len() > mem.len() {
            return Err(InterpError::OutOfBounds {
                level,
                offset,
                len: data.len(),
            });
        }
        mem[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads words from a memory level.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::OutOfBounds`] when the read exceeds the
    /// level's capacity.
    pub fn read_mem(
        &self,
        level: MemLevel,
        offset: usize,
        len: usize,
    ) -> Result<Vec<f32>, InterpError> {
        let mem = self.mem_ref(level)?;
        if offset + len > mem.len() {
            return Err(InterpError::OutOfBounds { level, offset, len });
        }
        Ok(mem[offset..offset + len].to_vec())
    }

    /// Statistics of the last run.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    fn mem_ref(&self, level: MemLevel) -> Result<&Vec<f32>, InterpError> {
        match level {
            MemLevel::Hbm => Ok(&self.hbm),
            MemLevel::Vmem | MemLevel::Smem => Ok(&self.vmem),
            MemLevel::Cmem => {
                if self.config.cmem_words == 0 {
                    Err(InterpError::NoCmem)
                } else {
                    Ok(&self.cmem)
                }
            }
        }
    }

    fn mem_mut(&mut self, level: MemLevel) -> Result<&mut Vec<f32>, InterpError> {
        match level {
            MemLevel::Hbm => Ok(&mut self.hbm),
            MemLevel::Vmem | MemLevel::Smem => Ok(&mut self.vmem),
            MemLevel::Cmem => {
                if self.config.cmem_words == 0 {
                    Err(InterpError::NoCmem)
                } else {
                    Ok(&mut self.cmem)
                }
            }
        }
    }

    /// Executes a program to `Halt` (or to the end of the bundle list).
    ///
    /// # Errors
    ///
    /// Returns the first [`InterpError`] encountered.
    pub fn run(&mut self, program: &Program) -> Result<InterpStats, InterpError> {
        self.stats = InterpStats::default();
        let bundles = program.bundles();
        let mut pc = 0usize;
        while pc < bundles.len() {
            if self.stats.bundles_executed >= self.config.max_steps {
                return Err(InterpError::StepBudgetExceeded);
            }
            self.stats.bundles_executed += 1;
            let b = &bundles[pc];
            // Vector slots first (reads of scalar addr regs see pre-bundle
            // values, matching VLIW read-before-write semantics).
            let v0 = b.vector0;
            let v1 = b.vector1;
            self.exec_vector(&v0)?;
            self.exec_vector(&v1)?;
            self.exec_xpose(&b.xpose);
            self.exec_mxu(&b.mxu)?;
            self.exec_dma(&b.dma)?;
            match b.scalar {
                ScalarOp::Halt => break,
                ScalarOp::LoopEnd { counter, offset } => {
                    let c = &mut self.sregs[counter.0 as usize];
                    *c -= 1;
                    if *c > 0 {
                        pc = pc.saturating_sub(offset as usize);
                        continue;
                    }
                }
                op => self.exec_scalar(&op),
            }
            pc += 1;
        }
        Ok(self.stats)
    }

    fn exec_scalar(&mut self, op: &ScalarOp) {
        match *op {
            ScalarOp::Nop
            | ScalarOp::Halt
            | ScalarOp::SyncDma { .. }
            | ScalarOp::LoopEnd { .. } => {}
            ScalarOp::LoadImm { dst, imm } => self.sregs[dst.0 as usize] = imm as i64,
            ScalarOp::Add { dst, a, b } => {
                self.sregs[dst.0 as usize] =
                    self.sregs[a.0 as usize].wrapping_add(self.sregs[b.0 as usize])
            }
            ScalarOp::Sub { dst, a, b } => {
                self.sregs[dst.0 as usize] =
                    self.sregs[a.0 as usize].wrapping_sub(self.sregs[b.0 as usize])
            }
            ScalarOp::Mul { dst, a, b } => {
                self.sregs[dst.0 as usize] =
                    self.sregs[a.0 as usize].wrapping_mul(self.sregs[b.0 as usize])
            }
        }
    }

    fn exec_vector(&mut self, op: &VectorOp) -> Result<(), InterpError> {
        let n = self.config.vector_len;
        match *op {
            VectorOp::Nop => {}
            VectorOp::VAdd { dst, a, b } => {
                for i in 0..n {
                    self.vregs[dst.0 as usize][i] =
                        self.vregs[a.0 as usize][i] + self.vregs[b.0 as usize][i];
                }
            }
            VectorOp::VMul { dst, a, b } => {
                for i in 0..n {
                    self.vregs[dst.0 as usize][i] =
                        self.vregs[a.0 as usize][i] * self.vregs[b.0 as usize][i];
                }
            }
            VectorOp::VMax { dst, a, b } => {
                for i in 0..n {
                    self.vregs[dst.0 as usize][i] =
                        self.vregs[a.0 as usize][i].max(self.vregs[b.0 as usize][i]);
                }
            }
            VectorOp::VRelu { dst, a } => {
                for i in 0..n {
                    self.vregs[dst.0 as usize][i] = self.vregs[a.0 as usize][i].max(0.0);
                }
            }
            VectorOp::VXf { dst, a } => {
                // The transcendental pipeline: modeled as tanh.
                for i in 0..n {
                    self.vregs[dst.0 as usize][i] = self.vregs[a.0 as usize][i].tanh();
                }
            }
            VectorOp::VReduce { dst, a } => {
                let sum: f32 = self.vregs[a.0 as usize].iter().sum();
                self.vregs[dst.0 as usize].fill(0.0);
                self.vregs[dst.0 as usize][0] = sum;
            }
            VectorOp::VLoad { dst, addr } => {
                let offset = self.sregs[addr.0 as usize].max(0) as usize;
                let data = self.read_mem(MemLevel::Vmem, offset, n)?;
                self.vregs[dst.0 as usize].copy_from_slice(&data);
            }
            VectorOp::VStore { src, addr } => {
                let offset = self.sregs[addr.0 as usize].max(0) as usize;
                let data = self.vregs[src.0 as usize].clone();
                self.write_mem(MemLevel::Vmem, offset, &data)?;
            }
        }
        Ok(())
    }

    fn exec_xpose(&mut self, op: &XposeOp) {
        match *op {
            XposeOp::Nop => {}
            XposeOp::Transpose { src, dst } | XposeOp::Permute { src, dst } => {
                // Register-level view: reverse lanes (a fixed permutation,
                // enough for value-flow tests).
                let mut v = self.vregs[src.0 as usize].clone();
                v.reverse();
                self.vregs[dst.0 as usize] = v;
            }
        }
    }

    fn exec_mxu(&mut self, op: &MxuOp) -> Result<(), InterpError> {
        let d = self.config.mxu_dim;
        match *op {
            MxuOp::Nop => {}
            MxuOp::PushWeights { mxu } => {
                let base = self.sregs[R_MXU_WEIGHTS].max(0) as usize;
                let tile = self.read_mem(MemLevel::Vmem, base, d * d)?;
                self.mxu_weights[mxu as usize] = Some(tile);
            }
            MxuOp::MatMul { mxu, rows } => {
                let weights = self.mxu_weights[mxu as usize]
                    .clone()
                    .ok_or(InterpError::MxuNotLoaded { mxu })?;
                let base = self.sregs[R_MXU_ACTS].max(0) as usize;
                let acts = self.read_mem(MemLevel::Vmem, base, rows as usize * d)?;
                let mut out = Vec::with_capacity(rows as usize * d);
                for r in 0..rows as usize {
                    for c in 0..d {
                        // Systolic column accumulate in fp32.
                        let mut acc = 0.0f32;
                        for k in 0..d {
                            acc += acts[r * d + k] * weights[k * d + c];
                        }
                        out.push(acc);
                    }
                }
                self.stats.macs += rows as u64 * (d * d) as u64;
                self.mxu_results[mxu as usize] = out;
            }
            MxuOp::PopResults { mxu } => {
                if self.mxu_weights[mxu as usize].is_none() {
                    return Err(InterpError::MxuNotLoaded { mxu });
                }
                let out = std::mem::take(&mut self.mxu_results[mxu as usize]);
                let base = self.sregs[R_MXU_OUT].max(0) as usize;
                self.write_mem(MemLevel::Vmem, base, &out)?;
            }
        }
        Ok(())
    }

    fn exec_dma(&mut self, op: &DmaOp) -> Result<(), InterpError> {
        match *op {
            DmaOp::Nop => {}
            DmaOp::Start { dir, bytes, .. } => {
                let words = (bytes as usize) / 4;
                let src_off = self.sregs[R_DMA_SRC].max(0) as usize;
                let dst_off = self.sregs[R_DMA_DST].max(0) as usize;
                let data = self.read_mem(dir.src, src_off, words)?;
                self.write_mem(dir.dst, dst_off, &data)?;
                self.stats.dma_words += words as u64;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use tpu_arch::Generation;

    fn machine() -> Interpreter {
        Interpreter::new(InterpConfig::default())
    }

    fn asm(src: &str) -> Program {
        assemble(src, Generation::TpuV4i).expect("assembles")
    }

    #[test]
    fn scalar_arithmetic_and_halt() {
        let p = asm("s.li s1, 6\ns.li s2, 7\ns.mul s3, s1, s2\ns.halt\ns.li s3, 0");
        let mut m = machine();
        let stats = m.run(&p).unwrap();
        assert_eq!(m.sreg(3), 42);
        // Halt stops before the trailing overwrite.
        assert_eq!(stats.bundles_executed, 4);
    }

    #[test]
    fn vector_ops_match_reference() {
        let p = asm("v.add v2, v0, v1 | w.mul v3, v0, v1\nv.relu v4, v2\nv.red v5, v0\ns.halt");
        let mut m = machine();
        m.write_vreg(0, &[1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        m.write_vreg(1, &[1.0; 8]);
        m.run(&p).unwrap();
        assert_eq!(m.vreg(2), &[2.0, -1.0, 4.0, -3.0, 6.0, -5.0, 8.0, -7.0]);
        assert_eq!(m.vreg(3), &[1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        assert_eq!(m.vreg(4), &[2.0, 0.0, 4.0, 0.0, 6.0, 0.0, 8.0, 0.0]);
        assert_eq!(m.vreg(5)[0], -4.0); // sum of v0
    }

    #[test]
    fn load_store_round_trip() {
        let p = asm("s.li s0, 100\nv.ld v1, s0\ns.li s0, 200\nv.st v1, s0\ns.halt");
        let mut m = machine();
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        m.write_mem(MemLevel::Vmem, 100, &data).unwrap();
        m.run(&p).unwrap();
        assert_eq!(&m.vmem()[200..208], &data[..]);
    }

    #[test]
    fn loop_counts_iterations() {
        // s1 = 5 iterations of s2 += 3.
        let p = asm("s.li s1, 5\n\
             s.li s2, 0\n\
             s.li s3, 3\n\
             s.add s2, s2, s3\n\
             s.loopend s1, 1\n\
             s.halt");
        let mut m = machine();
        m.run(&p).unwrap();
        assert_eq!(m.sreg(2), 15);
    }

    #[test]
    fn mxu_matmul_matches_reference_matmul() {
        // 4x4 weights at vmem[0], 3 activation rows at vmem[16],
        // results to vmem[64].
        let d = 4usize;
        let rows = 3usize;
        let p = asm("s.li s12, 0\n\
             s.li s13, 16\n\
             s.li s14, 64\n\
             m.push 0\n\
             m.mm 0, 3\n\
             m.pop 0\n\
             s.halt");
        let mut m = machine();
        let weights: Vec<f32> = (0..d * d).map(|i| (i as f32) * 0.5 - 3.0).collect();
        let acts: Vec<f32> = (0..rows * d).map(|i| (i as f32) * 0.25 + 1.0).collect();
        m.write_mem(MemLevel::Vmem, 0, &weights).unwrap();
        m.write_mem(MemLevel::Vmem, 16, &acts).unwrap();
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.macs, (rows * d * d) as u64);

        // Reference via tpu-numerics' Tensor.
        let a = tpu_numerics::Tensor::from_vec(&[rows, d], acts);
        let w = tpu_numerics::Tensor::from_vec(&[d, d], weights);
        let expect = a.matmul(&w, tpu_numerics::accum::AccumOrder::Sequential);
        let got = m.read_mem(MemLevel::Vmem, 64, rows * d).unwrap();
        for (g, e) in got.iter().zip(expect.data()) {
            assert!((g - e).abs() < 1e-4, "{g} vs {e}");
        }
    }

    #[test]
    fn mxu_requires_weights() {
        let p = asm("m.mm 0, 1\ns.halt");
        let mut m = machine();
        assert_eq!(m.run(&p).unwrap_err(), InterpError::MxuNotLoaded { mxu: 0 });
    }

    #[test]
    fn dma_copies_between_levels() {
        let p = asm("s.li s10, 0\n\
             s.li s11, 50\n\
             d.start q0, hbm->vmem, 32\n\
             s.halt");
        let mut m = machine();
        let data: Vec<f32> = (0..8).map(|i| i as f32 * 1.5).collect();
        m.write_mem(MemLevel::Hbm, 0, &data).unwrap();
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.dma_words, 8);
        assert_eq!(&m.vmem()[50..58], &data[..]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let p = asm("s.li s0, 1000000\nv.ld v1, s0\ns.halt");
        let mut m = machine();
        assert!(matches!(
            m.run(&p).unwrap_err(),
            InterpError::OutOfBounds {
                level: MemLevel::Vmem,
                ..
            }
        ));
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        // Counter never reaches zero (reloaded each iteration).
        let p = asm("s.li s1, 2\ns.loopend s1, 1\ns.halt");
        let mut m = Interpreter::new(InterpConfig {
            max_steps: 100,
            ..InterpConfig::default()
        });
        // s.li reloads s1=2 each backward jump -> loops forever.
        assert_eq!(m.run(&p).unwrap_err(), InterpError::StepBudgetExceeded);
    }

    #[test]
    fn transpose_reverses_lanes() {
        let p = asm("x.t v0, v1\ns.halt");
        let mut m = machine();
        m.write_vreg(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        m.run(&p).unwrap();
        assert_eq!(m.vreg(1), &[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn cmem_absent_is_an_error() {
        let p = asm("d.start q0, cmem->vmem, 16\ns.halt");
        let mut m = Interpreter::new(InterpConfig {
            cmem_words: 0,
            ..InterpConfig::default()
        });
        assert_eq!(m.run(&p).unwrap_err(), InterpError::NoCmem);
    }
}
