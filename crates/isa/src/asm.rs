//! Textual assembler and disassembler.
//!
//! The text format is the generation-independent common ground: unlike
//! the binary encodings, the same assembly source can be assembled for
//! any generation (and will fail cleanly where the target lacks a
//! feature). One bundle per line; slots separated by `|`; comments start
//! with `;`.
//!
//! ```text
//! s.li s0, 42 | d.start q0, hbm->vmem, 4096
//! v.add v2, v0, v1 | m.mm 0, 128
//! s.halt
//! ```

use std::fmt::Write as _;

use tpu_arch::{Generation, MemLevel};

use crate::bundle::Bundle;
use crate::inst::{DmaDirection, DmaOp, MxuOp, SReg, ScalarOp, VReg, VectorOp, XposeOp};
use crate::program::Program;

/// Error produced by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Formats one bundle as assembly text (`"nop"` if empty).
pub fn format_bundle(b: &Bundle) -> String {
    let mut parts: Vec<String> = Vec::new();
    match b.scalar {
        ScalarOp::Nop => {}
        ScalarOp::LoadImm { dst, imm } => parts.push(format!("s.li {dst}, {imm}")),
        ScalarOp::Add { dst, a, b } => parts.push(format!("s.add {dst}, {a}, {b}")),
        ScalarOp::Sub { dst, a, b } => parts.push(format!("s.sub {dst}, {a}, {b}")),
        ScalarOp::Mul { dst, a, b } => parts.push(format!("s.mul {dst}, {a}, {b}")),
        ScalarOp::LoopEnd { counter, offset } => {
            parts.push(format!("s.loopend {counter}, {offset}"))
        }
        ScalarOp::SyncDma { queue } => parts.push(format!("s.syncdma q{queue}")),
        ScalarOp::Halt => parts.push("s.halt".to_owned()),
    }
    for (prefix, op) in [("v", &b.vector0), ("w", &b.vector1)] {
        match *op {
            VectorOp::Nop => {}
            VectorOp::VAdd { dst, a, b } => parts.push(format!("{prefix}.add {dst}, {a}, {b}")),
            VectorOp::VMul { dst, a, b } => parts.push(format!("{prefix}.mul {dst}, {a}, {b}")),
            VectorOp::VMax { dst, a, b } => parts.push(format!("{prefix}.max {dst}, {a}, {b}")),
            VectorOp::VRelu { dst, a } => parts.push(format!("{prefix}.relu {dst}, {a}")),
            VectorOp::VXf { dst, a } => parts.push(format!("{prefix}.xf {dst}, {a}")),
            VectorOp::VLoad { dst, addr } => parts.push(format!("{prefix}.ld {dst}, {addr}")),
            VectorOp::VStore { src, addr } => parts.push(format!("{prefix}.st {src}, {addr}")),
            VectorOp::VReduce { dst, a } => parts.push(format!("{prefix}.red {dst}, {a}")),
        }
    }
    match b.mxu {
        MxuOp::Nop => {}
        MxuOp::PushWeights { mxu } => parts.push(format!("m.push {mxu}")),
        MxuOp::MatMul { mxu, rows } => parts.push(format!("m.mm {mxu}, {rows}")),
        MxuOp::PopResults { mxu } => parts.push(format!("m.pop {mxu}")),
    }
    match b.xpose {
        XposeOp::Nop => {}
        XposeOp::Transpose { src, dst } => parts.push(format!("x.t {src}, {dst}")),
        XposeOp::Permute { src, dst } => parts.push(format!("x.p {src}, {dst}")),
    }
    match b.dma {
        DmaOp::Nop => {}
        DmaOp::Start { queue, dir, bytes } => {
            parts.push(format!("d.start q{queue}, {dir}, {bytes}"))
        }
    }
    if parts.is_empty() {
        "nop".to_owned()
    } else {
        parts.join(" | ")
    }
}

/// Formats a whole program as assembly text.
pub fn format_program(p: &Program) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; target: {}", p.generation());
    for b in p.bundles() {
        let _ = writeln!(s, "{}", format_bundle(b));
    }
    s
}

/// Assembles source text into a program for `generation`.
///
/// The same source may target any generation; whether the result is
/// *legal* for that generation is checked by [`Program::verify`] /
/// [`crate::encode`], not here.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line on syntax errors.
pub fn assemble(source: &str, generation: Generation) -> Result<Program, AsmError> {
    let mut program = Program::new(generation);
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut bundle = Bundle::new();
        if line != "nop" {
            for slot in line.split('|') {
                parse_slot(slot.trim(), &mut bundle, line_no)?;
            }
        }
        program.push(bundle);
    }
    Ok(program)
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_slot(text: &str, bundle: &mut Bundle, line: usize) -> Result<(), AsmError> {
    let (head, rest) = match text.split_once(' ') {
        Some((h, r)) => (h, r.trim()),
        None => (text, ""),
    };
    let (unit, op) = head
        .split_once('.')
        .ok_or_else(|| err(line, format!("malformed op `{text}`")))?;
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    match unit {
        "s" => bundle.scalar = parse_scalar(op, &args, line)?,
        "v" => bundle.vector0 = parse_vector(op, &args, line)?,
        "w" => bundle.vector1 = parse_vector(op, &args, line)?,
        "m" => bundle.mxu = parse_mxu(op, &args, line)?,
        "x" => bundle.xpose = parse_xpose(op, &args, line)?,
        "d" => bundle.dma = parse_dma(op, &args, line)?,
        other => return Err(err(line, format!("unknown unit `{other}`"))),
    }
    Ok(())
}

fn parse_sreg(s: &str, line: usize) -> Result<SReg, AsmError> {
    s.strip_prefix('s')
        .and_then(|n| n.parse::<u8>().ok())
        .map(SReg)
        .ok_or_else(|| err(line, format!("bad scalar register `{s}`")))
}

fn parse_vreg(s: &str, line: usize) -> Result<VReg, AsmError> {
    s.strip_prefix('v')
        .and_then(|n| n.parse::<u8>().ok())
        .map(VReg)
        .ok_or_else(|| err(line, format!("bad vector register `{s}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, AsmError> {
    s.parse::<T>()
        .map_err(|_| err(line, format!("bad number `{s}`")))
}

fn expect_argc(args: &[&str], n: usize, line: usize, op: &str) -> Result<(), AsmError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            format!("`{op}` expects {n} operands, found {}", args.len()),
        ))
    }
}

fn parse_scalar(op: &str, args: &[&str], line: usize) -> Result<ScalarOp, AsmError> {
    Ok(match op {
        "nop" => ScalarOp::Nop,
        "li" => {
            expect_argc(args, 2, line, op)?;
            ScalarOp::LoadImm {
                dst: parse_sreg(args[0], line)?,
                imm: parse_num(args[1], line)?,
            }
        }
        "add" | "sub" | "mul" => {
            expect_argc(args, 3, line, op)?;
            let dst = parse_sreg(args[0], line)?;
            let a = parse_sreg(args[1], line)?;
            let b = parse_sreg(args[2], line)?;
            match op {
                "add" => ScalarOp::Add { dst, a, b },
                "sub" => ScalarOp::Sub { dst, a, b },
                _ => ScalarOp::Mul { dst, a, b },
            }
        }
        "loopend" => {
            expect_argc(args, 2, line, op)?;
            ScalarOp::LoopEnd {
                counter: parse_sreg(args[0], line)?,
                offset: parse_num(args[1], line)?,
            }
        }
        "syncdma" => {
            expect_argc(args, 1, line, op)?;
            let q = args[0]
                .strip_prefix('q')
                .and_then(|n| n.parse::<u8>().ok())
                .ok_or_else(|| err(line, format!("bad queue `{}`", args[0])))?;
            ScalarOp::SyncDma { queue: q }
        }
        "halt" => ScalarOp::Halt,
        other => return Err(err(line, format!("unknown scalar op `{other}`"))),
    })
}

fn parse_vector(op: &str, args: &[&str], line: usize) -> Result<VectorOp, AsmError> {
    Ok(match op {
        "nop" => VectorOp::Nop,
        "add" | "mul" | "max" => {
            expect_argc(args, 3, line, op)?;
            let dst = parse_vreg(args[0], line)?;
            let a = parse_vreg(args[1], line)?;
            let b = parse_vreg(args[2], line)?;
            match op {
                "add" => VectorOp::VAdd { dst, a, b },
                "mul" => VectorOp::VMul { dst, a, b },
                _ => VectorOp::VMax { dst, a, b },
            }
        }
        "relu" | "xf" | "red" => {
            expect_argc(args, 2, line, op)?;
            let dst = parse_vreg(args[0], line)?;
            let a = parse_vreg(args[1], line)?;
            match op {
                "relu" => VectorOp::VRelu { dst, a },
                "xf" => VectorOp::VXf { dst, a },
                _ => VectorOp::VReduce { dst, a },
            }
        }
        "ld" => {
            expect_argc(args, 2, line, op)?;
            VectorOp::VLoad {
                dst: parse_vreg(args[0], line)?,
                addr: parse_sreg(args[1], line)?,
            }
        }
        "st" => {
            expect_argc(args, 2, line, op)?;
            VectorOp::VStore {
                src: parse_vreg(args[0], line)?,
                addr: parse_sreg(args[1], line)?,
            }
        }
        other => return Err(err(line, format!("unknown vector op `{other}`"))),
    })
}

fn parse_mxu(op: &str, args: &[&str], line: usize) -> Result<MxuOp, AsmError> {
    Ok(match op {
        "nop" => MxuOp::Nop,
        "push" => {
            expect_argc(args, 1, line, op)?;
            MxuOp::PushWeights {
                mxu: parse_num(args[0], line)?,
            }
        }
        "mm" => {
            expect_argc(args, 2, line, op)?;
            MxuOp::MatMul {
                mxu: parse_num(args[0], line)?,
                rows: parse_num(args[1], line)?,
            }
        }
        "pop" => {
            expect_argc(args, 1, line, op)?;
            MxuOp::PopResults {
                mxu: parse_num(args[0], line)?,
            }
        }
        other => return Err(err(line, format!("unknown mxu op `{other}`"))),
    })
}

fn parse_xpose(op: &str, args: &[&str], line: usize) -> Result<XposeOp, AsmError> {
    Ok(match op {
        "nop" => XposeOp::Nop,
        "t" | "p" => {
            expect_argc(args, 2, line, op)?;
            let src = parse_vreg(args[0], line)?;
            let dst = parse_vreg(args[1], line)?;
            if op == "t" {
                XposeOp::Transpose { src, dst }
            } else {
                XposeOp::Permute { src, dst }
            }
        }
        other => return Err(err(line, format!("unknown xpose op `{other}`"))),
    })
}

fn parse_mem_level(s: &str, line: usize) -> Result<MemLevel, AsmError> {
    match s {
        "hbm" => Ok(MemLevel::Hbm),
        "cmem" => Ok(MemLevel::Cmem),
        "vmem" => Ok(MemLevel::Vmem),
        "smem" => Ok(MemLevel::Smem),
        other => Err(err(line, format!("unknown memory level `{other}`"))),
    }
}

fn parse_dma(op: &str, args: &[&str], line: usize) -> Result<DmaOp, AsmError> {
    Ok(match op {
        "nop" => DmaOp::Nop,
        "start" => {
            expect_argc(args, 3, line, op)?;
            let queue = args[0]
                .strip_prefix('q')
                .and_then(|n| n.parse::<u8>().ok())
                .ok_or_else(|| err(line, format!("bad queue `{}`", args[0])))?;
            let (src, dst) = args[1]
                .split_once("->")
                .ok_or_else(|| err(line, format!("bad direction `{}`", args[1])))?;
            DmaOp::Start {
                queue,
                dir: DmaDirection::new(parse_mem_level(src, line)?, parse_mem_level(dst, line)?),
                bytes: parse_num(args[2], line)?,
            }
        }
        other => return Err(err(line, format!("unknown dma op `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
; a tiny kernel
s.li s0, 42 | d.start q0, hbm->vmem, 4096
v.add v2, v0, v1 | m.push 0
w.relu v3, v2 | m.mm 0, 128 | x.t v3, v4
s.syncdma q0
nop
s.halt
";

    #[test]
    fn assemble_disassemble_round_trip() {
        let p = assemble(SOURCE, Generation::TpuV4i).unwrap();
        assert_eq!(p.len(), 6);
        let text = format_program(&p);
        let q = assemble(&text, Generation::TpuV4i).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn same_source_assembles_for_every_generation() {
        // Compiler compatibility: one source, many targets. (Legality for
        // a target is a separate verify/encode question.)
        for generation in [
            Generation::TpuV1,
            Generation::TpuV2,
            Generation::TpuV3,
            Generation::TpuV4i,
            Generation::TpuV4,
        ] {
            let p = assemble(SOURCE, generation).unwrap();
            assert_eq!(p.generation(), generation);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let p = assemble("; only a comment\n\n  \ns.halt\n", Generation::TpuV2).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn nop_line_is_an_empty_bundle() {
        let p = assemble("nop", Generation::TpuV2).unwrap();
        assert!(p.bundles()[0].is_nop());
        assert_eq!(format_bundle(&Bundle::new()), "nop");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("s.halt\nq.bogus v1\n", Generation::TpuV2).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(format!("{e}").contains("line 2"));
    }

    #[test]
    fn bad_operands_are_rejected() {
        assert!(assemble("s.li s0", Generation::TpuV2).is_err()); // argc
        assert!(assemble("s.li x0, 3", Generation::TpuV2).is_err()); // reg
        assert!(assemble("s.li s0, abc", Generation::TpuV2).is_err()); // num
        assert!(assemble("d.start q0, hbm>vmem, 8", Generation::TpuV2).is_err()); // arrow
        assert!(assemble("d.start q0, hbm->foo, 8", Generation::TpuV2).is_err()); // level
        assert!(assemble("v.frobnicate v0, v1", Generation::TpuV2).is_err()); // op
        assert!(assemble("halt", Generation::TpuV2).is_err()); // missing unit
    }

    #[test]
    fn every_op_formats_and_parses() {
        // Exhaustive per-slot round trip through text.
        let lines = [
            "s.li s1, -9",
            "s.add s0, s1, s2",
            "s.sub s0, s1, s2",
            "s.mul s0, s1, s2",
            "s.loopend s3, 17",
            "s.syncdma q2",
            "s.halt",
            "v.add v1, v2, v3",
            "v.mul v1, v2, v3",
            "v.max v1, v2, v3",
            "v.relu v1, v2",
            "v.xf v1, v2",
            "v.red v1, v2",
            "v.ld v1, s2",
            "v.st v1, s2",
            "w.add v1, v2, v3",
            "m.push 2",
            "m.mm 1, 64",
            "m.pop 3",
            "x.t v1, v2",
            "x.p v1, v2",
            "d.start q1, cmem->vmem, 123456",
        ];
        for line in lines {
            let p = assemble(line, Generation::TpuV4i).unwrap();
            let text = format_bundle(&p.bundles()[0]);
            let q = assemble(&text, Generation::TpuV4i).unwrap();
            assert_eq!(p.bundles()[0], q.bundles()[0], "round trip of `{line}`");
        }
    }
}
