//! Program container, verifier and static statistics.

use std::fmt;

use tpu_arch::{Generation, MemLevel};

use crate::bundle::Bundle;
use crate::encoding::EncodingSpec;
use crate::inst::{DmaOp, MxuOp, ScalarOp, VectorOp, XposeOp};

/// A verified-or-verifiable sequence of VLIW bundles for one generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    generation: Generation,
    bundles: Vec<Bundle>,
}

/// Error found by [`Program::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A bundle uses a feature its generation cannot encode; wraps the
    /// underlying encoding error with the bundle index.
    IllegalBundle {
        /// Index of the offending bundle.
        index: usize,
        /// Why it is illegal.
        reason: crate::encoding::EncodeError,
    },
    /// A `LoopEnd` branches back past the start of the program.
    LoopOutOfRange {
        /// Index of the offending bundle.
        index: usize,
        /// Backward offset requested.
        offset: u16,
    },
    /// A `MatMul`/`PopResults` has no preceding `PushWeights` on that MXU.
    MxuNotLoaded {
        /// Index of the offending bundle.
        index: usize,
        /// The MXU that was used before loading weights.
        mxu: u8,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IllegalBundle { index, reason } => {
                write!(f, "bundle {index}: {reason}")
            }
            VerifyError::LoopOutOfRange { index, offset } => {
                write!(f, "bundle {index}: loop offset {offset} exits the program")
            }
            VerifyError::MxuNotLoaded { index, mxu } => {
                write!(f, "bundle {index}: mxu {mxu} used before PushWeights")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Static statistics of a program (slot occupancy, unit usage, traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of bundles.
    pub bundles: usize,
    /// Non-nop slot count across all bundles.
    pub occupied_slots: usize,
    /// Scalar operations.
    pub scalar_ops: usize,
    /// Vector operations (both slots).
    pub vector_ops: usize,
    /// Matrix operations.
    pub mxu_ops: usize,
    /// Transpose/permute operations.
    pub xpose_ops: usize,
    /// DMA starts.
    pub dma_ops: usize,
    /// Total bytes moved by DMA starts.
    pub dma_bytes: u64,
    /// Bytes DMAed to or from CMEM.
    pub cmem_bytes: u64,
}

impl ProgramStats {
    /// Mean occupied slots per bundle (VLIW packing efficiency).
    pub fn mean_occupancy(&self) -> f64 {
        if self.bundles == 0 {
            0.0
        } else {
            self.occupied_slots as f64 / self.bundles as f64
        }
    }
}

impl Program {
    /// Creates an empty program for a generation.
    pub fn new(generation: Generation) -> Program {
        Program {
            generation,
            bundles: Vec::new(),
        }
    }

    /// The target generation.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Appends a bundle.
    pub fn push(&mut self, bundle: Bundle) {
        self.bundles.push(bundle);
    }

    /// The bundles, in issue order.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the program has no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Verifies the program against its generation's constraints.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found: encoding-illegal bundles,
    /// loops that branch before bundle 0, or MXU use before weight load.
    pub fn verify(&self) -> Result<(), VerifyError> {
        let spec = EncodingSpec::for_generation(self.generation);
        let mut loaded = [false; 256];
        for (index, b) in self.bundles.iter().enumerate() {
            // Reuse the encoder's legality logic one bundle at a time.
            let mut scratch = Vec::new();
            if let Err(reason) = crate::encoding::encode_bundle_for_verify(b, &spec, &mut scratch) {
                return Err(VerifyError::IllegalBundle { index, reason });
            }
            if let ScalarOp::LoopEnd { offset, .. } = b.scalar {
                if offset as usize > index {
                    return Err(VerifyError::LoopOutOfRange { index, offset });
                }
            }
            match b.mxu {
                MxuOp::PushWeights { mxu } => loaded[mxu as usize] = true,
                MxuOp::MatMul { mxu, .. } | MxuOp::PopResults { mxu } => {
                    if !loaded[mxu as usize] {
                        return Err(VerifyError::MxuNotLoaded { index, mxu });
                    }
                }
                MxuOp::Nop => {}
            }
        }
        Ok(())
    }

    /// Computes static statistics.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats {
            bundles: self.bundles.len(),
            ..ProgramStats::default()
        };
        for b in &self.bundles {
            s.occupied_slots += b.occupancy();
            if b.scalar != ScalarOp::Nop {
                s.scalar_ops += 1;
            }
            if b.vector0 != VectorOp::Nop {
                s.vector_ops += 1;
            }
            if b.vector1 != VectorOp::Nop {
                s.vector_ops += 1;
            }
            if b.mxu != MxuOp::Nop {
                s.mxu_ops += 1;
            }
            if b.xpose != XposeOp::Nop {
                s.xpose_ops += 1;
            }
            if let DmaOp::Start { dir, bytes, .. } = b.dma {
                s.dma_ops += 1;
                s.dma_bytes += bytes as u64;
                if dir.src == MemLevel::Cmem || dir.dst == MemLevel::Cmem {
                    s.cmem_bytes += bytes as u64;
                }
            }
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {} program, {} bundles", self.generation, self.len())?;
        for b in &self.bundles {
            writeln!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{DmaDirection, SReg, VReg};

    #[test]
    fn empty_program_verifies() {
        let p = Program::new(Generation::TpuV4i);
        assert!(p.is_empty());
        p.verify().unwrap();
        assert_eq!(p.stats().mean_occupancy(), 0.0);
    }

    #[test]
    fn verify_catches_illegal_slot() {
        let mut p = Program::new(Generation::TpuV1);
        p.push(Bundle::new().xpose(XposeOp::Transpose {
            src: VReg(0),
            dst: VReg(1),
        }));
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::IllegalBundle { index: 0, .. }
        ));
    }

    #[test]
    fn verify_catches_wild_loop() {
        let mut p = Program::new(Generation::TpuV4i);
        p.push(Bundle::new().scalar(ScalarOp::LoopEnd {
            counter: SReg(0),
            offset: 5,
        }));
        assert_eq!(
            p.verify().unwrap_err(),
            VerifyError::LoopOutOfRange {
                index: 0,
                offset: 5
            }
        );
    }

    #[test]
    fn verify_catches_matmul_before_weights() {
        let mut p = Program::new(Generation::TpuV4i);
        p.push(Bundle::new().mxu(MxuOp::MatMul { mxu: 1, rows: 8 }));
        assert_eq!(
            p.verify().unwrap_err(),
            VerifyError::MxuNotLoaded { index: 0, mxu: 1 }
        );
        // With a preceding push it is fine.
        let mut q = Program::new(Generation::TpuV4i);
        q.push(Bundle::new().mxu(MxuOp::PushWeights { mxu: 1 }));
        q.push(Bundle::new().mxu(MxuOp::MatMul { mxu: 1, rows: 8 }));
        q.verify().unwrap();
    }

    #[test]
    fn stats_count_everything() {
        let mut p = Program::new(Generation::TpuV4i);
        p.push(
            Bundle::new()
                .scalar(ScalarOp::LoadImm {
                    dst: SReg(0),
                    imm: 3,
                })
                .vector(VectorOp::VRelu {
                    dst: VReg(0),
                    a: VReg(0),
                })
                .vector1(VectorOp::VRelu {
                    dst: VReg(1),
                    a: VReg(1),
                })
                .dma(DmaOp::Start {
                    queue: 0,
                    dir: DmaDirection::new(MemLevel::Hbm, MemLevel::Cmem),
                    bytes: 1000,
                }),
        );
        p.push(Bundle::new().mxu(MxuOp::PushWeights { mxu: 0 }));
        let s = p.stats();
        assert_eq!(s.bundles, 2);
        assert_eq!(s.scalar_ops, 1);
        assert_eq!(s.vector_ops, 2);
        assert_eq!(s.mxu_ops, 1);
        assert_eq!(s.dma_ops, 1);
        assert_eq!(s.dma_bytes, 1000);
        assert_eq!(s.cmem_bytes, 1000);
        assert!((s.mean_occupancy() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_bundles() {
        let mut p = Program::new(Generation::TpuV2);
        p.push(Bundle::new().scalar(ScalarOp::Halt));
        let s = format!("{p}");
        assert!(s.contains("TPUv2"));
        assert!(s.contains("halt"));
    }

    #[test]
    fn verify_error_display() {
        let e = VerifyError::MxuNotLoaded { index: 3, mxu: 2 };
        assert!(format!("{e}").contains("PushWeights"));
    }
}
