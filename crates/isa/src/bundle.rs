//! The VLIW bundle: one issue packet across all functional-unit slots.

use std::fmt;

use crate::inst::{DmaOp, MxuOp, ScalarOp, VectorOp, XposeOp};

/// One VLIW bundle.
///
/// Slots not used in a cycle hold `Nop`s; the compiler's job (and the
/// reason VLIW binary compatibility is so brittle) is to fill as many
/// slots as possible per cycle for a *specific* generation's unit mix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bundle {
    /// Scalar-unit slot.
    pub scalar: ScalarOp,
    /// First vector ALU slot.
    pub vector0: VectorOp,
    /// Second vector ALU slot (absent on TPUv1 — see
    /// [`crate::encoding::EncodingSpec`]).
    pub vector1: VectorOp,
    /// Matrix-unit slot.
    pub mxu: MxuOp,
    /// Transpose/permute slot (absent on TPUv1).
    pub xpose: XposeOp,
    /// DMA-queue slot.
    pub dma: DmaOp,
}

impl Default for Bundle {
    fn default() -> Bundle {
        Bundle::new()
    }
}

impl Bundle {
    /// An all-`Nop` bundle.
    pub fn new() -> Bundle {
        Bundle {
            scalar: ScalarOp::Nop,
            vector0: VectorOp::Nop,
            vector1: VectorOp::Nop,
            mxu: MxuOp::Nop,
            xpose: XposeOp::Nop,
            dma: DmaOp::Nop,
        }
    }

    /// Sets the scalar slot.
    pub fn scalar(mut self, op: ScalarOp) -> Bundle {
        self.scalar = op;
        self
    }

    /// Sets the first vector slot.
    pub fn vector(mut self, op: VectorOp) -> Bundle {
        self.vector0 = op;
        self
    }

    /// Sets the second vector slot.
    pub fn vector1(mut self, op: VectorOp) -> Bundle {
        self.vector1 = op;
        self
    }

    /// Sets the matrix slot.
    pub fn mxu(mut self, op: MxuOp) -> Bundle {
        self.mxu = op;
        self
    }

    /// Sets the transpose slot.
    pub fn xpose(mut self, op: XposeOp) -> Bundle {
        self.xpose = op;
        self
    }

    /// Sets the DMA slot.
    pub fn dma(mut self, op: DmaOp) -> Bundle {
        self.dma = op;
        self
    }

    /// Whether every slot is a `Nop`.
    pub fn is_nop(&self) -> bool {
        self == &Bundle::new()
    }

    /// Number of non-`Nop` slots (the bundle's static "fullness").
    pub fn occupancy(&self) -> usize {
        let mut n = 0;
        if self.scalar != ScalarOp::Nop {
            n += 1;
        }
        if self.vector0 != VectorOp::Nop {
            n += 1;
        }
        if self.vector1 != VectorOp::Nop {
            n += 1;
        }
        if self.mxu != MxuOp::Nop {
            n += 1;
        }
        if self.xpose != XposeOp::Nop {
            n += 1;
        }
        if self.dma != DmaOp::Nop {
            n += 1;
        }
        n
    }

    /// Total slot count of the bundle format.
    pub const SLOTS: usize = 6;
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::asm::format_bundle(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{SReg, VReg};

    #[test]
    fn new_is_all_nops() {
        let b = Bundle::new();
        assert!(b.is_nop());
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn builder_sets_slots() {
        let b = Bundle::new()
            .scalar(ScalarOp::Halt)
            .vector(VectorOp::VRelu {
                dst: VReg(0),
                a: VReg(1),
            })
            .mxu(MxuOp::MatMul { mxu: 0, rows: 128 });
        assert_eq!(b.occupancy(), 3);
        assert!(!b.is_nop());
        assert_eq!(b.scalar, ScalarOp::Halt);
    }

    #[test]
    fn occupancy_counts_all_six_slots() {
        let b = Bundle::new()
            .scalar(ScalarOp::LoadImm {
                dst: SReg(0),
                imm: 1,
            })
            .vector(VectorOp::VRelu {
                dst: VReg(0),
                a: VReg(0),
            })
            .vector1(VectorOp::VRelu {
                dst: VReg(1),
                a: VReg(1),
            })
            .mxu(MxuOp::PushWeights { mxu: 0 })
            .xpose(XposeOp::Transpose {
                src: VReg(0),
                dst: VReg(1),
            })
            .dma(DmaOp::Start {
                queue: 0,
                dir: crate::inst::DmaDirection::new(
                    tpu_arch::MemLevel::Hbm,
                    tpu_arch::MemLevel::Vmem,
                ),
                bytes: 64,
            });
        assert_eq!(b.occupancy(), Bundle::SLOTS);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Bundle::new()).is_empty());
    }
}
