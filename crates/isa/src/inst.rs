//! Operations for each VLIW slot.

use std::fmt;

use tpu_arch::MemLevel;

/// A scalar register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SReg(pub u8);

/// A vector register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u8);

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Scalar-unit operations (control flow, address math, synchronization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// No operation.
    Nop,
    /// `dst = imm`.
    LoadImm {
        /// Destination register.
        dst: SReg,
        /// Immediate value (sign-extended at execution).
        imm: i32,
    },
    /// `dst = a + b`.
    Add {
        /// Destination register.
        dst: SReg,
        /// First operand.
        a: SReg,
        /// Second operand.
        b: SReg,
    },
    /// `dst = a - b`.
    Sub {
        /// Destination register.
        dst: SReg,
        /// First operand.
        a: SReg,
        /// Second operand.
        b: SReg,
    },
    /// `dst = a * b`.
    Mul {
        /// Destination register.
        dst: SReg,
        /// First operand.
        a: SReg,
        /// Second operand.
        b: SReg,
    },
    /// Decrement `counter`; jump back `offset` bundles if nonzero.
    LoopEnd {
        /// Loop counter register.
        counter: SReg,
        /// Backward branch distance in bundles.
        offset: u16,
    },
    /// Block until the DMA queue `queue` drains.
    SyncDma {
        /// DMA queue index.
        queue: u8,
    },
    /// Stop the program.
    Halt,
}

/// Vector-unit operations (8 sublanes x 128 lanes on TPUv2+).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorOp {
    /// No operation.
    Nop,
    /// `dst = a + b`, elementwise.
    VAdd {
        /// Destination register.
        dst: VReg,
        /// First operand.
        a: VReg,
        /// Second operand.
        b: VReg,
    },
    /// `dst = a * b`, elementwise.
    VMul {
        /// Destination register.
        dst: VReg,
        /// First operand.
        a: VReg,
        /// Second operand.
        b: VReg,
    },
    /// `dst = max(a, b)`, elementwise.
    VMax {
        /// Destination register.
        dst: VReg,
        /// First operand.
        a: VReg,
        /// Second operand.
        b: VReg,
    },
    /// `dst = max(a, 0)` (fused ReLU).
    VRelu {
        /// Destination register.
        dst: VReg,
        /// Input register.
        a: VReg,
    },
    /// Transcendental approximation step (sigmoid/tanh/gelu sequences).
    VXf {
        /// Destination register.
        dst: VReg,
        /// Input register.
        a: VReg,
    },
    /// Load a vector from VMEM at an address held in a scalar register.
    VLoad {
        /// Destination register.
        dst: VReg,
        /// Scalar register holding the VMEM byte address.
        addr: SReg,
    },
    /// Store a vector to VMEM at an address held in a scalar register.
    VStore {
        /// Source register.
        src: VReg,
        /// Scalar register holding the VMEM byte address.
        addr: SReg,
    },
    /// Horizontal reduction (sum) of a vector into sublane 0.
    VReduce {
        /// Destination register.
        dst: VReg,
        /// Input register.
        a: VReg,
    },
}

/// Matrix-unit operations (systolic 128x128 array; 256x256 on TPUv1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxuOp {
    /// No operation.
    Nop,
    /// Push a tile of weights into the array (weight-stationary load).
    PushWeights {
        /// Which MXU (0..mxus_per_core).
        mxu: u8,
    },
    /// Stream activation vectors through; accumulate into the output FIFO.
    MatMul {
        /// Which MXU.
        mxu: u8,
        /// Number of activation rows streamed by this instruction.
        rows: u16,
    },
    /// Pop accumulated results into vector registers.
    PopResults {
        /// Which MXU.
        mxu: u8,
    },
}

/// Transpose/permute-unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XposeOp {
    /// No operation.
    Nop,
    /// Transpose a 128x128 tile in VMEM.
    Transpose {
        /// Source register (tile handle).
        src: VReg,
        /// Destination register (tile handle).
        dst: VReg,
    },
    /// Cross-lane permutation.
    Permute {
        /// Source register.
        src: VReg,
        /// Destination register.
        dst: VReg,
    },
}

/// Direction of a DMA transfer between two memory levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaDirection {
    /// Source level.
    pub src: MemLevel,
    /// Destination level.
    pub dst: MemLevel,
}

impl DmaDirection {
    /// Creates a direction, e.g. HBM→VMEM.
    pub fn new(src: MemLevel, dst: MemLevel) -> DmaDirection {
        DmaDirection { src, dst }
    }
}

impl fmt::Display for DmaDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// DMA-queue operations (asynchronous copies between memory levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaOp {
    /// No operation.
    Nop,
    /// Enqueue an asynchronous copy.
    Start {
        /// Queue index.
        queue: u8,
        /// Transfer direction.
        dir: DmaDirection,
        /// Transfer length in bytes.
        bytes: u32,
    },
}

impl ScalarOp {
    /// Registers read by this operation.
    pub fn reads(&self) -> Vec<SReg> {
        match *self {
            ScalarOp::Add { a, b, .. }
            | ScalarOp::Sub { a, b, .. }
            | ScalarOp::Mul { a, b, .. } => {
                vec![a, b]
            }
            ScalarOp::LoopEnd { counter, .. } => vec![counter],
            _ => Vec::new(),
        }
    }

    /// Register written by this operation, if any.
    pub fn writes(&self) -> Option<SReg> {
        match *self {
            ScalarOp::LoadImm { dst, .. }
            | ScalarOp::Add { dst, .. }
            | ScalarOp::Sub { dst, .. }
            | ScalarOp::Mul { dst, .. } => Some(dst),
            ScalarOp::LoopEnd { counter, .. } => Some(counter),
            _ => None,
        }
    }
}

impl VectorOp {
    /// Vector registers read by this operation.
    pub fn reads(&self) -> Vec<VReg> {
        match *self {
            VectorOp::VAdd { a, b, .. }
            | VectorOp::VMul { a, b, .. }
            | VectorOp::VMax { a, b, .. } => {
                vec![a, b]
            }
            VectorOp::VRelu { a, .. } | VectorOp::VXf { a, .. } | VectorOp::VReduce { a, .. } => {
                vec![a]
            }
            VectorOp::VStore { src, .. } => vec![src],
            _ => Vec::new(),
        }
    }

    /// Vector register written by this operation, if any.
    pub fn writes(&self) -> Option<VReg> {
        match *self {
            VectorOp::VAdd { dst, .. }
            | VectorOp::VMul { dst, .. }
            | VectorOp::VMax { dst, .. }
            | VectorOp::VRelu { dst, .. }
            | VectorOp::VXf { dst, .. }
            | VectorOp::VLoad { dst, .. }
            | VectorOp::VReduce { dst, .. } => Some(dst),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_display() {
        assert_eq!(format!("{}", SReg(3)), "s3");
        assert_eq!(format!("{}", VReg(17)), "v17");
    }

    #[test]
    fn scalar_def_use() {
        let op = ScalarOp::Add {
            dst: SReg(0),
            a: SReg(1),
            b: SReg(2),
        };
        assert_eq!(op.reads(), vec![SReg(1), SReg(2)]);
        assert_eq!(op.writes(), Some(SReg(0)));
        assert_eq!(ScalarOp::Halt.writes(), None);
        assert!(ScalarOp::Nop.reads().is_empty());
    }

    #[test]
    fn vector_def_use() {
        let op = VectorOp::VStore {
            src: VReg(4),
            addr: SReg(0),
        };
        assert_eq!(op.reads(), vec![VReg(4)]);
        assert_eq!(op.writes(), None);
        let load = VectorOp::VLoad {
            dst: VReg(9),
            addr: SReg(1),
        };
        assert_eq!(load.writes(), Some(VReg(9)));
    }

    #[test]
    fn dma_direction_display() {
        let d = DmaDirection::new(MemLevel::Hbm, MemLevel::Vmem);
        assert_eq!(format!("{d}"), "hbm->vmem");
    }
}
