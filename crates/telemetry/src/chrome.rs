//! Chrome-trace (Perfetto / `chrome://tracing`) JSON export and a
//! dependency-free schema validator.
//!
//! Spans are emitted as async begin/end pairs (`"ph":"b"` / `"ph":"e"`)
//! so overlapping spans on one track need no nesting discipline;
//! instants use `"ph":"i"` with thread scope. Each [`Track`] becomes a
//! named thread (a `thread_name` metadata record plus a stable `tid`),
//! and timestamps convert from simulated seconds to microseconds with
//! fixed three-decimal formatting so output is byte-deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{SpanPhase, TelemetryEvent, Track};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Export events as a Chrome-trace JSON object (`{"traceEvents": [...]}`).
pub fn chrome_trace_json<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TelemetryEvent>,
{
    let events: Vec<&TelemetryEvent> = events.into_iter().collect();
    // Stable track -> tid mapping, ordered by (name, index) so the
    // timeline reads top-to-bottom regardless of emission order.
    let mut tids: BTreeMap<Track, u64> = BTreeMap::new();
    for ev in &events {
        let next = tids.len() as u64 + 1;
        tids.entry(ev.track).or_insert(next);
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (track, tid) in &tids {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track.label())
            ),
            &mut out,
        );
    }
    for ev in &events {
        let tid = tids[&ev.track];
        let ts = format!("{:.3}", ev.t_s * 1e6);
        let name = escape(&ev.name);
        let cat = escape(ev.track.name);
        let line = match ev.phase {
            SpanPhase::Begin | SpanPhase::End => {
                let ph = if ev.phase == SpanPhase::Begin {
                    "b"
                } else {
                    "e"
                };
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\
                     \"id\":{},\"pid\":1,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"v\":{}}}}}",
                    ev.id, ev.arg
                )
            }
            SpanPhase::Instant => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"v\":{}}}}}",
                ev.arg
            ),
        };
        push(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Validate that `json` is a structurally sound Chrome trace: one
/// top-level object with a `traceEvents` array whose members each carry
/// the keys their `ph` requires (`name`/`pid`/`tid` always; `ts` for
/// non-metadata; `id` and `cat` for async span edges; `s` for
/// instants). Returns the number of trace records on success.
///
/// This is a deliberately lightweight scanner, not a JSON parser — it
/// splits top-level array objects by brace depth (string- and
/// escape-aware) and checks required key presence per record.
pub fn validate_chrome_json(json: &str) -> Result<usize, String> {
    let trimmed = json.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err("not a JSON object".to_owned());
    }
    let array_start = trimmed
        .find("\"traceEvents\"")
        .ok_or_else(|| "missing traceEvents key".to_owned())?;
    let rest = &trimmed[array_start..];
    let bracket = rest
        .find('[')
        .ok_or_else(|| "traceEvents is not an array".to_owned())?;
    let body = &rest[bracket + 1..];

    let mut records = 0usize;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    for (i, c) in body.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                if depth == 0 {
                    return Err("unbalanced braces in traceEvents".to_owned());
                }
                depth -= 1;
                if depth == 0 {
                    let obj = &body[obj_start.take().unwrap()..=i];
                    validate_record(obj, records)?;
                    records += 1;
                }
            }
            ']' if depth == 0 => return Ok(records),
            _ => {}
        }
    }
    Err("traceEvents array never closes".to_owned())
}

fn validate_record(obj: &str, index: usize) -> Result<(), String> {
    let has = |key: &str| obj.contains(&format!("\"{key}\""));
    let fail = |what: &str| Err(format!("record {index} missing {what}: {obj}"));
    for key in ["name", "ph", "pid", "tid"] {
        if !has(key) {
            return fail(key);
        }
    }
    let ph_pos = obj
        .find("\"ph\":\"")
        .ok_or_else(|| format!("record {index} has malformed ph: {obj}"))?;
    let ph = obj[ph_pos + 6..]
        .chars()
        .next()
        .ok_or_else(|| format!("record {index} has empty ph: {obj}"))?;
    match ph {
        'M' => Ok(()),
        'b' | 'e' => {
            if !has("ts") {
                return fail("ts");
            }
            if !has("id") {
                return fail("id (async span)");
            }
            if !has("cat") {
                return fail("cat (async span)");
            }
            Ok(())
        }
        'i' => {
            if !has("ts") {
                return fail("ts");
            }
            if !has("s") {
                return fail("s (instant scope)");
            }
            Ok(())
        }
        other => Err(format!("record {index} has unsupported ph '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, track: Track, phase: SpanPhase, name: &'static str, id: u64) -> TelemetryEvent {
        TelemetryEvent {
            t_s,
            track,
            phase,
            name: name.into(),
            id,
            arg: 7,
        }
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let fleet = Track {
            name: "fleet",
            index: 0,
        };
        let s1 = Track {
            name: "server",
            index: 1,
        };
        let evs = vec![
            ev(0.0, fleet, SpanPhase::Instant, "arrive", 0),
            ev(0.001, s1, SpanPhase::Begin, "batch", 1),
            ev(0.002, s1, SpanPhase::End, "batch", 1),
        ];
        let json = chrome_trace_json(&evs);
        // 2 thread_name metadata records + 3 events.
        assert_eq!(validate_chrome_json(&json), Ok(5));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"server1\""));
        assert!(json.contains("\"ts\":1000.000"));
    }

    #[test]
    fn validator_rejects_garbage_and_missing_keys() {
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"foo\":1}").is_err());
        // Async span edge without an id.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"b\",\
                    \"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate_chrome_json(bad).unwrap_err().contains("id"));
        // Instant without scope.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\
                    \"pid\":1,\"tid\":1,\"ts\":0}]}";
        assert!(validate_chrome_json(bad).unwrap_err().contains("s ("));
        // Unterminated array.
        let bad = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"M\",\"pid\":1,\"tid\":1}";
        assert!(validate_chrome_json(bad).is_err());
    }

    #[test]
    fn escapes_quotes_and_control_chars() {
        let t = Track {
            name: "fleet",
            index: 0,
        };
        let e = TelemetryEvent {
            t_s: 0.0,
            track: t,
            phase: SpanPhase::Instant,
            name: "quo\"te\n".to_owned().into(),
            id: 0,
            arg: 0,
        };
        let json = chrome_trace_json([&e]);
        assert!(json.contains("quo\\\"te\\u000a"));
        assert_eq!(validate_chrome_json(&json), Ok(2));
    }

    #[test]
    fn empty_event_stream_is_valid() {
        let json = chrome_trace_json(std::iter::empty());
        assert_eq!(validate_chrome_json(&json), Ok(0));
    }
}
