//! Plain-text timeline dump: one line per event, fixed-width columns.

use std::fmt::Write as _;

use crate::event::{SpanPhase, TelemetryEvent};

/// Render events as an aligned plain-text timeline, one line per event
/// in stream order: simulated milliseconds, track, phase marker
/// (`>` begin, `<` end, `.` instant), name, id, and payload.
pub fn render_text<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TelemetryEvent>,
{
    let mut out = String::new();
    for ev in events {
        let marker = match ev.phase {
            SpanPhase::Begin => '>',
            SpanPhase::End => '<',
            SpanPhase::Instant => '.',
        };
        let _ = writeln!(
            out,
            "{:>12.6} ms  {:<10} {} {:<18} id={:<8} arg={}",
            ev.t_s * 1e3,
            ev.track.label(),
            marker,
            ev.name,
            ev.id,
            ev.arg
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    #[test]
    fn renders_one_line_per_event() {
        let t = Track {
            name: "server",
            index: 2,
        };
        let evs = vec![
            TelemetryEvent {
                t_s: 0.00105,
                track: t,
                phase: SpanPhase::Begin,
                name: "batch".into(),
                id: 3,
                arg: 8,
            },
            TelemetryEvent {
                t_s: 0.002,
                track: t,
                phase: SpanPhase::End,
                name: "batch".into(),
                id: 3,
                arg: 8,
            },
        ];
        let text = render_text(&evs);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("server2"));
        assert!(text.contains("> batch"));
        assert!(text.contains("< batch"));
        assert!(text.contains("1.050000 ms"));
    }

    #[test]
    fn empty_stream_renders_empty() {
        assert!(render_text(std::iter::empty()).is_empty());
    }
}
