//! The flight recorder: a bounded event ring buffer plus a
//! counters/gauges registry and a wall-clock profile table.

use std::collections::{BTreeMap, VecDeque};

use crate::event::{SpanPhase, TelemetryEvent};

/// Default flight-recorder capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Per-kind wall-clock attribution accumulated via
/// [`Recorder::profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Occurrences attributed.
    pub count: u64,
    /// Total host nanoseconds attributed.
    pub total_ns: u64,
}

impl ProfileEntry {
    /// Mean host nanoseconds per occurrence.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A bounded flight recorder with a metrics registry.
///
/// Events go into a ring buffer that drops the **oldest** record once
/// `capacity` is reached (the most recent window is what post-mortems
/// want), while the counter registry keeps exact totals per event name
/// regardless of ring evictions — reconciliation checks use counters,
/// not the (possibly truncated) ring. Counter keys are the event name
/// for instants and `name.begin` / `name.end` for span edges, so span
/// balance is checkable from counters alone. All registries iterate in
/// deterministic (lexicographic) order.
#[derive(Debug, Clone)]
pub struct Recorder {
    capacity: usize,
    ring: VecDeque<TelemetryEvent>,
    dropped: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    profiling: bool,
    profile: BTreeMap<&'static str, ProfileEntry>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder whose ring holds at most `capacity` events
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            profiling: false,
            profile: BTreeMap::new(),
        }
    }

    /// Record one event: bump its counter and append it to the ring,
    /// evicting the oldest record if the ring is full.
    pub fn record(&mut self, ev: TelemetryEvent) {
        let key = match ev.phase {
            SpanPhase::Begin => format!("{}.begin", ev.name),
            SpanPhase::End => format!("{}.end", ev.name),
            SpanPhase::Instant => ev.name.to_string(),
        };
        *self.counters.entry(key).or_insert(0) += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Add `n` to a named counter without recording an event.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Set a named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// The exact total for `name` (0 if never seen).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in lexicographic order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges in lexicographic order.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// The retained event window, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.ring.iter()
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Turn wall-clock profiling on or off. Off by default: profile
    /// numbers are host-time and therefore nondeterministic — keep them
    /// out of anything that must be byte-reproducible.
    pub fn enable_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether wall-clock profiling is on.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Attribute `nanos` of host time to `kind`.
    pub fn profile(&mut self, kind: &'static str, nanos: u64) {
        let e = self.profile.entry(kind).or_default();
        e.count += 1;
        e.total_ns += nanos;
    }

    /// The wall-clock profile, keyed by kind, in lexicographic order.
    pub fn profile_entries(&self) -> &BTreeMap<&'static str, ProfileEntry> {
        &self.profile
    }

    /// Render the profile as an aligned text table, most expensive
    /// kind first (host time — for humans, not for golden outputs).
    pub fn profile_report(&self) -> String {
        let mut rows: Vec<(&&str, &ProfileEntry)> = self.profile.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let mut out = String::from("event kind        count    total ms   mean ns\n");
        for (kind, e) in rows {
            out.push_str(&format!(
                "{:<16} {:>8} {:>11.3} {:>9.1}\n",
                kind,
                e.count,
                e.total_ns as f64 / 1e6,
                e.mean_ns()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    fn ev(t_s: f64, phase: SpanPhase, name: &'static str) -> TelemetryEvent {
        TelemetryEvent {
            t_s,
            track: Track {
                name: "fleet",
                index: 0,
            },
            phase,
            name: name.into(),
            id: 0,
            arg: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let mut r = Recorder::with_capacity(2);
        r.record(ev(0.0, SpanPhase::Instant, "a"));
        r.record(ev(1.0, SpanPhase::Instant, "b"));
        r.record(ev(2.0, SpanPhase::Instant, "c"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let names: Vec<_> = r.events().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, ["b", "c"]);
        // Counters survive eviction.
        assert_eq!(r.counter("a"), 1);
    }

    #[test]
    fn counters_key_span_phases_separately() {
        let mut r = Recorder::new();
        r.record(ev(0.0, SpanPhase::Begin, "queued"));
        r.record(ev(1.0, SpanPhase::End, "queued"));
        r.record(ev(1.0, SpanPhase::Instant, "arrive"));
        assert_eq!(r.counter("queued.begin"), 1);
        assert_eq!(r.counter("queued.end"), 1);
        assert_eq!(r.counter("arrive"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_and_manual_counters() {
        let mut r = Recorder::new();
        r.add_counter("events_processed", 41);
        r.add_counter("events_processed", 1);
        r.set_gauge("availability", 0.5);
        r.set_gauge("availability", 0.997);
        assert_eq!(r.counter("events_processed"), 42);
        assert_eq!(r.gauges()["availability"], 0.997);
    }

    #[test]
    fn profile_accumulates_and_reports() {
        let mut r = Recorder::new();
        assert!(!r.profiling());
        r.enable_profiling(true);
        r.profile("done", 100);
        r.profile("done", 300);
        r.profile("arrival", 50);
        let done = r.profile_entries()["done"];
        assert_eq!(done.count, 2);
        assert_eq!(done.total_ns, 400);
        assert!((done.mean_ns() - 200.0).abs() < 1e-12);
        let report = r.profile_report();
        // Sorted by total time: done before arrival.
        assert!(report.find("done").unwrap() < report.find("arrival").unwrap());
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = Recorder::with_capacity(0);
        r.record(ev(0.0, SpanPhase::Instant, "a"));
        r.record(ev(1.0, SpanPhase::Instant, "b"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.capacity(), 1);
    }
}
