//! The telemetry event model: timestamped span/instant records on tracks.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// A horizontal lane in the timeline: a named family plus an index
/// (e.g. `{"server", 2}` for the third replica, `{"mxu", 0}` for the
/// first MXU unit). Serving fleets use the `"fleet"` track for
/// request-lifecycle instants and one `"server"` track per replica;
/// the roofline simulator maps each `(resource, unit)` pair to a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Track family name.
    pub name: &'static str,
    /// Unit index within the family.
    pub index: u32,
}

impl Track {
    /// Render as `name` (index 0 in a one-lane family reads cleaner
    /// with the bare name) or `name<index>`.
    pub fn label(&self) -> String {
        if self.index == 0 && self.name == "fleet" {
            self.name.to_owned()
        } else {
            format!("{}{}", self.name, self.index)
        }
    }
}

/// Whether an event opens a span, closes one, or marks a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span start; must be paired with an [`SpanPhase::End`] carrying
    /// the same `(track, name, id)`.
    Begin,
    /// Span end.
    End,
    /// A point event with no duration.
    Instant,
}

/// One telemetry record. Timestamps are **simulated** seconds; `id`
/// disambiguates concurrent spans of the same name on the same track;
/// `arg` is a free payload (batch size, request index, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Timeline lane.
    pub track: Track,
    /// Begin / End / Instant.
    pub phase: SpanPhase,
    /// Event name (static in hot paths; owned for ad-hoc labels).
    pub name: Cow<'static, str>,
    /// Span pairing id (0 for instants that don't need one).
    pub id: u64,
    /// Free payload.
    pub arg: i64,
}

/// Check that every [`SpanPhase::Begin`] has exactly one matching
/// [`SpanPhase::End`] (same track, name, and id), no span ends before
/// it begins, and nothing is left open. Returns the number of balanced
/// spans on success.
pub fn span_balance<'a, I>(events: I) -> Result<usize, String>
where
    I: IntoIterator<Item = &'a TelemetryEvent>,
{
    let mut open: BTreeMap<(Track, String, u64), u64> = BTreeMap::new();
    let mut balanced = 0usize;
    for ev in events {
        let key = || (ev.track, ev.name.to_string(), ev.id);
        match ev.phase {
            SpanPhase::Begin => *open.entry(key()).or_insert(0) += 1,
            SpanPhase::End => {
                let k = key();
                match open.get_mut(&k) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        if *n == 0 {
                            open.remove(&k);
                        }
                        balanced += 1;
                    }
                    _ => {
                        return Err(format!(
                            "end without begin: {} id={} on {}",
                            ev.name,
                            ev.id,
                            ev.track.label()
                        ))
                    }
                }
            }
            SpanPhase::Instant => {}
        }
    }
    if let Some(((track, name, id), _)) = open.iter().next() {
        return Err(format!(
            "unclosed span: {name} id={id} on {} ({} open total)",
            track.label(),
            open.values().sum::<u64>()
        ));
    }
    Ok(balanced)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, phase: SpanPhase, name: &'static str, id: u64) -> TelemetryEvent {
        TelemetryEvent {
            t_s,
            track: Track {
                name: "fleet",
                index: 0,
            },
            phase,
            name: name.into(),
            id,
            arg: 0,
        }
    }

    #[test]
    fn balanced_spans_pass() {
        let evs = vec![
            ev(0.0, SpanPhase::Begin, "a", 1),
            ev(0.5, SpanPhase::Instant, "tick", 0),
            ev(1.0, SpanPhase::Begin, "a", 2),
            ev(2.0, SpanPhase::End, "a", 1),
            ev(3.0, SpanPhase::End, "a", 2),
        ];
        assert_eq!(span_balance(&evs), Ok(2));
    }

    #[test]
    fn unclosed_span_fails() {
        let evs = vec![ev(0.0, SpanPhase::Begin, "a", 1)];
        assert!(span_balance(&evs).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn end_without_begin_fails() {
        let evs = vec![ev(0.0, SpanPhase::End, "a", 1)];
        assert!(span_balance(&evs)
            .unwrap_err()
            .contains("end without begin"));
    }

    #[test]
    fn id_disambiguates_same_name() {
        // Same name, different ids: ending id 2 must not close id 1.
        let evs = vec![
            ev(0.0, SpanPhase::Begin, "a", 1),
            ev(1.0, SpanPhase::End, "a", 2),
        ];
        assert!(span_balance(&evs).is_err());
    }

    #[test]
    fn track_labels() {
        assert_eq!(
            Track {
                name: "fleet",
                index: 0
            }
            .label(),
            "fleet"
        );
        assert_eq!(
            Track {
                name: "server",
                index: 3
            }
            .label(),
            "server3"
        );
    }
}
