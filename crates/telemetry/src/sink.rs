//! The zero-cost sink trait instrumented code is generic over.

use crate::event::TelemetryEvent;
use crate::recorder::Recorder;

/// Receiver for telemetry emitted by instrumented code.
///
/// The associated `ENABLED` constant is the zero-cost switch: emission
/// sites guard with `if S::ENABLED { ... }`, which the compiler folds
/// away entirely when the sink is [`NullSink`]. Implementors with
/// `ENABLED = true` receive every event; [`profile`](EventSink::profile)
/// additionally receives host-nanosecond attributions when
/// [`profiling`](EventSink::profiling) returns true (callers are
/// expected to skip the timing work itself otherwise).
pub trait EventSink {
    /// Compile-time switch for all instrumentation.
    const ENABLED: bool;

    /// Record one event. Hot-path implementations should be cheap and
    /// must never influence the caller's control flow.
    fn record(&mut self, ev: TelemetryEvent);

    /// Whether the caller should measure and report wall-clock
    /// attribution via [`profile`](EventSink::profile).
    fn profiling(&self) -> bool {
        false
    }

    /// Attribute `nanos` of host time to `kind` (e.g. a DES event type).
    fn profile(&mut self, kind: &'static str, nanos: u64);
}

/// The disabled sink: every method is an inlined no-op and
/// `ENABLED = false` compiles all instrumentation out.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: TelemetryEvent) {}

    #[inline(always)]
    fn profile(&mut self, _kind: &'static str, _nanos: u64) {}
}

impl EventSink for &mut Recorder {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        Recorder::record(self, ev);
    }

    fn profiling(&self) -> bool {
        Recorder::profiling(self)
    }

    #[inline]
    fn profile(&mut self, kind: &'static str, nanos: u64) {
        Recorder::profile(self, kind, nanos);
    }
}
