//! Unified observability for the TPU simulators: a zero-cost-when-disabled
//! event sink, a bounded flight-recorder ring buffer with a counters/gauges
//! registry, a Chrome-trace (Perfetto JSON) exporter, a plain-text timeline
//! dump, and a self-instrumenting DES profiler.
//!
//! # Design
//!
//! Instrumented code is generic over [`EventSink`], whose associated
//! `const ENABLED: bool` lets every emission site be guarded by
//! `if S::ENABLED { ... }`. With [`NullSink`] (the default for all
//! untraced entry points) the guard is a compile-time `false` and the
//! instrumentation monomorphizes to nothing — the traced and untraced
//! engines share one source but the untraced one pays zero overhead.
//!
//! # Determinism
//!
//! Telemetry is **derived from, never an input to**, simulation state:
//! sinks only observe simulated timestamps and identifiers, so a run with
//! a [`Recorder`] attached produces a bit-identical report to one without,
//! and the recorded event stream itself is a pure function of the
//! simulation config and seed. The one exception is wall-clock profiling
//! ([`Recorder::enable_profiling`]), which attributes *host* nanoseconds
//! to simulated event types — those numbers are for humans and never
//! feed back into any simulated quantity.

mod chrome;
mod event;
mod recorder;
mod sink;
mod text;

pub use chrome::{chrome_trace_json, validate_chrome_json};
pub use event::{span_balance, SpanPhase, TelemetryEvent, Track};
pub use recorder::{ProfileEntry, Recorder};
pub use sink::{EventSink, NullSink};
pub use text::render_text;
