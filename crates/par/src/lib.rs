//! A dependency-free scoped thread pool for the simulators.
//!
//! The workspace's sweeps — multi-seed fault trials, the 26-experiment
//! harness, overload/chaos scans — are embarrassingly parallel: every
//! trial is a pure function of its config and seed. This crate provides
//! exactly the fan-out primitives those sweeps need, built on
//! [`std::thread::scope`] only (the build environment has no crates.io
//! access, so no rayon):
//!
//! - [`par_map`]: map a function over a slice on worker threads,
//!   returning results **in input order** regardless of which worker ran
//!   which item — the property that makes parallel sweeps byte-identical
//!   to sequential ones;
//! - [`par_chunks`]: the same over contiguous chunks;
//! - [`scope`]: re-exported [`std::thread::scope`] for irregular fan-out;
//! - [`num_threads`]: the worker count, overridable with the
//!   `TPU_SIM_THREADS` environment variable (`TPU_SIM_THREADS=1`
//!   degrades every primitive to a plain sequential loop).
//!
//! # Panic propagation
//!
//! A panic on a worker thread is **re-raised on the caller** once every
//! other worker has been joined — never swallowed, never a deadlock.
//! This falls out of [`std::thread::scope`]'s contract: the scope joins
//! all spawned threads before returning, and [`par_map`] resumes the
//! first worker's unwind payload.
//!
//! # Determinism
//!
//! Work is distributed dynamically (an atomic cursor), so *which thread*
//! computes an item is racy — but results are reassembled by input
//! index, so the returned `Vec` is identical to the sequential map
//! whenever `f` itself is pure. Every simulator in this workspace is a
//! pure function of its config and seed, so parallel sweeps replay
//! bit-identically.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Re-export of [`std::thread::scope`]: spawn borrowing threads that are
/// all joined (with panic propagation) before the call returns.
pub use std::thread::scope;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "TPU_SIM_THREADS";

/// Number of worker threads the primitives will use: the
/// `TPU_SIM_THREADS` environment variable if set to a positive integer,
/// else [`std::thread::available_parallelism`] (1 if unknown).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`num_threads`] workers, returning
/// results in input order.
///
/// Sequential fallback (no threads spawned) when the pool is 1 wide or
/// the input has at most one item. See the crate docs for the panic and
/// determinism contracts.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker cap (still honoring
/// `TPU_SIM_THREADS` as an upper bound via the caller passing
/// `num_threads()`-derived values; `threads <= 1` runs sequentially).
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    // Dynamic scheduling: workers pull the next unclaimed index from a
    // shared cursor (items can have wildly different costs — a chaos
    // sweep point vs a table lookup), collecting `(index, value)` pairs.
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let parts: Vec<Vec<(usize, U)>> = scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        // Join in spawn order; a worker panic is re-raised here, after
        // `scope` has joined the remaining workers (no deadlock, no
        // orphaned threads).
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Reassemble in input order: every index was claimed exactly once.
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for part in parts {
        for (i, v) in part {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

/// Maps `f` over contiguous chunks of `items` (the last chunk may be
/// short), in parallel, returning per-chunk results in chunk order.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    assert!(chunk_size > 0, "par_chunks needs a positive chunk size");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map(&chunks, |c| f(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_with(threads, &items, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map_with(8, &empty, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map_with(8, &[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_with(4, &items, |&i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        // The satellite contract: a panicking worker re-raises on the
        // caller instead of deadlocking or being swallowed.
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_with(4, &items, |&i| {
                if i == 33 {
                    panic!("worker exploded on purpose");
                }
                i
            })
        });
        let payload = result.expect_err("the panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let sums = par_chunks(&items, 10, |c| c.iter().sum::<u64>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        // First chunk is 0..10, last is 100..103.
        assert_eq!(sums[0], 45);
        assert_eq!(sums[10], 100 + 101 + 102);
    }

    #[test]
    #[should_panic(expected = "positive chunk size")]
    fn par_chunks_rejects_zero() {
        par_chunks(&[1, 2, 3], 0, |c| c.len());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn env_override_caps_the_pool() {
        // Other tests in this binary only assert num_threads() >= 1, so
        // briefly setting the override cannot break them.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(num_threads() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(num_threads() >= 1);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn scope_is_reexported() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for i in 0..4u64 {
                let total = &total;
                s.spawn(move || total.fetch_add(i, Ordering::Relaxed));
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }
}
