//! High-level facade over the TPUv4i reproduction workspace.
//!
//! Everything the paper's evaluation does is a composition of the same
//! few moves: *build* a production app's graph, *compile* it for a chip
//! generation, *simulate* the compiled plan, and fold the results into
//! serving or cost models. This crate packages those moves:
//!
//! - [`run_app`] / [`AppRun`]: one app on one chip at one batch size;
//! - [`suite`]: all eight production apps on one chip;
//! - [`slo_operating_point`]: the SLO-derived batch and the simulated
//!   latency at it (the operating point the paper's comparisons use);
//! - [`prelude`]: the workspace's main types in one import.
//!
//! # Example
//!
//! ```
//! use tpu_core::prelude::*;
//!
//! let chip = catalog::tpu_v4i();
//! let run = tpu_core::run_app(&zoo::mlp0(), &chip, 16, &CompilerOptions::default()).unwrap();
//! assert!(run.report.seconds > 0.0);
//! println!("MLP0 @16 on {}: {:.3} ms", chip.name, run.report.seconds * 1e3);
//! ```

pub mod multichip;

use std::fmt;

use tpu_arch::ChipConfig;
use tpu_hlo::{compile, CompileError, CompilerOptions, Executable};
use tpu_serving::des::{
    simulate_fleet, simulate_fleet_recorded, simulate_fleet_with_faults, ConfigError, FleetConfig,
    FleetPolicy, RetryPolicy, ServingConfig, ServingReport,
};
use tpu_serving::faults::FaultPlan;
use tpu_serving::latency::{LatencyError, LatencyModel};
use tpu_serving::slo;
use tpu_sim::{SimError, SimReport, Simulator};
use tpu_telemetry::Recorder;
use tpu_workloads::{production_apps, App};

/// Everything a typical caller needs, one import away.
pub mod prelude {
    pub use tpu_arch::{catalog, ChipConfig, CoolingTech, Generation, MemLevel, ProcessNode};
    pub use tpu_hlo::{compile, CompilerOptions, Executable, Graph, OptLevel};
    pub use tpu_numerics::{Bf16, DType};
    pub use tpu_serving::faults::{
        FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault,
    };
    pub use tpu_serving::latency::LatencyModel;
    pub use tpu_sim::{SimReport, Simulator, StepPlan};
    pub use tpu_tco::{TcoModel, TcoReport};
    pub use tpu_workloads::{production_apps, zoo, App, AppClass};
}

/// Error from the high-level pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Graph construction or compilation failed.
    Compile(String),
    /// Simulation failed.
    Sim(String),
    /// Latency profiling failed.
    Latency(String),
    /// The serving simulation rejected its configuration.
    Serving(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "compile: {e}"),
            CoreError::Sim(e) => write!(f, "simulate: {e}"),
            CoreError::Latency(e) => write!(f, "profile: {e}"),
            CoreError::Serving(e) => write!(f, "serving: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CompileError> for CoreError {
    fn from(e: CompileError) -> CoreError {
        CoreError::Compile(e.to_string())
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> CoreError {
        CoreError::Sim(e.to_string())
    }
}

impl From<LatencyError> for CoreError {
    fn from(e: LatencyError) -> CoreError {
        CoreError::Latency(e.to_string())
    }
}

impl From<ConfigError> for CoreError {
    fn from(e: ConfigError) -> CoreError {
        CoreError::Serving(e.to_string())
    }
}

/// The result of compiling and simulating one app on one chip.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// App name.
    pub app: String,
    /// Batch size simulated.
    pub batch: u64,
    /// The compiled artifact.
    pub executable: Executable,
    /// The simulation report.
    pub report: SimReport,
}

impl AppRun {
    /// Inferences per second at this batch size.
    pub fn throughput_rps(&self) -> f64 {
        if self.report.seconds <= 0.0 {
            0.0
        } else {
            self.batch as f64 / self.report.seconds
        }
    }

    /// Inferences per joule (the E5 efficiency axis).
    pub fn inferences_per_joule(&self) -> f64 {
        if self.report.energy_joules <= 0.0 {
            0.0
        } else {
            self.batch as f64 / self.report.energy_joules
        }
    }
}

/// Compiles and simulates one app at a batch size.
///
/// # Errors
///
/// Propagates compile and simulation errors as [`CoreError`].
pub fn run_app(
    app: &App,
    chip: &ChipConfig,
    batch: u64,
    options: &CompilerOptions,
) -> Result<AppRun, CoreError> {
    let graph = app.build(batch).map_err(CompileError::Graph)?;
    let executable = compile(&graph, chip, options)?;
    let report = Simulator::new(chip.clone()).run(executable.plan())?;
    Ok(AppRun {
        app: app.spec.name.to_owned(),
        batch,
        executable,
        report,
    })
}

/// Runs all eight production apps on a chip at one batch size.
///
/// # Errors
///
/// Fails on the first app that cannot compile or simulate.
pub fn suite(
    chip: &ChipConfig,
    batch: u64,
    options: &CompilerOptions,
) -> Result<Vec<AppRun>, CoreError> {
    production_apps()
        .iter()
        .map(|app| run_app(app, chip, batch, options))
        .collect()
}

/// An app's SLO-derived operating point on a chip (Lesson 10).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// App name.
    pub app: String,
    /// p99 SLO, seconds.
    pub slo_s: f64,
    /// Largest batch whose service latency meets the SLO (1 if even
    /// batch 1 misses — serve degraded rather than not at all).
    pub batch: u64,
    /// Whether even batch 1 met the SLO.
    pub feasible: bool,
    /// Service latency at the chosen batch, seconds.
    pub latency_s: f64,
    /// Ideal throughput at the chosen batch, inferences/s.
    pub throughput_rps: f64,
}

/// Profiles an app and finds its largest SLO-meeting batch on a chip.
///
/// # Errors
///
/// Propagates profiling errors as [`CoreError`].
pub fn slo_operating_point(
    app: &App,
    chip: &ChipConfig,
    options: &CompilerOptions,
) -> Result<OperatingPoint, CoreError> {
    profiled_operating_point(app, chip, options).map(|(_, op)| op)
}

fn profiled_operating_point(
    app: &App,
    chip: &ChipConfig,
    options: &CompilerOptions,
) -> Result<(LatencyModel, OperatingPoint), CoreError> {
    let model = LatencyModel::profile(app, chip, options, &tpu_serving::latency::DEFAULT_BATCHES)?;
    let slo_s = app.spec.slo_p99_ms / 1e3;
    let found = slo::max_batch_within_slo(&model, slo_s, 1024);
    let batch = found.unwrap_or(1);
    let op = OperatingPoint {
        app: app.spec.name.to_owned(),
        slo_s,
        batch,
        feasible: found.is_some(),
        latency_s: model.latency(batch),
        throughput_rps: model.throughput(batch),
    };
    Ok((model, op))
}

/// The arrival seed the one-shot sweep entry points
/// ([`slo_operating_point_under_overload`], [`chaos_operating_point`])
/// use, kept for reproducibility of previously published tables.
pub const DEFAULT_SWEEP_SEED: u64 = 17;

/// An app profiled once on a chip, ready to evaluate many serving
/// scenarios against.
///
/// Profiling (compile + cycle-level simulation across the batch ladder)
/// costs orders of magnitude more than one DES run, and the one-shot
/// entry points re-profile on every call. Sweeps and multi-seed
/// replications should profile once via [`ProfiledApp::new`] and then
/// evaluate [`ProfiledApp::overload_point`] /
/// [`ProfiledApp::chaos_point`] per grid point and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledApp {
    model: LatencyModel,
    op: OperatingPoint,
    /// The batch cap served at under overload policies: largest batch
    /// whose service latency fits *half* the SLO, leaving the other
    /// half as queueing headroom.
    serving_batch: u64,
}

impl ProfiledApp {
    /// Profiles `app` on `chip` and fixes its operating point.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors as [`CoreError`].
    pub fn new(
        app: &App,
        chip: &ChipConfig,
        options: &CompilerOptions,
    ) -> Result<ProfiledApp, CoreError> {
        let (model, op) = profiled_operating_point(app, chip, options)?;
        let serving_batch = slo::max_batch_within_slo(&model, op.slo_s * 0.5, 1024).unwrap_or(1);
        Ok(ProfiledApp {
            model,
            op,
            serving_batch,
        })
    }

    /// The profiled latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.model
    }

    /// The app's SLO operating point on the profiled chip.
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.op
    }

    /// The batch cap overload/chaos scenarios serve at (half-SLO
    /// headroom rule).
    pub fn serving_batch(&self) -> u64 {
        self.serving_batch
    }

    /// One server's ideal capacity at the serving batch, requests/s —
    /// the unit `load_factor` arguments are expressed in.
    pub fn capacity_rps(&self) -> f64 {
        self.model.throughput(self.serving_batch)
    }

    /// The protected overload policy (deadline + expiry shedding +
    /// capped queue + one retry), with the queue cap scaled to `servers`
    /// replicas.
    fn protected_policy(&self, servers: usize) -> FleetPolicy {
        let op = &self.op;
        // A queued request is shed once the service time of a full batch
        // no longer fits its remaining budget; admission rejections get
        // one retry after a short backoff. The queue is capped at the
        // depth that can drain within the budget — anything deeper would
        // expire anyway, so reject it at the door instead.
        let queue_budget = (op.slo_s - self.model.latency(self.serving_batch)).max(op.slo_s * 0.05);
        let drainable = (self.capacity_rps() * queue_budget).ceil() as usize;
        FleetPolicy {
            deadline_s: Some(op.slo_s),
            shed_expired: true,
            queue_budget_s: Some(queue_budget),
            queue_cap: Some(drainable.max(self.serving_batch as usize) * servers.max(1)),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: op.slo_s * 0.1,
                backoff_mult: 2.0,
            },
        }
    }

    /// [`slo_operating_point_under_overload`] for this profile, with an
    /// explicit arrival `seed` (replications vary the seed to get
    /// independent arrival draws over identical configs).
    ///
    /// # Errors
    ///
    /// Propagates serving-config rejections as [`CoreError`].
    pub fn overload_point(
        &self,
        load_factor: f64,
        shedding: bool,
        requests: usize,
        seed: u64,
    ) -> Result<OverloadPoint, CoreError> {
        let op = &self.op;
        let offered_rps = load_factor * self.capacity_rps();
        let base = ServingConfig {
            arrival_rate_rps: offered_rps,
            max_batch: self.serving_batch,
            batch_timeout_s: op.slo_s * 0.1,
            requests,
            seed,
        };
        let policy = if shedding {
            self.protected_policy(1)
        } else {
            // The deadline still defines goodput; nothing is ever shed.
            FleetPolicy {
                deadline_s: Some(op.slo_s),
                ..FleetPolicy::default()
            }
        };
        let report = simulate_fleet(
            &self.model,
            &FleetConfig::new(base.with_servers(1)).with_policy(policy),
        )?;
        Ok(OverloadPoint {
            operating_point: op.clone(),
            serving_batch: self.serving_batch,
            load_factor,
            offered_rps,
            shedding,
            report,
        })
    }

    /// [`chaos_operating_point`] for this profile, with an explicit
    /// arrival `seed`.
    ///
    /// # Errors
    ///
    /// Propagates serving/fault-plan config rejections as [`CoreError`].
    pub fn chaos_point(
        &self,
        servers: usize,
        load_factor: f64,
        plan: &FaultPlan,
        requests: usize,
        seed: u64,
    ) -> Result<ChaosPoint, CoreError> {
        let (offered_rps, fleet) = self.chaos_fleet_config(servers, load_factor, requests, seed);
        let report = simulate_fleet_with_faults(&self.model, &fleet, plan)?;
        Ok(self.chaos_point_from(servers, load_factor, offered_rps, plan, report))
    }

    /// [`ProfiledApp::chaos_point`] with the full request lifecycle
    /// recorded into `recorder` (spans, instants, and exact per-event
    /// counters — see
    /// [`simulate_fleet_recorded`](tpu_serving::simulate_fleet_recorded)).
    /// The returned point is bit-identical to [`ProfiledApp::chaos_point`]
    /// at the same arguments: telemetry never feeds back into the run.
    ///
    /// # Errors
    ///
    /// Propagates serving/fault-plan config rejections as [`CoreError`].
    pub fn chaos_point_recorded(
        &self,
        servers: usize,
        load_factor: f64,
        plan: &FaultPlan,
        requests: usize,
        seed: u64,
        recorder: &mut Recorder,
    ) -> Result<ChaosPoint, CoreError> {
        let (offered_rps, fleet) = self.chaos_fleet_config(servers, load_factor, requests, seed);
        let report = simulate_fleet_recorded(&self.model, &fleet, plan, recorder)?;
        Ok(self.chaos_point_from(servers, load_factor, offered_rps, plan, report))
    }

    /// The serving config a chaos scenario runs: offered load in units
    /// of one replica's capacity, the half-SLO serving batch, and the
    /// protected overload policy scaled to the fleet size.
    fn chaos_fleet_config(
        &self,
        servers: usize,
        load_factor: f64,
        requests: usize,
        seed: u64,
    ) -> (f64, FleetConfig) {
        let offered_rps = load_factor * self.capacity_rps();
        let base = ServingConfig {
            arrival_rate_rps: offered_rps,
            max_batch: self.serving_batch,
            batch_timeout_s: self.op.slo_s * 0.1,
            requests,
            seed,
        };
        let fleet = FleetConfig::new(base.with_servers(servers))
            .with_policy(self.protected_policy(servers));
        (offered_rps, fleet)
    }

    /// A serving-cell template for the planet-scale layer
    /// ([`tpu_serving::fleet`]): `servers` replicas at the half-SLO
    /// serving batch under the protected overload policy. The global
    /// orchestrator overwrites the arrival rate, request count, and
    /// seed every control epoch; rate/requests/seed here are
    /// placeholders.
    pub fn cell_template(&self, servers: usize) -> FleetConfig {
        let base = ServingConfig {
            arrival_rate_rps: self.capacity_rps(),
            max_batch: self.serving_batch,
            batch_timeout_s: self.op.slo_s * 0.1,
            requests: 1,
            seed: 0,
        };
        FleetConfig::new(base.with_servers(servers)).with_policy(self.protected_policy(servers))
    }

    fn chaos_point_from(
        &self,
        servers: usize,
        load_factor: f64,
        offered_rps: f64,
        plan: &FaultPlan,
        report: ServingReport,
    ) -> ChaosPoint {
        ChaosPoint {
            operating_point: self.op.clone(),
            serving_batch: self.serving_batch,
            servers: servers.max(1),
            load_factor,
            offered_rps,
            failover: plan.failover.enabled,
            report,
        }
    }
}

/// An app's behavior when offered *more* load than its operating point
/// sustains: the overload-aware companion to [`slo_operating_point`].
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPoint {
    /// The underlying SLO operating point.
    pub operating_point: OperatingPoint,
    /// The batch cap actually served at: the largest batch whose service
    /// latency fits *half* the SLO, leaving the other half as queueing
    /// headroom (serving at the full-SLO batch leaves no room to queue
    /// at all — any wait is a violation).
    pub serving_batch: u64,
    /// Offered load as a multiple of the ideal capacity at
    /// `serving_batch` (1.0 = exactly capacity).
    pub load_factor: f64,
    /// The offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Whether load shedding (deadline expiry + queue cap) was enabled.
    pub shedding: bool,
    /// The full serving report at that load.
    pub report: ServingReport,
}

impl OverloadPoint {
    /// Fraction of offered requests that completed within the SLO.
    pub fn good_fraction(&self) -> f64 {
        let good = self.report.completed - self.report.metrics.completed_late.get() as usize;
        good as f64 / self.report.arrivals.max(1) as f64
    }
}

/// Simulates an app's SLO operating point under `load_factor` times its
/// ideal capacity, with or without overload protection.
///
/// With `shedding` enabled the fleet sheds queued requests past the SLO
/// deadline, caps the queue at four full batches, and lets shed
/// requests retry once — the policy that keeps goodput flat through the
/// cliff. Without it, every request is served eventually, mostly too
/// late, and goodput collapses (the paper's Lesson 10 failure mode at
/// fleet scale).
///
/// `requests` sets the run length; overload only shows once the run
/// lasts many deadlines, so size it to the app's rate (a few thousand
/// for BERT-class apps, far more for sub-millisecond MLPs).
///
/// # Errors
///
/// Propagates profiling errors and serving-config rejections as
/// [`CoreError`].
pub fn slo_operating_point_under_overload(
    app: &App,
    chip: &ChipConfig,
    options: &CompilerOptions,
    load_factor: f64,
    shedding: bool,
    requests: usize,
) -> Result<OverloadPoint, CoreError> {
    ProfiledApp::new(app, chip, options)?.overload_point(
        load_factor,
        shedding,
        requests,
        DEFAULT_SWEEP_SEED,
    )
}

/// A replicated fleet's behavior under an injected fault plan: the
/// chaos-engineering companion to [`slo_operating_point_under_overload`]
/// (E22).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPoint {
    /// The underlying SLO operating point.
    pub operating_point: OperatingPoint,
    /// The batch cap served at (half-SLO headroom, as in the overload
    /// sweep).
    pub serving_batch: u64,
    /// Replicas in the fleet.
    pub servers: usize,
    /// Offered load as a multiple of *one* server's ideal capacity at
    /// `serving_batch` — single-server units so a sweep can offer, say,
    /// 1.35x one replica to a 4-replica fleet and watch survivors absorb
    /// failed peers' traffic.
    pub load_factor: f64,
    /// The offered arrival rate, requests/s.
    pub offered_rps: f64,
    /// Whether the plan's failover (health checking + redistribution)
    /// was enabled.
    pub failover: bool,
    /// The full serving report under the fault plan.
    pub report: ServingReport,
}

/// Simulates a replicated fleet at `load_factor` times one server's
/// ideal capacity, under the fault plan `plan` — the E22 chaos
/// experiment's engine.
///
/// The serving policy is the protected overload policy (deadline +
/// expiry shedding + capped queue + one retry), scaled to the fleet:
/// under faults the interesting question is not *whether* overload
/// protection is on but whether the health checker reroutes around dead
/// replicas. Pass `plan.without_failover()` for the serve-through
/// baseline — the fault schedule materializes identically either way, so
/// on/off runs face the same injected faults.
///
/// # Errors
///
/// Propagates profiling errors and serving/fault-plan config rejections
/// as [`CoreError`].
pub fn chaos_operating_point(
    app: &App,
    chip: &ChipConfig,
    options: &CompilerOptions,
    servers: usize,
    load_factor: f64,
    plan: &FaultPlan,
    requests: usize,
) -> Result<ChaosPoint, CoreError> {
    ProfiledApp::new(app, chip, options)?.chaos_point(
        servers,
        load_factor,
        plan,
        requests,
        DEFAULT_SWEEP_SEED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_workloads::zoo;

    #[test]
    fn run_app_produces_consistent_numbers() {
        let chip = catalog::tpu_v4i();
        let run = run_app(&zoo::mlp0(), &chip, 8, &CompilerOptions::default()).unwrap();
        assert_eq!(run.app, "MLP0");
        assert_eq!(run.batch, 8);
        assert!(run.report.seconds > 0.0);
        assert!(run.throughput_rps() > 0.0);
        assert!(run.inferences_per_joule() > 0.0);
        // The simulator executed exactly the compiled plan's flops.
        assert_eq!(run.report.flops, run.executable.plan().total_flops());
    }

    #[test]
    fn suite_covers_all_apps() {
        let chip = catalog::tpu_v4i();
        let runs = suite(&chip, 4, &CompilerOptions::default()).unwrap();
        assert_eq!(runs.len(), 8);
        let names: Vec<&str> = runs.iter().map(|r| r.app.as_str()).collect();
        assert!(names.contains(&"BERT1"));
        for r in &runs {
            assert!(r.report.seconds > 0.0, "{}", r.app);
        }
    }

    #[test]
    fn operating_point_respects_slo() {
        let chip = catalog::tpu_v4i();
        let op = slo_operating_point(&zoo::mlp0(), &chip, &CompilerOptions::default()).unwrap();
        assert!(op.feasible);
        assert!(op.latency_s <= op.slo_s);
        assert!(op.batch >= 1);
        assert!(op.throughput_rps > 0.0);
    }

    #[test]
    fn bigger_batch_for_looser_slo_app() {
        // RNN0's 60 ms SLO admits bigger batches than MLP0's 7 ms on the
        // same chip — Lesson 10's mechanism.
        let chip = catalog::tpu_v4i();
        let tight = slo_operating_point(&zoo::mlp0(), &chip, &CompilerOptions::default()).unwrap();
        let loose = slo_operating_point(&zoo::cnn1(), &chip, &CompilerOptions::default()).unwrap();
        // CNN1 (32 ms) is heavy per inference; the comparison that's
        // robust is that each meets its own SLO.
        assert!(tight.latency_s <= tight.slo_s);
        assert!(loose.latency_s <= loose.slo_s);
    }

    #[test]
    fn errors_convert_and_display() {
        let e: CoreError = CompileError::WeightsExceedHbm {
            needed: 2,
            available: 1,
        }
        .into();
        assert!(format!("{e}").contains("compile"));
        let e: CoreError = ConfigError::ZeroMaxBatch.into();
        assert!(matches!(e, CoreError::Serving(_)));
        assert!(format!("{e}").contains("serving"));
    }

    #[test]
    fn overload_point_sheds_only_when_asked() {
        // BERT0's SLO binds its batch, so 1.5x capacity genuinely
        // overloads the server within a few thousand requests.
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let plain =
            slo_operating_point_under_overload(&zoo::bert0(), &chip, &options, 1.5, false, 4000)
                .unwrap();
        let shed =
            slo_operating_point_under_overload(&zoo::bert0(), &chip, &options, 1.5, true, 4000)
                .unwrap();
        // Without shedding everything completes (late); with it some load
        // is turned away and what's served meets the deadline.
        assert_eq!(plain.report.shed, 0);
        assert_eq!(plain.report.completed, plain.report.arrivals);
        assert!(shed.report.shed > 0);
        assert!(plain.report.conservation_holds());
        assert!(shed.report.conservation_holds());
        assert!(
            shed.report.goodput_rps > plain.report.goodput_rps,
            "shedding goodput {} vs unprotected {}",
            shed.report.goodput_rps,
            plain.report.goodput_rps
        );
        assert!(shed.good_fraction() <= 1.0);
    }
}
