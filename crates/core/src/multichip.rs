//! Multi-chip pipeline inference over ICI (the paper's scale-out story).
//!
//! TPUv4i carries inter-chip interconnect links so that models too large
//! or too slow for one chip can be served by a small pod (the paper
//! describes 4-chip configurations). This module implements **pipeline
//! parallelism**: the model's layers are split into stages, one chip per
//! stage; activations hop between stages over ICI.
//!
//! - *Latency* of one inference = sum of stage latencies + hop times.
//! - *Throughput* = 1 / (slowest stage or hop): once the pipeline fills,
//!   a new batch completes every bottleneck-interval.
//! - Each stage also gets the full chip's CMEM for a fraction of the
//!   weights, which is why pipelining can be *super-linear* for models
//!   that overflow one chip's CMEM.

use tpu_arch::{ChipConfig, MemLevel};
use tpu_hlo::{compile, CompilerOptions, Graph};
use tpu_sim::plan::{StepKind, StepPlan};
use tpu_sim::Simulator;

use crate::CoreError;

/// The result of simulating a pipeline of `stages.len()` chips.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Number of chips (= stages).
    pub chips: usize,
    /// Per-stage compute latency, seconds.
    pub stage_seconds: Vec<f64>,
    /// Per-hop ICI transfer latency, seconds (stages - 1 hops).
    pub hop_seconds: Vec<f64>,
    /// End-to-end latency of one batch, seconds.
    pub latency_s: f64,
    /// Steady-state throughput, batches/second.
    pub batches_per_sec: f64,
    /// Fraction of the CMEM-resident weight bytes across all stages.
    pub cmem_fraction: f64,
}

impl PipelineReport {
    /// Throughput scaling efficiency vs `single`-chip serving:
    /// `(throughput_n / throughput_1) / n`.
    pub fn scaling_efficiency(&self, single: &PipelineReport) -> f64 {
        if self.chips == 0 || single.batches_per_sec <= 0.0 {
            return 0.0;
        }
        (self.batches_per_sec / single.batches_per_sec) / self.chips as f64
    }
}

/// Compiles and simulates a pipeline: one stage graph per chip, with
/// `hop_bytes` of activations crossing ICI between consecutive stages.
///
/// # Errors
///
/// Propagates compile/simulate failures; fails if `stages` is empty or
/// the chip has no ICI when more than one stage is requested.
pub fn simulate_pipeline(
    stages: &[Graph],
    chip: &ChipConfig,
    options: &CompilerOptions,
    hop_bytes: u64,
) -> Result<PipelineReport, CoreError> {
    if stages.is_empty() {
        return Err(CoreError::Compile(
            "pipeline needs at least one stage".into(),
        ));
    }
    if stages.len() > 1 && chip.ici_links == 0 {
        return Err(CoreError::Sim(format!(
            "{} has no ICI links for a {}-stage pipeline",
            chip.name,
            stages.len()
        )));
    }
    let sim = Simulator::new(chip.clone());
    let mut stage_seconds = Vec::with_capacity(stages.len());
    let mut cmem_bytes = 0u64;
    let mut weight_bytes = 0u64;
    for graph in stages {
        let exe = compile(graph, chip, options)?;
        let report = sim.run(exe.plan())?;
        stage_seconds.push(report.seconds);
        cmem_bytes += exe.memory().cmem_used;
        weight_bytes += exe.weight_bytes();
    }
    // Each hop is one activation tensor over one ICI link.
    let hops = stages.len().saturating_sub(1);
    let mut hop_seconds = Vec::with_capacity(hops);
    for _ in 0..hops {
        let mut hop = StepPlan::new("ici-hop");
        hop.push(StepKind::Ici { bytes: hop_bytes }, &[]);
        let report = sim.run(&hop)?;
        hop_seconds.push(report.seconds);
    }
    let latency_s = stage_seconds.iter().sum::<f64>() + hop_seconds.iter().sum::<f64>();
    let bottleneck = stage_seconds
        .iter()
        .chain(hop_seconds.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    Ok(PipelineReport {
        chips: stages.len(),
        stage_seconds,
        hop_seconds,
        latency_s,
        batches_per_sec: if bottleneck > 0.0 {
            1.0 / bottleneck
        } else {
            0.0
        },
        cmem_fraction: if weight_bytes == 0 {
            0.0
        } else {
            cmem_bytes as f64 / weight_bytes as f64
        },
    })
}

/// Whether a model's weights fit the CMEM of `chips` pipelined chips.
pub fn fits_pooled_cmem(chip: &ChipConfig, weight_bytes: u64, chips: u64) -> bool {
    let per_chip = chip.mem(MemLevel::Cmem).map_or(0, |c| c.capacity_bytes);
    weight_bytes <= per_chip * chips
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_numerics::DType;
    use tpu_workloads::zoo::{self, BERT1_CONFIG};

    fn bert1_pipeline(chips: u64) -> (Vec<Graph>, u64) {
        let batch = 8;
        let stages =
            zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, chips).expect("stages build");
        let hop = zoo::bert_stage_activation_bytes(&BERT1_CONFIG, batch, DType::Bf16);
        (stages, hop)
    }

    #[test]
    fn single_stage_matches_monolithic_model() {
        let chip = catalog::tpu_v4i();
        let (stages, hop) = bert1_pipeline(1);
        let report = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
        assert_eq!(report.chips, 1);
        assert!(report.hop_seconds.is_empty());
        // One-stage latency ≈ the monolithic BERT1 latency.
        let mono = crate::run_app(&zoo::bert1(), &chip, 8, &CompilerOptions::default())
            .unwrap()
            .report
            .seconds;
        let rel = (report.latency_s - mono).abs() / mono;
        assert!(
            rel < 0.05,
            "pipeline-of-1 {} vs mono {mono}",
            report.latency_s
        );
    }

    #[test]
    fn pipelining_raises_throughput_and_efficiency_is_sane() {
        let chip = catalog::tpu_v4i();
        let (one, hop) = bert1_pipeline(1);
        let single = simulate_pipeline(&one, &chip, &CompilerOptions::default(), hop).unwrap();
        let mut last_tp = single.batches_per_sec;
        for chips in [2u64, 4] {
            let (stages, hop) = bert1_pipeline(chips);
            let r = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
            assert_eq!(r.chips, chips as usize);
            assert!(
                r.batches_per_sec > last_tp,
                "{chips} chips: {} <= {last_tp}",
                r.batches_per_sec
            );
            let eff = r.scaling_efficiency(&single);
            assert!(
                eff > 0.5 && eff < 1.6,
                "{chips}-chip efficiency {eff} out of range"
            );
            last_tp = r.batches_per_sec;
        }
    }

    #[test]
    fn pipelining_unlocks_cmem_residency_for_big_models() {
        // BERT1's 666 MiB of bf16 weights overflow one 128 MiB CMEM but
        // come much closer across 4 chips — the super-linear mechanism.
        let chip = catalog::tpu_v4i();
        let (one, hop) = bert1_pipeline(1);
        let (four, hop4) = bert1_pipeline(4);
        let single = simulate_pipeline(&one, &chip, &CompilerOptions::default(), hop).unwrap();
        let pod = simulate_pipeline(&four, &chip, &CompilerOptions::default(), hop4).unwrap();
        assert!(pod.cmem_fraction > 2.0 * single.cmem_fraction);
    }

    #[test]
    fn no_ici_means_no_pipeline() {
        let chip = catalog::tpu_v1(); // zero ICI links
        let (stages, hop) = bert1_pipeline(2);
        let err = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop);
        assert!(matches!(err, Err(CoreError::Sim(_))));
        // But a single stage is fine on any chip that fits it.
        let (one, hop1) = bert1_pipeline(1);
        assert!(
            simulate_pipeline(&one, &catalog::tpu_v3(), &CompilerOptions::default(), hop1).is_ok()
        );
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        let chip = catalog::tpu_v4i();
        assert!(matches!(
            simulate_pipeline(&[], &chip, &CompilerOptions::default(), 0),
            Err(CoreError::Compile(_))
        ));
    }

    #[test]
    fn pooled_cmem_capacity_check() {
        let v4i = catalog::tpu_v4i();
        let bert1_bytes = zoo::bert1().build(1).unwrap().weight_bytes();
        assert!(!fits_pooled_cmem(&v4i, bert1_bytes, 1));
        assert!(fits_pooled_cmem(&v4i, bert1_bytes, 8));
        // No CMEM at all on TPUv3.
        assert!(!fits_pooled_cmem(&catalog::tpu_v3(), bert1_bytes, 64));
    }
}

/// The result of data-parallel serving over a pod (batch sharded across
/// chips, shard outputs gathered to a root over ICI).
#[derive(Debug, Clone, PartialEq)]
pub struct DataParallelReport {
    /// Chips in the pod.
    pub chips: u64,
    /// The pod topology used.
    pub topology: tpu_arch::IciTopology,
    /// Per-shard compute latency, seconds.
    pub shard_seconds: f64,
    /// Output-gather time over ICI, seconds.
    pub gather_seconds: f64,
    /// End-to-end latency of one full batch, seconds.
    pub latency_s: f64,
    /// Full batches per second (compute and gather pipelined).
    pub batches_per_sec: f64,
}

impl DataParallelReport {
    /// Latency speedup over a single chip running the whole batch.
    pub fn speedup_over(&self, single_latency_s: f64) -> f64 {
        if self.latency_s <= 0.0 {
            0.0
        } else {
            single_latency_s / self.latency_s
        }
    }
}

/// Simulates data-parallel inference: the batch splits evenly across
/// `chips`, every chip runs the full model on its shard, and shard
/// outputs gather to a root chip over the recommended ICI topology.
///
/// Complements [`simulate_pipeline`]: data parallelism cuts *latency*
/// (each chip sees a smaller batch) but replicates weights, while
/// pipelining cuts *weights per chip* at constant latency.
///
/// # Errors
///
/// Propagates compile/simulate failures; multi-chip pods need ICI.
pub fn simulate_data_parallel(
    app: &tpu_workloads::App,
    chip: &ChipConfig,
    options: &CompilerOptions,
    chips: u64,
    batch: u64,
) -> Result<DataParallelReport, CoreError> {
    let chips = chips.max(1);
    if chips > 1 && chip.ici_links == 0 {
        return Err(CoreError::Sim(format!(
            "{} has no ICI links for a {chips}-chip pod",
            chip.name
        )));
    }
    let shard_batch = batch.div_ceil(chips).max(1);
    let graph = app
        .build(shard_batch)
        .map_err(|e| CoreError::Compile(e.to_string()))?;
    let exe = compile(&graph, chip, options)?;
    let sim = Simulator::new(chip.clone());
    let shard_seconds = sim.run(exe.plan())?.seconds;

    // Gather: every non-root shard's outputs cross ICI to the root.
    let shard_output_bytes: u64 = graph
        .outputs()
        .iter()
        .map(|&o| graph.node(o).shape.bytes(graph.dtype()))
        .sum();
    let topology = tpu_arch::IciTopology::recommended(chips as u32);
    let gather_seconds = if chips == 1 {
        0.0
    } else {
        let mut gather = StepPlan::new("gather");
        for _ in 1..chips {
            gather.push(
                StepKind::Ici {
                    bytes: shard_output_bytes,
                },
                &[],
            );
        }
        // Serialize on the root's ingress links; add per-hop latency for
        // the farthest shard.
        let transfers = sim.run(&gather)?.seconds;
        transfers + topology.diameter() as f64 * 1e-6
    };

    let latency_s = shard_seconds + gather_seconds;
    let bottleneck = shard_seconds.max(gather_seconds);
    Ok(DataParallelReport {
        chips,
        topology,
        shard_seconds,
        gather_seconds,
        latency_s,
        batches_per_sec: if bottleneck > 0.0 {
            1.0 / bottleneck
        } else {
            0.0
        },
    })
}

/// A pipeline simulated over a degraded pod (failed ICI links/chips).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyPipelineReport {
    /// Whether the chain survived: every stage chip alive and every
    /// consecutive stage pair still routable over surviving links.
    pub alive: bool,
    /// ICI hops each activation transfer takes after rerouting around
    /// the failures (all 1s on a healthy pod). Empty if the chain died.
    pub rerouted_hops: Vec<u32>,
    /// The degraded pipeline result; `None` when the chain is dead —
    /// a pipeline loses the *whole* chain to one chip loss, which is
    /// exactly why serving fleets replicate pipelines and fail over.
    pub report: Option<PipelineReport>,
}

/// Availability of an `n`-chip pipeline chain when each chip is
/// independently up with probability `per_chip`: all `n` must be up, so
/// the chain multiplies failure exposure (`a^n`). The serial-chain
/// penalty is the quantitative argument for failover replication.
pub fn pipeline_availability(per_chip: f64, chips: u32) -> f64 {
    per_chip.clamp(0.0, 1.0).powi(chips as i32)
}

/// [`simulate_pipeline`] over a degraded pod: stage `i` runs on chip `i`
/// of the recommended topology for the stage count, and activations
/// reroute around `failures` (TPUv4-style) — or the chain dies if a
/// stage chip is dead or the survivors are partitioned between
/// consecutive stages.
///
/// # Errors
///
/// Propagates compile/simulate failures and rejects failure masks that
/// name links or chips the topology does not have.
pub fn simulate_pipeline_with_failures(
    stages: &[Graph],
    chip: &ChipConfig,
    options: &CompilerOptions,
    hop_bytes: u64,
    failures: &tpu_arch::LinkFailures,
) -> Result<FaultyPipelineReport, CoreError> {
    let topology = tpu_arch::IciTopology::recommended(stages.len() as u32);
    let degraded = topology
        .degrade(failures)
        .map_err(|e| CoreError::Sim(e.to_string()))?;
    let mut rerouted = Vec::with_capacity(stages.len().saturating_sub(1));
    for i in 0..stages.len().saturating_sub(1) {
        match degraded.hops(i as u32, i as u32 + 1) {
            Some(h) => rerouted.push(h),
            // A dead stage chip or a partition between stages: fail-stop
            // for the whole chain.
            None => {
                return Ok(FaultyPipelineReport {
                    alive: false,
                    rerouted_hops: Vec::new(),
                    report: None,
                })
            }
        }
    }
    if stages.len() == 1 && !degraded.is_alive(0) {
        return Ok(FaultyPipelineReport {
            alive: false,
            rerouted_hops: Vec::new(),
            report: None,
        });
    }
    let mut report = simulate_pipeline(stages, chip, options, hop_bytes)?;
    // Rerouted transfers cross more links; serialize per extra hop.
    for (hop_s, &hops) in report.hop_seconds.iter_mut().zip(&rerouted) {
        *hop_s *= hops as f64;
    }
    report.latency_s =
        report.stage_seconds.iter().sum::<f64>() + report.hop_seconds.iter().sum::<f64>();
    let bottleneck = report
        .stage_seconds
        .iter()
        .chain(report.hop_seconds.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    report.batches_per_sec = if bottleneck > 0.0 {
        1.0 / bottleneck
    } else {
        0.0
    };
    Ok(FaultyPipelineReport {
        alive: true,
        rerouted_hops: rerouted,
        report: Some(report),
    })
}

/// Data-parallel serving over a degraded pod.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyDataParallelReport {
    /// Pod size before failures.
    pub requested_chips: u64,
    /// Chips in the largest surviving connected fragment — the shard
    /// group that keeps serving (data parallelism degrades
    /// *proportionally*, unlike a pipeline chain).
    pub surviving_chips: u64,
    /// Surviving links across the healthy bisection cut (the degraded
    /// all-reduce bottleneck).
    pub degraded_bisection: u32,
    /// The reshard result over the survivors (`chips` =
    /// `surviving_chips`).
    pub report: DataParallelReport,
}

/// [`simulate_data_parallel`] over a degraded pod: the batch reshards
/// across the largest connected fragment of surviving chips, and the
/// output gather pays the fragment's (rerouted) diameter.
///
/// # Errors
///
/// Propagates compile/simulate failures; rejects invalid masks and pods
/// with no surviving chips.
pub fn simulate_data_parallel_with_failures(
    app: &tpu_workloads::App,
    chip: &ChipConfig,
    options: &CompilerOptions,
    chips: u64,
    batch: u64,
    failures: &tpu_arch::LinkFailures,
) -> Result<FaultyDataParallelReport, CoreError> {
    let chips = chips.max(1);
    let topology = tpu_arch::IciTopology::recommended(chips as u32);
    let degraded = topology
        .degrade(failures)
        .map_err(|e| CoreError::Sim(e.to_string()))?;
    let fragment = degraded.largest_component();
    if fragment.is_empty() {
        return Err(CoreError::Sim(format!(
            "no chips survive the failure mask on a {chips}-chip pod"
        )));
    }
    let survivors = fragment.len() as u64;
    if survivors > 1 && chip.ici_links == 0 {
        return Err(CoreError::Sim(format!(
            "{} has no ICI links for a {survivors}-chip pod",
            chip.name
        )));
    }
    let shard_batch = batch.div_ceil(survivors).max(1);
    let graph = app
        .build(shard_batch)
        .map_err(|e| CoreError::Compile(e.to_string()))?;
    let exe = compile(&graph, chip, options)?;
    let sim = Simulator::new(chip.clone());
    let shard_seconds = sim.run(exe.plan())?.seconds;

    let shard_output_bytes: u64 = graph
        .outputs()
        .iter()
        .map(|&o| graph.node(o).shape.bytes(graph.dtype()))
        .sum();
    let gather_seconds = if survivors == 1 {
        0.0
    } else {
        let mut gather = StepPlan::new("gather");
        for _ in 1..survivors {
            gather.push(
                StepKind::Ici {
                    bytes: shard_output_bytes,
                },
                &[],
            );
        }
        let transfers = sim.run(&gather)?.seconds;
        // The farthest surviving shard pays the rerouted hop distance.
        let mut diameter = 0u32;
        for (i, &a) in fragment.iter().enumerate() {
            for &b in &fragment[i + 1..] {
                if let Some(h) = degraded.hops(a, b) {
                    diameter = diameter.max(h);
                }
            }
        }
        transfers + diameter as f64 * 1e-6
    };

    let latency_s = shard_seconds + gather_seconds;
    let bottleneck = shard_seconds.max(gather_seconds);
    Ok(FaultyDataParallelReport {
        requested_chips: chips,
        surviving_chips: survivors,
        degraded_bisection: degraded.bisection_links(),
        report: DataParallelReport {
            chips: survivors,
            topology,
            shard_seconds,
            gather_seconds,
            latency_s,
            batches_per_sec: if bottleneck > 0.0 {
                1.0 / bottleneck
            } else {
                0.0
            },
        },
    })
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use tpu_arch::{catalog, LinkFailures};
    use tpu_numerics::DType;
    use tpu_workloads::zoo::{self, BERT1_CONFIG};

    fn stages4() -> (Vec<Graph>, u64) {
        let batch = 8;
        let stages =
            zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, 4).expect("stages build");
        let hop = zoo::bert_stage_activation_bytes(&BERT1_CONFIG, batch, DType::Bf16);
        (stages, hop)
    }

    #[test]
    fn healthy_mask_matches_plain_pipeline() {
        let chip = catalog::tpu_v4i();
        let (stages, hop) = stages4();
        let plain = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
        let faulty = simulate_pipeline_with_failures(
            &stages,
            &chip,
            &CompilerOptions::default(),
            hop,
            &LinkFailures::none(),
        )
        .unwrap();
        assert!(faulty.alive);
        assert_eq!(faulty.rerouted_hops, vec![1, 1, 1]);
        assert_eq!(faulty.report, Some(plain));
    }

    #[test]
    fn one_chip_loss_kills_the_whole_chain() {
        let chip = catalog::tpu_v4i();
        let (stages, hop) = stages4();
        let faulty = simulate_pipeline_with_failures(
            &stages,
            &chip,
            &CompilerOptions::default(),
            hop,
            &LinkFailures::chips(vec![2]),
        )
        .unwrap();
        assert!(!faulty.alive);
        assert!(faulty.report.is_none());
    }

    #[test]
    fn link_cut_reroutes_and_costs_latency() {
        let chip = catalog::tpu_v4i();
        let (stages, hop) = stages4();
        let plain = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
        // Ring(4) with the 1-2 link cut: the 1→2 activation goes the
        // long way (3 hops via 0 and 3).
        let faulty = simulate_pipeline_with_failures(
            &stages,
            &chip,
            &CompilerOptions::default(),
            hop,
            &LinkFailures::links(vec![(1, 2)]),
        )
        .unwrap();
        assert!(faulty.alive);
        assert_eq!(faulty.rerouted_hops, vec![1, 3, 1]);
        let degraded = faulty.report.unwrap();
        assert!(degraded.latency_s > plain.latency_s);
        assert!(degraded.batches_per_sec <= plain.batches_per_sec);
    }

    #[test]
    fn data_parallel_degrades_proportionally_not_fatally() {
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let healthy = simulate_data_parallel_with_failures(
            &zoo::cnn0(),
            &chip,
            &options,
            4,
            128,
            &LinkFailures::none(),
        )
        .unwrap();
        assert_eq!(healthy.surviving_chips, 4);
        let wounded = simulate_data_parallel_with_failures(
            &zoo::cnn0(),
            &chip,
            &options,
            4,
            128,
            &LinkFailures::chips(vec![1]),
        )
        .unwrap();
        // One chip down: the other three reshard and keep serving with
        // bigger shards (slower), instead of dying like a pipeline.
        assert_eq!(wounded.surviving_chips, 3);
        assert!(wounded.report.latency_s > healthy.report.latency_s);
        assert!(wounded.report.batches_per_sec > 0.0);
        assert!(wounded.degraded_bisection < healthy.degraded_bisection);
    }

    #[test]
    fn chain_availability_is_exponential_in_depth() {
        let a = 0.995f64;
        assert!((pipeline_availability(a, 1) - a).abs() < 1e-12);
        let chain4 = pipeline_availability(a, 4);
        assert!((chain4 - a.powi(4)).abs() < 1e-12);
        assert!(chain4 < a);
        // Clamped inputs stay probabilities.
        assert_eq!(pipeline_availability(1.5, 8), 1.0);
    }

    #[test]
    fn empty_pods_and_bad_masks_are_rejected() {
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        assert!(matches!(
            simulate_data_parallel_with_failures(
                &zoo::mlp0(),
                &chip,
                &options,
                2,
                32,
                &LinkFailures::chips(vec![0, 1]),
            ),
            Err(CoreError::Sim(_))
        ));
        let (stages, hop) = stages4();
        assert!(matches!(
            simulate_pipeline_with_failures(
                &stages,
                &chip,
                &CompilerOptions::default(),
                hop,
                &LinkFailures::links(vec![(0, 2)]),
            ),
            Err(CoreError::Sim(_))
        ));
    }
}

#[cfg(test)]
mod data_parallel_tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_workloads::zoo;

    #[test]
    fn sharding_cuts_latency_for_compute_bound_models() {
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let app = zoo::cnn0();
        let single = simulate_data_parallel(&app, &chip, &options, 1, 128).unwrap();
        let pod = simulate_data_parallel(&app, &chip, &options, 4, 128).unwrap();
        assert_eq!(pod.topology, tpu_arch::IciTopology::Ring(4));
        let speedup = pod.speedup_over(single.latency_s);
        assert!(
            speedup > 2.0 && speedup < 4.5,
            "4-way data parallel speedup {speedup}"
        );
        assert!(pod.gather_seconds < pod.shard_seconds);
    }

    #[test]
    fn single_chip_pod_has_no_gather() {
        let chip = catalog::tpu_v4i();
        let r = simulate_data_parallel(&zoo::mlp0(), &chip, &CompilerOptions::default(), 1, 32)
            .unwrap();
        assert_eq!(r.gather_seconds, 0.0);
        assert_eq!(r.topology, tpu_arch::IciTopology::Single);
    }

    #[test]
    fn pods_need_ici() {
        let err = simulate_data_parallel(
            &zoo::mlp0(),
            &catalog::tpu_v1(),
            &CompilerOptions::default(),
            4,
            32,
        );
        assert!(matches!(err, Err(CoreError::Sim(_))));
    }

    #[test]
    fn data_parallel_vs_pipeline_tradeoff() {
        // Pipelining BERT1 keeps latency ~flat but scales throughput;
        // data parallelism cuts latency. Both should beat single-chip
        // throughput.
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let dp = simulate_data_parallel(&zoo::bert1(), &chip, &options, 4, 8).unwrap();
        let single = simulate_data_parallel(&zoo::bert1(), &chip, &options, 1, 8).unwrap();
        assert!(dp.latency_s < single.latency_s);
    }
}
