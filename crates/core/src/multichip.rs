//! Multi-chip pipeline inference over ICI (the paper's scale-out story).
//!
//! TPUv4i carries inter-chip interconnect links so that models too large
//! or too slow for one chip can be served by a small pod (the paper
//! describes 4-chip configurations). This module implements **pipeline
//! parallelism**: the model's layers are split into stages, one chip per
//! stage; activations hop between stages over ICI.
//!
//! - *Latency* of one inference = sum of stage latencies + hop times.
//! - *Throughput* = 1 / (slowest stage or hop): once the pipeline fills,
//!   a new batch completes every bottleneck-interval.
//! - Each stage also gets the full chip's CMEM for a fraction of the
//!   weights, which is why pipelining can be *super-linear* for models
//!   that overflow one chip's CMEM.

use tpu_arch::{ChipConfig, MemLevel};
use tpu_hlo::{compile, CompilerOptions, Graph};
use tpu_sim::plan::{StepKind, StepPlan};
use tpu_sim::Simulator;

use crate::CoreError;

/// The result of simulating a pipeline of `stages.len()` chips.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Number of chips (= stages).
    pub chips: usize,
    /// Per-stage compute latency, seconds.
    pub stage_seconds: Vec<f64>,
    /// Per-hop ICI transfer latency, seconds (stages - 1 hops).
    pub hop_seconds: Vec<f64>,
    /// End-to-end latency of one batch, seconds.
    pub latency_s: f64,
    /// Steady-state throughput, batches/second.
    pub batches_per_sec: f64,
    /// Fraction of the CMEM-resident weight bytes across all stages.
    pub cmem_fraction: f64,
}

impl PipelineReport {
    /// Throughput scaling efficiency vs `single`-chip serving:
    /// `(throughput_n / throughput_1) / n`.
    pub fn scaling_efficiency(&self, single: &PipelineReport) -> f64 {
        if self.chips == 0 || single.batches_per_sec <= 0.0 {
            return 0.0;
        }
        (self.batches_per_sec / single.batches_per_sec) / self.chips as f64
    }
}

/// Compiles and simulates a pipeline: one stage graph per chip, with
/// `hop_bytes` of activations crossing ICI between consecutive stages.
///
/// # Errors
///
/// Propagates compile/simulate failures; fails if `stages` is empty or
/// the chip has no ICI when more than one stage is requested.
pub fn simulate_pipeline(
    stages: &[Graph],
    chip: &ChipConfig,
    options: &CompilerOptions,
    hop_bytes: u64,
) -> Result<PipelineReport, CoreError> {
    if stages.is_empty() {
        return Err(CoreError::Compile(
            "pipeline needs at least one stage".into(),
        ));
    }
    if stages.len() > 1 && chip.ici_links == 0 {
        return Err(CoreError::Sim(format!(
            "{} has no ICI links for a {}-stage pipeline",
            chip.name,
            stages.len()
        )));
    }
    let sim = Simulator::new(chip.clone());
    let mut stage_seconds = Vec::with_capacity(stages.len());
    let mut cmem_bytes = 0u64;
    let mut weight_bytes = 0u64;
    for graph in stages {
        let exe = compile(graph, chip, options)?;
        let report = sim.run(exe.plan())?;
        stage_seconds.push(report.seconds);
        cmem_bytes += exe.memory().cmem_used;
        weight_bytes += exe.weight_bytes();
    }
    // Each hop is one activation tensor over one ICI link.
    let hops = stages.len().saturating_sub(1);
    let mut hop_seconds = Vec::with_capacity(hops);
    for _ in 0..hops {
        let mut hop = StepPlan::new("ici-hop");
        hop.push(StepKind::Ici { bytes: hop_bytes }, &[]);
        let report = sim.run(&hop)?;
        hop_seconds.push(report.seconds);
    }
    let latency_s = stage_seconds.iter().sum::<f64>() + hop_seconds.iter().sum::<f64>();
    let bottleneck = stage_seconds
        .iter()
        .chain(hop_seconds.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    Ok(PipelineReport {
        chips: stages.len(),
        stage_seconds,
        hop_seconds,
        latency_s,
        batches_per_sec: if bottleneck > 0.0 {
            1.0 / bottleneck
        } else {
            0.0
        },
        cmem_fraction: if weight_bytes == 0 {
            0.0
        } else {
            cmem_bytes as f64 / weight_bytes as f64
        },
    })
}

/// Whether a model's weights fit the CMEM of `chips` pipelined chips.
pub fn fits_pooled_cmem(chip: &ChipConfig, weight_bytes: u64, chips: u64) -> bool {
    let per_chip = chip.mem(MemLevel::Cmem).map_or(0, |c| c.capacity_bytes);
    weight_bytes <= per_chip * chips
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_numerics::DType;
    use tpu_workloads::zoo::{self, BERT1_CONFIG};

    fn bert1_pipeline(chips: u64) -> (Vec<Graph>, u64) {
        let batch = 8;
        let stages =
            zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, chips).expect("stages build");
        let hop = zoo::bert_stage_activation_bytes(&BERT1_CONFIG, batch, DType::Bf16);
        (stages, hop)
    }

    #[test]
    fn single_stage_matches_monolithic_model() {
        let chip = catalog::tpu_v4i();
        let (stages, hop) = bert1_pipeline(1);
        let report = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
        assert_eq!(report.chips, 1);
        assert!(report.hop_seconds.is_empty());
        // One-stage latency ≈ the monolithic BERT1 latency.
        let mono = crate::run_app(&zoo::bert1(), &chip, 8, &CompilerOptions::default())
            .unwrap()
            .report
            .seconds;
        let rel = (report.latency_s - mono).abs() / mono;
        assert!(
            rel < 0.05,
            "pipeline-of-1 {} vs mono {mono}",
            report.latency_s
        );
    }

    #[test]
    fn pipelining_raises_throughput_and_efficiency_is_sane() {
        let chip = catalog::tpu_v4i();
        let (one, hop) = bert1_pipeline(1);
        let single = simulate_pipeline(&one, &chip, &CompilerOptions::default(), hop).unwrap();
        let mut last_tp = single.batches_per_sec;
        for chips in [2u64, 4] {
            let (stages, hop) = bert1_pipeline(chips);
            let r = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop).unwrap();
            assert_eq!(r.chips, chips as usize);
            assert!(
                r.batches_per_sec > last_tp,
                "{chips} chips: {} <= {last_tp}",
                r.batches_per_sec
            );
            let eff = r.scaling_efficiency(&single);
            assert!(
                eff > 0.5 && eff < 1.6,
                "{chips}-chip efficiency {eff} out of range"
            );
            last_tp = r.batches_per_sec;
        }
    }

    #[test]
    fn pipelining_unlocks_cmem_residency_for_big_models() {
        // BERT1's 666 MiB of bf16 weights overflow one 128 MiB CMEM but
        // come much closer across 4 chips — the super-linear mechanism.
        let chip = catalog::tpu_v4i();
        let (one, hop) = bert1_pipeline(1);
        let (four, hop4) = bert1_pipeline(4);
        let single = simulate_pipeline(&one, &chip, &CompilerOptions::default(), hop).unwrap();
        let pod = simulate_pipeline(&four, &chip, &CompilerOptions::default(), hop4).unwrap();
        assert!(pod.cmem_fraction > 2.0 * single.cmem_fraction);
    }

    #[test]
    fn no_ici_means_no_pipeline() {
        let chip = catalog::tpu_v1(); // zero ICI links
        let (stages, hop) = bert1_pipeline(2);
        let err = simulate_pipeline(&stages, &chip, &CompilerOptions::default(), hop);
        assert!(matches!(err, Err(CoreError::Sim(_))));
        // But a single stage is fine on any chip that fits it.
        let (one, hop1) = bert1_pipeline(1);
        assert!(
            simulate_pipeline(&one, &catalog::tpu_v3(), &CompilerOptions::default(), hop1).is_ok()
        );
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        let chip = catalog::tpu_v4i();
        assert!(matches!(
            simulate_pipeline(&[], &chip, &CompilerOptions::default(), 0),
            Err(CoreError::Compile(_))
        ));
    }

    #[test]
    fn pooled_cmem_capacity_check() {
        let v4i = catalog::tpu_v4i();
        let bert1_bytes = zoo::bert1().build(1).unwrap().weight_bytes();
        assert!(!fits_pooled_cmem(&v4i, bert1_bytes, 1));
        assert!(fits_pooled_cmem(&v4i, bert1_bytes, 8));
        // No CMEM at all on TPUv3.
        assert!(!fits_pooled_cmem(&catalog::tpu_v3(), bert1_bytes, 64));
    }
}

/// The result of data-parallel serving over a pod (batch sharded across
/// chips, shard outputs gathered to a root over ICI).
#[derive(Debug, Clone, PartialEq)]
pub struct DataParallelReport {
    /// Chips in the pod.
    pub chips: u64,
    /// The pod topology used.
    pub topology: tpu_arch::IciTopology,
    /// Per-shard compute latency, seconds.
    pub shard_seconds: f64,
    /// Output-gather time over ICI, seconds.
    pub gather_seconds: f64,
    /// End-to-end latency of one full batch, seconds.
    pub latency_s: f64,
    /// Full batches per second (compute and gather pipelined).
    pub batches_per_sec: f64,
}

impl DataParallelReport {
    /// Latency speedup over a single chip running the whole batch.
    pub fn speedup_over(&self, single_latency_s: f64) -> f64 {
        if self.latency_s <= 0.0 {
            0.0
        } else {
            single_latency_s / self.latency_s
        }
    }
}

/// Simulates data-parallel inference: the batch splits evenly across
/// `chips`, every chip runs the full model on its shard, and shard
/// outputs gather to a root chip over the recommended ICI topology.
///
/// Complements [`simulate_pipeline`]: data parallelism cuts *latency*
/// (each chip sees a smaller batch) but replicates weights, while
/// pipelining cuts *weights per chip* at constant latency.
///
/// # Errors
///
/// Propagates compile/simulate failures; multi-chip pods need ICI.
pub fn simulate_data_parallel(
    app: &tpu_workloads::App,
    chip: &ChipConfig,
    options: &CompilerOptions,
    chips: u64,
    batch: u64,
) -> Result<DataParallelReport, CoreError> {
    let chips = chips.max(1);
    if chips > 1 && chip.ici_links == 0 {
        return Err(CoreError::Sim(format!(
            "{} has no ICI links for a {chips}-chip pod",
            chip.name
        )));
    }
    let shard_batch = batch.div_ceil(chips).max(1);
    let graph = app
        .build(shard_batch)
        .map_err(|e| CoreError::Compile(e.to_string()))?;
    let exe = compile(&graph, chip, options)?;
    let sim = Simulator::new(chip.clone());
    let shard_seconds = sim.run(exe.plan())?.seconds;

    // Gather: every non-root shard's outputs cross ICI to the root.
    let shard_output_bytes: u64 = graph
        .outputs()
        .iter()
        .map(|&o| graph.node(o).shape.bytes(graph.dtype()))
        .sum();
    let topology = tpu_arch::IciTopology::recommended(chips as u32);
    let gather_seconds = if chips == 1 {
        0.0
    } else {
        let mut gather = StepPlan::new("gather");
        for _ in 1..chips {
            gather.push(
                StepKind::Ici {
                    bytes: shard_output_bytes,
                },
                &[],
            );
        }
        // Serialize on the root's ingress links; add per-hop latency for
        // the farthest shard.
        let transfers = sim.run(&gather)?.seconds;
        transfers + topology.diameter() as f64 * 1e-6
    };

    let latency_s = shard_seconds + gather_seconds;
    let bottleneck = shard_seconds.max(gather_seconds);
    Ok(DataParallelReport {
        chips,
        topology,
        shard_seconds,
        gather_seconds,
        latency_s,
        batches_per_sec: if bottleneck > 0.0 {
            1.0 / bottleneck
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod data_parallel_tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_workloads::zoo;

    #[test]
    fn sharding_cuts_latency_for_compute_bound_models() {
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let app = zoo::cnn0();
        let single = simulate_data_parallel(&app, &chip, &options, 1, 128).unwrap();
        let pod = simulate_data_parallel(&app, &chip, &options, 4, 128).unwrap();
        assert_eq!(pod.topology, tpu_arch::IciTopology::Ring(4));
        let speedup = pod.speedup_over(single.latency_s);
        assert!(
            speedup > 2.0 && speedup < 4.5,
            "4-way data parallel speedup {speedup}"
        );
        assert!(pod.gather_seconds < pod.shard_seconds);
    }

    #[test]
    fn single_chip_pod_has_no_gather() {
        let chip = catalog::tpu_v4i();
        let r = simulate_data_parallel(&zoo::mlp0(), &chip, &CompilerOptions::default(), 1, 32)
            .unwrap();
        assert_eq!(r.gather_seconds, 0.0);
        assert_eq!(r.topology, tpu_arch::IciTopology::Single);
    }

    #[test]
    fn pods_need_ici() {
        let err = simulate_data_parallel(
            &zoo::mlp0(),
            &catalog::tpu_v1(),
            &CompilerOptions::default(),
            4,
            32,
        );
        assert!(matches!(err, Err(CoreError::Sim(_))));
    }

    #[test]
    fn data_parallel_vs_pipeline_tradeoff() {
        // Pipelining BERT1 keeps latency ~flat but scales throughput;
        // data parallelism cuts latency. Both should beat single-chip
        // throughput.
        let chip = catalog::tpu_v4i();
        let options = CompilerOptions::default();
        let dp = simulate_data_parallel(&zoo::bert1(), &chip, &options, 4, 8).unwrap();
        let single = simulate_data_parallel(&zoo::bert1(), &chip, &options, 1, 8).unwrap();
        assert!(dp.latency_s < single.latency_s);
    }
}
