//! Event queues for the serving DES: a calendar/bucket queue tuned for
//! near-uniform timer events, behind a small [`EventQueue`] trait with
//! the original binary heap kept as the reference implementation.
//!
//! # Ordering contract
//!
//! Every event is keyed by `(TimeKey, seq)` where `seq` is a monotone
//! sequence number assigned at push time. Keys are unique (the engine
//! never reuses a `seq`), so both implementations pop in exactly the
//! same total order: time-ascending, FIFO within a timestamp. This is
//! the property every report byte-pin and the derived-only telemetry
//! contract rest on — the differential suite
//! (`tests/queue_differential.rs`) proves the two implementations
//! produce bit-identical runs.
//!
//! # Calendar queue shape
//!
//! [`CalendarQueue`] hashes each event into one of `NUM_BUCKETS`
//! buckets by `floor(t / width) mod NUM_BUCKETS`, with a power-of-two
//! `width` derived from the validated config's event timescale (so the
//! bucket index is a single multiply + truncate, and the year check a
//! mask). Each bucket keeps its events sorted descending so the bucket
//! minimum pops from the tail in O(1). A scan cursor walks buckets in
//! time order, skipping empty runs via a per-slot occupancy bitmap;
//! events more than one wheel revolution ahead wait in an **overflow
//! min-heap** and migrate into the wheel as the cursor approaches (or
//! the cursor jumps straight to them when the wheel drains). Pushes
//! behind the cursor — legal, because the engine's
//! arrival stream bypasses the queue and can create near-`now` events
//! while the cursor sits at a far-future minimum — simply pull the
//! cursor back: it is a lower bound on the queue minimum, never a
//! promise that earlier buckets are empty.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation-time ordering key: `f64` under `total_cmp` (the engines
/// never produce NaN times, and `total_cmp` keeps the type totally
/// ordered anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeKey(pub f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The full event key: `(time, sequence)`. The engine's sequence
/// counter makes keys unique, so same-timestamp events pop FIFO.
pub type EventKey = (TimeKey, u64);

/// A priority queue of `(EventKey, T)` popping in ascending key order.
///
/// `peek_key` takes `&mut self` because the calendar queue settles its
/// cursor lazily; implementations must not change the observable
/// contents.
pub trait EventQueue<T> {
    /// Enqueues one event.
    fn push(&mut self, key: EventKey, item: T);
    /// The smallest key currently queued, without removing it.
    fn peek_key(&mut self) -> Option<EventKey>;
    /// Removes and returns the smallest-keyed event.
    fn pop(&mut self) -> Option<(EventKey, T)>;
    /// Events currently queued.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference implementation: the binary heap the engine always
/// used. Kept for the differential net — every optimization of
/// [`CalendarQueue`] is graded against this queue's pop order.
#[derive(Debug, Default)]
pub struct HeapQueue<T: Ord> {
    heap: BinaryHeap<Reverse<(EventKey, T)>>,
}

impl<T: Ord> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> HeapQueue<T> {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Ord> EventQueue<T> for HeapQueue<T> {
    #[inline]
    fn push(&mut self, key: EventKey, item: T) {
        self.heap.push(Reverse((key, item)));
    }

    #[inline]
    fn peek_key(&mut self) -> Option<EventKey> {
        self.heap.peek().map(|r| r.0 .0)
    }

    #[inline]
    fn pop(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|Reverse((k, e))| (k, e))
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Buckets per wheel revolution (power of two; the slot index is
/// `bucket & MASK`). Kept small on purpose: the serving engines hold
/// only a handful of in-flight events at once, so a compact wheel keeps
/// every bucket header in L1; far-future events wait in the overflow
/// heap rather than in a wider wheel.
const NUM_BUCKETS: u64 = 256;
const MASK: u64 = NUM_BUCKETS - 1;

/// A calendar (bucket) queue over `(EventKey, T)`.
///
/// See the module docs for the structure; `for_timescale` picks the
/// power-of-two bucket width nearest the expected inter-event spacing.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `1 / width`; both are exact powers of two so `t * inv_width`
    /// never rounds across a bucket boundary inconsistently (the index
    /// map only needs to be monotone in `t`, which multiplication by a
    /// positive constant plus truncation is).
    inv_width: f64,
    /// Ring of buckets; each kept sorted descending by key so the
    /// bucket minimum is `last()`.
    buckets: Vec<Vec<(EventKey, T)>>,
    /// Global (un-wrapped) bucket index lower-bounding every queued
    /// event. Pops advance it; pushes behind it pull it back.
    cursor: u64,
    /// Events resident in the wheel.
    wheel_len: usize,
    /// One bit per bucket slot, set iff the slot is non-empty; lets the
    /// settle scan jump over runs of empty buckets with a word scan
    /// instead of probing them one by one.
    occupied: [u64; (NUM_BUCKETS / 64) as usize],
    /// Events at least one revolution past the cursor at push time,
    /// kept as a min-heap so migration pops exactly the events that
    /// entered the horizon instead of rescanning everything.
    overflow: BinaryHeap<Reverse<(EventKey, T)>>,
    /// Smallest global bucket index in `overflow` (`u64::MAX` if empty).
    overflow_min_idx: u64,
    /// Cached minimum key from the last settle, invalidated by pops and
    /// by pushes that undercut it.
    peeked: Option<EventKey>,
    len: usize,
}

impl<T: Ord> CalendarQueue<T> {
    /// A queue whose bucket width is the power of two nearest
    /// `timescale_s` (the expected inter-event spacing — the serving
    /// engines pass the validated mean arrival interval). Degenerate
    /// hints fall back to 1 s buckets; the exponent is clamped so the
    /// width stays in `[2^-40, 2^20]` seconds.
    pub fn for_timescale(timescale_s: f64) -> CalendarQueue<T> {
        let exp = if timescale_s.is_finite() && timescale_s > 0.0 {
            timescale_s.log2().round().clamp(-40.0, 20.0)
        } else {
            0.0
        };
        CalendarQueue {
            inv_width: (-exp).exp2(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            wheel_len: 0,
            occupied: [0u64; (NUM_BUCKETS / 64) as usize],
            overflow: BinaryHeap::new(),
            overflow_min_idx: u64::MAX,
            peeked: None,
            len: 0,
        }
    }

    /// Global bucket index of time `t` (saturating: astronomically
    /// late events share the last bucket, still ordered within it).
    #[inline]
    fn bucket_index(&self, t: f64) -> u64 {
        (t * self.inv_width) as u64
    }

    /// Inserts into a bucket, keeping it sorted descending by key.
    #[inline]
    fn insert_sorted(slot: &mut Vec<(EventKey, T)>, key: EventKey, item: T) {
        let pos = slot.partition_point(|&(k, _)| k > key);
        slot.insert(pos, (key, item));
    }

    #[inline]
    fn mark_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Ring distance (0..NUM_BUCKETS) from slot `from` to the nearest
    /// occupied slot at or after it, or `None` if the wheel is empty.
    #[inline]
    fn occupied_distance(&self, from: usize) -> Option<u64> {
        let words = self.occupied.len();
        let (mut w, bit) = (from >> 6, from & 63);
        // Mask off bits before `from` in its word, then scan forward,
        // wrapping once around the ring.
        let mut cur = self.occupied[w] & (u64::MAX << bit);
        // words + 1 probes: the final one re-reads the starting word
        // unmasked so bits before `from` get their turn after the wrap.
        for _ in 0..=words {
            if cur != 0 {
                let slot = ((w << 6) + cur.trailing_zeros() as usize) & MASK as usize;
                return Some(((slot + NUM_BUCKETS as usize - from) as u64) & MASK);
            }
            w = (w + 1) % words;
            cur = self.occupied[w];
        }
        None
    }

    /// Moves every overflow event within one revolution of the cursor
    /// into the wheel and refreshes the overflow minimum. The overflow
    /// heap pops in key order (keys are unique and time-monotone maps
    /// to index-monotone), so this touches exactly the events that
    /// entered the horizon plus one peek.
    fn migrate_overflow(&mut self) {
        loop {
            let Some(Reverse((key, _))) = self.overflow.peek() else {
                self.overflow_min_idx = u64::MAX;
                return;
            };
            let idx = self.bucket_index(key.0 .0);
            if idx.saturating_sub(self.cursor) >= NUM_BUCKETS {
                self.overflow_min_idx = idx;
                return;
            }
            let Some(Reverse((key, item))) = self.overflow.pop() else {
                unreachable!("peek above proved the heap non-empty");
            };
            let slot = (idx & MASK) as usize;
            Self::insert_sorted(&mut self.buckets[slot], key, item);
            self.mark_occupied(slot);
            self.wheel_len += 1;
        }
    }

    /// Advances the cursor to the bucket holding the queue minimum and
    /// returns its key (cached until a pop or an undercutting push).
    fn settle(&mut self) -> Option<EventKey> {
        if let Some(k) = self.peeked {
            return Some(k);
        }
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Wheel empty: jump straight to the earliest overflow
            // bucket instead of scanning the gap.
            self.cursor = self.cursor.max(self.overflow_min_idx);
            self.migrate_overflow();
        }
        loop {
            if self.overflow_min_idx.saturating_sub(self.cursor) < NUM_BUCKETS {
                self.migrate_overflow();
            }
            // Jump straight to the next occupied slot (the wheel is
            // non-empty here: settle never removes events, and the
            // pre-loop jump migrated the overflow minimum in if it was
            // empty). The probe below still rejects slots whose tail
            // belongs to a later wheel revolution (possible after a
            // cursor pull-back).
            self.cursor += self
                .occupied_distance((self.cursor & MASK) as usize)
                .expect("non-empty wheel has an occupied slot");
            let slot = &self.buckets[(self.cursor & MASK) as usize];
            if let Some(&(k, _)) = slot.last() {
                if self.bucket_index(k.0 .0) == self.cursor {
                    self.peeked = Some(k);
                    return Some(k);
                }
            }
            self.cursor += 1;
        }
    }
}

impl<T: Ord> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, key: EventKey, item: T) {
        let idx = self.bucket_index(key.0 .0);
        // A push behind the cursor is legal (the engine's bypassed
        // arrival stream can spawn near-`now` events while the cursor
        // sits at a far-future minimum): the cursor is only a lower
        // bound, so pull it back and re-settle lazily.
        if idx < self.cursor {
            self.cursor = idx;
        }
        if self.peeked.is_some_and(|p| key < p) {
            self.peeked = None;
        }
        if idx.saturating_sub(self.cursor) < NUM_BUCKETS {
            let slot = (idx & MASK) as usize;
            Self::insert_sorted(&mut self.buckets[slot], key, item);
            self.mark_occupied(slot);
            self.wheel_len += 1;
        } else {
            self.overflow_min_idx = self.overflow_min_idx.min(idx);
            self.overflow.push(Reverse((key, item)));
        }
        self.len += 1;
    }

    #[inline]
    fn peek_key(&mut self) -> Option<EventKey> {
        // Fast path in the caller's frame: the engine peeks once or
        // twice per processed event and the cache only drops on pops
        // and undercutting pushes.
        if self.peeked.is_some() {
            return self.peeked;
        }
        self.settle()
    }

    fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.peeked.is_none() {
            self.settle()?;
        }
        self.peeked = None;
        // After settle the cursor's slot tail is the global minimum.
        let slot = (self.cursor & MASK) as usize;
        let out = self.buckets[slot]
            .pop()
            .expect("settled cursor points at a non-empty bucket");
        if self.buckets[slot].is_empty() {
            self.clear_occupied(slot);
        }
        self.wheel_len -= 1;
        self.len -= 1;
        Some(out)
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(EventKey, u32)> {
        let mut out = Vec::new();
        while let Some(kv) = q.pop() {
            out.push(kv);
        }
        out
    }

    #[test]
    fn bucket_boundary_timestamps_pop_in_order() {
        // Times sitting exactly on bucket boundaries (multiples of the
        // power-of-two width) and just inside them must interleave
        // correctly across slots.
        let mut cal = CalendarQueue::for_timescale(1.0);
        let mut heap = HeapQueue::new();
        let mut seq = 0u64;
        for k in (0..64).rev() {
            for t in [k as f64, k as f64 + 1e-9, (k + 1) as f64 - 1e-9] {
                let key = (TimeKey(t), seq);
                cal.push(key, seq as u32);
                heap.push(key, seq as u32);
                seq += 1;
            }
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn far_future_overflow_ring_round_trips() {
        let mut cal = CalendarQueue::for_timescale(1e-3);
        let mut heap = HeapQueue::new();
        // With ~1 ms buckets and 1024 slots, anything beyond ~1 s from
        // the cursor lands in the overflow ring.
        let times = [0.5, 2_000.0, 0.001, 5.0e7, 3.0, 1.0e4, 0.25, 7.0e9];
        for (seq, &t) in times.iter().enumerate() {
            let key = (TimeKey(t), seq as u64);
            cal.push(key, seq as u32);
            heap.push(key, seq as u32);
        }
        assert_eq!(cal.len(), times.len());
        assert_eq!(drain(&mut cal), drain(&mut heap));
        assert!(cal.is_empty());
    }

    #[test]
    fn same_timestamp_pops_fifo_by_sequence() {
        let mut cal = CalendarQueue::for_timescale(0.125);
        for seq in 0..100u64 {
            cal.push((TimeKey(42.0), seq), seq as u32);
        }
        let got: Vec<u32> = drain(&mut cal).into_iter().map(|(_, v)| v).collect();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(got, want, "same-timestamp events must pop FIFO");
    }

    #[test]
    fn drain_while_inserting_behind_the_cursor() {
        // The engine peeks a far-future minimum (advancing the scan
        // cursor), then pushes events *earlier* than it — the cursor
        // must fall back rather than skip them.
        let mut cal = CalendarQueue::for_timescale(0.001);
        cal.push((TimeKey(10.0), 0), 0);
        assert_eq!(cal.peek_key(), Some((TimeKey(10.0), 0)));
        cal.push((TimeKey(0.5), 1), 1);
        cal.push((TimeKey(0.25), 2), 2);
        assert_eq!(cal.pop(), Some(((TimeKey(0.25), 2), 2)));
        // Interleave pops with pushes that keep undercutting.
        cal.push((TimeKey(0.3), 3), 3);
        assert_eq!(cal.pop(), Some(((TimeKey(0.3), 3), 3)));
        assert_eq!(cal.pop(), Some(((TimeKey(0.5), 1), 1)));
        cal.push((TimeKey(9.0), 4), 4);
        assert_eq!(cal.pop(), Some(((TimeKey(9.0), 4), 4)));
        assert_eq!(cal.pop(), Some(((TimeKey(10.0), 0), 0)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn randomized_differential_against_heap() {
        // Mixed push/pop traces across wildly different widths must
        // match the reference heap exactly, key for key.
        for (case, &width) in [1e-6, 1e-3, 0.07, 1.0, 300.0].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(case as u64 + 1);
            let mut cal = CalendarQueue::for_timescale(width);
            let mut heap = HeapQueue::new();
            let mut seq = 0u64;
            let mut floor = 0.0f64; // pops are monotone; pushes are >= last pop
            for _ in 0..2000 {
                if rng.gen_bool(0.6) || cal.is_empty() {
                    // Mostly near-term, occasionally far-future.
                    let spread = if rng.gen_bool(0.05) { 1e6 } else { 50.0 };
                    let t = floor + rng.gen_range(0.0..spread) * width;
                    let key = (TimeKey(t), seq);
                    cal.push(key, seq as u32);
                    heap.push(key, seq as u32);
                    seq += 1;
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "width {width}");
                    if let Some(((TimeKey(t), _), _)) = a {
                        floor = t;
                    }
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_key(), heap.peek_key());
            }
            assert_eq!(drain(&mut cal), drain(&mut heap), "width {width}");
        }
    }

    #[test]
    fn degenerate_timescales_fall_back_sanely() {
        for bad in [f64::NAN, 0.0, -3.0, f64::INFINITY] {
            let mut q = CalendarQueue::for_timescale(bad);
            q.push((TimeKey(1.5), 0), 7u32);
            q.push((TimeKey(0.5), 1), 8u32);
            assert_eq!(q.pop().map(|(_, v)| v), Some(8));
            assert_eq!(q.pop().map(|(_, v)| v), Some(7));
        }
    }
}
