//! Batch→latency curves, profiled through the compiler and simulator.

use std::fmt;

use tpu_arch::ChipConfig;
use tpu_hlo::{compile, CompileError, CompilerOptions};
use tpu_sim::Simulator;
use tpu_workloads::App;

/// A piecewise-linear model of single-inference latency versus batch
/// size (monotone non-decreasing in batch by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// `(batch, seconds)` knots in increasing batch order.
    points: Vec<(u64, f64)>,
}

/// Error building a latency model.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyError {
    /// No profile points were provided.
    Empty,
    /// Points must have strictly increasing batch sizes.
    NotIncreasing,
    /// Compilation of a profile point failed.
    Compile(CompileError),
    /// Simulation of a profile point failed.
    Sim(String),
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::Empty => write!(f, "no profile points"),
            LatencyError::NotIncreasing => write!(f, "batch sizes must strictly increase"),
            LatencyError::Compile(e) => write!(f, "profiling compile failed: {e}"),
            LatencyError::Sim(e) => write!(f, "profiling simulation failed: {e}"),
        }
    }
}

impl std::error::Error for LatencyError {}

impl From<CompileError> for LatencyError {
    fn from(e: CompileError) -> LatencyError {
        LatencyError::Compile(e)
    }
}

/// Batch sizes profiled by default: powers of two up to 256.
pub const DEFAULT_BATCHES: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

impl LatencyModel {
    /// Builds a model from explicit `(batch, seconds)` knots.
    ///
    /// Latency values are made monotone (a larger batch never reports
    /// *less* total latency than a smaller one — queueing theory demands
    /// it and simulator noise can violate it by epsilons).
    ///
    /// # Errors
    ///
    /// Returns [`LatencyError::Empty`] or [`LatencyError::NotIncreasing`].
    pub fn from_points(points: Vec<(u64, f64)>) -> Result<LatencyModel, LatencyError> {
        if points.is_empty() {
            return Err(LatencyError::Empty);
        }
        if points.windows(2).any(|w| w[1].0 <= w[0].0) {
            return Err(LatencyError::NotIncreasing);
        }
        let mut points = points;
        for i in 1..points.len() {
            if points[i].1 < points[i - 1].1 {
                points[i].1 = points[i - 1].1;
            }
        }
        Ok(LatencyModel { points })
    }

    /// Profiles an app on a chip by compiling and simulating it at each
    /// batch size in `batches`.
    ///
    /// # Errors
    ///
    /// Propagates compile/simulation failures.
    pub fn profile(
        app: &App,
        chip: &ChipConfig,
        options: &CompilerOptions,
        batches: &[u64],
    ) -> Result<LatencyModel, LatencyError> {
        let sim = Simulator::new(chip.clone());
        let mut points = Vec::with_capacity(batches.len());
        for &b in batches {
            let graph = app.build(b).map_err(CompileError::Graph)?;
            let exe = compile(&graph, chip, options)?;
            let report = sim
                .run(exe.plan())
                .map_err(|e| LatencyError::Sim(e.to_string()))?;
            points.push((b, report.seconds));
        }
        LatencyModel::from_points(points)
    }

    /// Latency in seconds of serving one batch of `batch` requests.
    ///
    /// Linear interpolation between knots; linear extrapolation beyond
    /// the last knot using the final marginal cost per item.
    pub fn latency(&self, batch: u64) -> f64 {
        let batch = batch.max(1);
        let first = self.points[0];
        if batch <= first.0 {
            return first.1;
        }
        for w in self.points.windows(2) {
            let (b0, t0) = w[0];
            let (b1, t1) = w[1];
            if batch <= b1 {
                let frac = (batch - b0) as f64 / (b1 - b0) as f64;
                return t0 + frac * (t1 - t0);
            }
        }
        // Extrapolate.
        let (b_last, t_last) = *self.points.last().expect("non-empty");
        let slope = if self.points.len() >= 2 {
            let (b_prev, t_prev) = self.points[self.points.len() - 2];
            (t_last - t_prev) / (b_last - b_prev) as f64
        } else {
            t_last / b_last as f64
        };
        t_last + slope.max(0.0) * (batch - b_last) as f64
    }

    /// Throughput in requests/second at a given batch size.
    pub fn throughput(&self, batch: u64) -> f64 {
        let batch = batch.max(1);
        batch as f64 / self.latency(batch)
    }

    /// The profiled knots.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The smallest factor [`LatencyModel::scaled`] will apply. A zero
    /// (or negative, or NaN) factor would produce zero-latency knots,
    /// make [`LatencyModel::throughput`] return `inf`, and poison every
    /// downstream rate computation with NaN.
    pub const MIN_SCALE: f64 = 1e-9;

    /// Returns a copy with all latencies scaled by `factor` (used to
    /// model per-tenant CMEM-partition slowdowns without re-profiling).
    ///
    /// `factor` is clamped to [`LatencyModel::MIN_SCALE`]: non-positive
    /// and NaN factors yield an (absurdly fast but) finite model rather
    /// than zero-latency knots with infinite throughput.
    pub fn scaled(&self, factor: f64) -> LatencyModel {
        // `NaN.max(x)` returns `x`, so NaN factors are clamped too.
        let factor = factor.max(Self::MIN_SCALE);
        LatencyModel {
            points: self.points.iter().map(|&(b, t)| (b, t * factor)).collect(),
        }
    }
}

/// Prefill + decode cost curves for autoregressive (generative)
/// inference, reusing [`LatencyModel`]'s piecewise-linear machinery for
/// both phases.
///
/// - `prefill` maps **prompt tokens** to the seconds of processing the
///   full prompt (compute-bound; paid once, when the request joins the
///   in-flight decode batch);
/// - `decode` maps the **in-flight batch size** to the seconds of one
///   decode step (one token per in-flight request). Decode is
///   weight-streaming-bound: every step reads the model from HBM once
///   regardless of batch size, so the marginal cost of an extra
///   in-flight request is small — the economics continuous batching
///   exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct GenLatencyModel {
    /// `(prompt_tokens, seconds)` curve: full-prompt prefill cost.
    pub prefill: LatencyModel,
    /// `(batch, seconds)` curve: one decode step at that batch size.
    pub decode: LatencyModel,
}

impl GenLatencyModel {
    /// Seconds to prefill a prompt of `prompt_tokens`.
    pub fn prefill_s(&self, prompt_tokens: u64) -> f64 {
        self.prefill.latency(prompt_tokens)
    }

    /// Seconds for one decode step with `batch` requests in flight.
    pub fn decode_step_s(&self, batch: u64) -> f64 {
        self.decode.latency(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_workloads::zoo;

    #[test]
    fn construction_validates() {
        assert_eq!(
            LatencyModel::from_points(vec![]).unwrap_err(),
            LatencyError::Empty
        );
        assert_eq!(
            LatencyModel::from_points(vec![(4, 1.0), (4, 2.0)]).unwrap_err(),
            LatencyError::NotIncreasing
        );
    }

    #[test]
    fn monotone_repair() {
        let m = LatencyModel::from_points(vec![(1, 2.0), (2, 1.0)]).unwrap();
        assert_eq!(m.latency(2), 2.0);
    }

    #[test]
    fn interpolation_and_extrapolation() {
        let m = LatencyModel::from_points(vec![(1, 1.0), (3, 3.0)]).unwrap();
        assert_eq!(m.latency(1), 1.0);
        assert_eq!(m.latency(2), 2.0);
        assert_eq!(m.latency(3), 3.0);
        // Extrapolation at slope 1/batch.
        assert!((m.latency(5) - 5.0).abs() < 1e-12);
        // Below first knot clamps.
        assert_eq!(m.latency(0), 1.0);
    }

    #[test]
    fn throughput_grows_with_batch_when_sublinear() {
        let m = LatencyModel::from_points(vec![(1, 1.0), (10, 2.0)]).unwrap();
        assert!(m.throughput(10) > m.throughput(1));
    }

    #[test]
    fn scaled_multiplies_latency() {
        let m = LatencyModel::from_points(vec![(1, 1.0), (2, 2.0)]).unwrap();
        let s = m.scaled(1.5);
        assert!((s.latency(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_clamps_degenerate_factors() {
        // Regression: scaled(0.0) produced zero-latency knots, so
        // throughput() returned inf and downstream rate math went NaN.
        let m = LatencyModel::from_points(vec![(1, 1.0), (2, 2.0)]).unwrap();
        for factor in [0.0, -3.0, f64::NAN] {
            let s = m.scaled(factor);
            assert!(
                s.latency(1) > 0.0,
                "factor {factor}: latency must stay positive"
            );
            assert!(
                s.throughput(2).is_finite(),
                "factor {factor}: throughput must stay finite"
            );
            // No NaN anywhere in the scaled knots.
            assert!(s.points().iter().all(|&(_, t)| t.is_finite()));
        }
        // The clamp floor itself is applied, not zero.
        let tiny = m.scaled(0.0);
        assert!((tiny.latency(1) - LatencyModel::MIN_SCALE).abs() < 1e-18);
    }

    #[test]
    fn gen_latency_model_evaluates_both_curves() {
        let g = GenLatencyModel {
            // 1 ms + ~10 us/token prefill.
            prefill: LatencyModel::from_points(vec![(1, 0.001), (1000, 0.011)]).unwrap(),
            // 3 ms step, nearly flat in batch.
            decode: LatencyModel::from_points(vec![(1, 0.003), (32, 0.0039)]).unwrap(),
        };
        assert!((g.prefill_s(1000) - 0.011).abs() < 1e-12);
        assert!(g.prefill_s(500) > g.prefill_s(10));
        assert!(g.decode_step_s(32) > g.decode_step_s(1));
        // Weight-streaming economics: 32 tokens per step cost far less
        // than 32 single-token steps.
        assert!(g.decode_step_s(32) < 4.0 * g.decode_step_s(1));
    }

    #[test]
    fn profile_real_app_is_monotone() {
        let app = zoo::mlp0();
        let chip = catalog::tpu_v4i();
        let m =
            LatencyModel::profile(&app, &chip, &CompilerOptions::default(), &[1, 8, 64]).unwrap();
        assert_eq!(m.points().len(), 3);
        assert!(m.latency(1) > 0.0);
        assert!(m.latency(64) >= m.latency(1));
        // Batching amortizes: latency grows sublinearly with batch.
        assert!(m.latency(64) < 64.0 * m.latency(1));
    }
}
