//! Serving metrics: counters and histograms threaded through the DES.
//!
//! Production serving systems live on exactly these signals (Lesson 10
//! is stated in terms of them): offered load, sheds, retries, batch-size
//! distribution, per-server busy time — and, once machines can fail,
//! availability accounting: faults injected/detected/recovered,
//! time-to-detect, time-to-recover, per-server downtime. The DES fills a
//! [`ServingMetrics`] as it runs and exposes it via
//! [`crate::des::ServingReport`].

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are defined by their inclusive upper bounds, plus an implicit
/// overflow bucket. Observation order does not matter: two histograms
/// with the same bounds fed the same multiset of values compare equal.
///
/// Empty-histogram behavior is defined, not incidental: `mean`, `max`,
/// and `quantile` all return 0 when no observation has been recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bound of each bucket, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    /// Sum of all observations (exact means for integral observations).
    sum: f64,
    /// Number of observations.
    n: u64,
    /// Largest observation seen; meaningless until `n > 0`.
    max: f64,
}

impl Histogram {
    /// Builds a histogram from explicit bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must strictly increase"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            n: 0,
            // NEG_INFINITY, not 0: a histogram of negative observations
            // must not report a max of 0 (`max()` guards the empty case).
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`count` buckets).
    ///
    /// # Panics
    ///
    /// Panics on `start <= 0`, `factor <= 1`, or `count == 0`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Histogram {
        assert!(
            start > 0.0 && factor > 1.0 && count > 0,
            "bad histogram spec"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        // Bounds strictly increase, so the number of bounds below the
        // value IS the bucket index (what partition_point would
        // return). A branchless count over <=16 f64s vectorizes and
        // beats binary search — this runs once per batch-member launch
        // in the DES hot loop.
        let idx = self
            .bounds
            .iter()
            .map(|&b| u64::from(value > b))
            .sum::<u64>() as usize;
        self.counts[idx] += 1;
        self.sum += value;
        self.n += 1;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Largest observation, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Upper bound of the bucket where the `q`-quantile falls, capped at
    /// the observed max (exact for the overflow bucket). `q` is clamped
    /// to [0, 1]; `q = 0.0` reports the lowest non-empty bucket's bound
    /// (capped at the max), `q = 1.0` the observed max. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = tpu_numerics::stats::nearest_rank(q, self.n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one **without re-observing raw
    /// samples**: per-bucket counts, the sum, the observation count, and
    /// the max all combine exactly, so merging per-cell histograms gives
    /// the same result as observing every value into one histogram
    /// (order invariance already holds per histogram).
    ///
    /// Merging an empty histogram is a no-op; merging *into* an empty
    /// one adopts the other's bucketing and moments (including the real
    /// max, not a fake 0). In both empty cases mismatched bounds are
    /// fine — no count has to be re-binned, so there is nothing to
    /// misbin (cells sized with different bucketings fold cleanly as
    /// long as at most one side has observations).
    ///
    /// # Panics
    ///
    /// Panics if both histograms hold observations and the bucket
    /// bounds differ — merging populated histograms with different
    /// bucketings would silently misbin counts.
    pub fn merge(&mut self, other: &Histogram) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.n += other.n;
        // Both maxes start at NEG_INFINITY, so the fold is exact for
        // every empty/non-empty combination.
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// `(upper_bound, count)` pairs; the final pair is the overflow
    /// bucket reported as `(f64::INFINITY, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

/// Everything the DES measures in one run.
///
/// Request accounting invariant (checked by the DES):
/// `arrivals == completed + shed_total + failed_permanent +
/// dropped_at_drain`, where [`ServingMetrics::shed_total`] counts
/// *permanently* shed requests and `failed_permanent` counts requests
/// permanently lost to server crashes (retries that ultimately succeed
/// appear in neither).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// Fresh requests offered to the system.
    pub arrivals: Counter,
    /// Queue admissions, including re-admissions of retried or
    /// failover-redistributed requests.
    pub admitted: Counter,
    /// Requests that finished service.
    pub completed: Counter,
    /// Completions whose end-to-end latency exceeded the deadline
    /// (served, counted in throughput, but not in goodput).
    pub completed_late: Counter,
    /// Shed events due to the admission-control queue cap.
    pub shed_queue_full: Counter,
    /// Shed events due to in-queue deadline expiry.
    pub shed_deadline: Counter,
    /// Shed events because no server was believed healthy.
    pub shed_no_capacity: Counter,
    /// Requests permanently shed (terminal sheds, all reasons).
    pub shed_permanent: Counter,
    /// Retries scheduled after a shed or an in-flight failure.
    pub retries: Counter,
    /// Requests permanently lost after exhausting their retry budget.
    pub retries_exhausted: Counter,
    /// Requests still queued when the simulation drained.
    pub dropped_at_drain: Counter,
    /// Crash and hang faults injected into servers.
    pub failures_injected: Counter,
    /// Slow-degrade faults injected into servers.
    pub degrades_injected: Counter,
    /// Failures the health checker noticed (server pulled from rotation).
    pub failures_detected: Counter,
    /// Servers that came back up after a crash or hang.
    pub failures_recovered: Counter,
    /// Requests whose in-flight batch was killed by a server crash
    /// (counted per request, before any retry).
    pub in_flight_failures: Counter,
    /// Requests permanently lost to server failures (the `failed`
    /// terminal state).
    pub failed_permanent: Counter,
    /// Queued requests drained off a believed-down server and offered to
    /// the surviving replicas.
    pub failover_redistributed: Counter,
    /// Discrete events the engine processed (heap pops). The denominator
    /// for ns-per-event perf baselines.
    pub events_processed: Counter,
    /// Output tokens generated by the decode loop (generation engine
    /// only; the per-token conservation identity checks this against
    /// the completed requests' sampled output lengths).
    pub tokens_generated: Counter,
    /// Prompt tokens prefilled at admission (generation engine only).
    pub tokens_prefilled: Counter,
    /// Decode steps executed (generation engine only).
    pub decode_steps: Counter,
    /// Admissions deferred because KV-cache residency would overflow
    /// HBM (one count per blocked scheduling boundary, not per request;
    /// generation engine only — the decode loop defers, never sheds).
    pub kv_deferrals: Counter,
    /// Peak KV-cache bytes resident at any decode-step boundary
    /// (generation engine only).
    pub kv_peak_bytes: u64,
    /// Distribution of formed batch sizes.
    pub batch_sizes: Histogram,
    /// Distribution of in-flight decode batch sizes, one observation
    /// per decode step (generation engine only).
    pub decode_batch: Histogram,
    /// Distribution of per-admission queue waiting time, seconds.
    pub queue_wait_s: Histogram,
    /// Fault injection → health-checker detection lag, seconds.
    pub time_to_detect_s: Histogram,
    /// Fault injection → server back in service, seconds.
    pub time_to_recover_s: Histogram,
    /// Busy time accumulated by each server, seconds.
    pub per_server_busy_s: Vec<f64>,
    /// Time each server spent Down or Recovering, seconds.
    pub per_server_down_s: Vec<f64>,
    /// Requests completed by each server.
    pub per_server_completed: Vec<u64>,
}

impl ServingMetrics {
    /// Fresh metrics for a pool of `servers`.
    pub fn new(servers: usize) -> ServingMetrics {
        ServingMetrics {
            arrivals: Counter::default(),
            admitted: Counter::default(),
            completed: Counter::default(),
            completed_late: Counter::default(),
            shed_queue_full: Counter::default(),
            shed_deadline: Counter::default(),
            shed_no_capacity: Counter::default(),
            shed_permanent: Counter::default(),
            retries: Counter::default(),
            retries_exhausted: Counter::default(),
            dropped_at_drain: Counter::default(),
            failures_injected: Counter::default(),
            degrades_injected: Counter::default(),
            failures_detected: Counter::default(),
            failures_recovered: Counter::default(),
            in_flight_failures: Counter::default(),
            failed_permanent: Counter::default(),
            failover_redistributed: Counter::default(),
            events_processed: Counter::default(),
            tokens_generated: Counter::default(),
            tokens_prefilled: Counter::default(),
            decode_steps: Counter::default(),
            kv_deferrals: Counter::default(),
            kv_peak_bytes: 0,
            // Powers of two cover any practical batch cap.
            batch_sizes: Histogram::exponential(1.0, 2.0, 14),
            decode_batch: Histogram::exponential(1.0, 2.0, 14),
            // 10 us .. ~80 s in x3 steps.
            queue_wait_s: Histogram::exponential(1e-5, 3.0, 16),
            // 100 us .. ~50 s in x3 steps (probe lags and repair times).
            time_to_detect_s: Histogram::exponential(1e-4, 3.0, 12),
            time_to_recover_s: Histogram::exponential(1e-4, 3.0, 12),
            per_server_busy_s: vec![0.0; servers],
            per_server_down_s: vec![0.0; servers],
            per_server_completed: vec![0; servers],
        }
    }

    /// Total permanently shed requests (terminal sheds; requests that
    /// were shed but later retried successfully are not counted).
    pub fn shed_total(&self) -> u64 {
        self.shed_permanent.get()
    }

    /// Folds another run's metrics into this one: counters add,
    /// histograms [`Histogram::merge`] (exact, no re-observation),
    /// `kv_peak_bytes` takes the max, and per-server vectors add
    /// elementwise (the shorter side is padded with zeros, so fleets
    /// whose server count changed between runs still fold).
    ///
    /// This is how per-cell metrics aggregate into a global report:
    /// the fold of N runs equals one run that saw all N runs' events.
    ///
    /// # Panics
    ///
    /// Panics if any histogram's bucket bounds differ (all metrics
    /// built by [`ServingMetrics::new`] share bounds).
    pub fn merge_from(&mut self, other: &ServingMetrics) {
        self.arrivals.add(other.arrivals.get());
        self.admitted.add(other.admitted.get());
        self.completed.add(other.completed.get());
        self.completed_late.add(other.completed_late.get());
        self.shed_queue_full.add(other.shed_queue_full.get());
        self.shed_deadline.add(other.shed_deadline.get());
        self.shed_no_capacity.add(other.shed_no_capacity.get());
        self.shed_permanent.add(other.shed_permanent.get());
        self.retries.add(other.retries.get());
        self.retries_exhausted.add(other.retries_exhausted.get());
        self.dropped_at_drain.add(other.dropped_at_drain.get());
        self.failures_injected.add(other.failures_injected.get());
        self.degrades_injected.add(other.degrades_injected.get());
        self.failures_detected.add(other.failures_detected.get());
        self.failures_recovered.add(other.failures_recovered.get());
        self.in_flight_failures.add(other.in_flight_failures.get());
        self.failed_permanent.add(other.failed_permanent.get());
        self.failover_redistributed
            .add(other.failover_redistributed.get());
        self.events_processed.add(other.events_processed.get());
        self.tokens_generated.add(other.tokens_generated.get());
        self.tokens_prefilled.add(other.tokens_prefilled.get());
        self.decode_steps.add(other.decode_steps.get());
        self.kv_deferrals.add(other.kv_deferrals.get());
        self.kv_peak_bytes = self.kv_peak_bytes.max(other.kv_peak_bytes);
        self.batch_sizes.merge(&other.batch_sizes);
        self.decode_batch.merge(&other.decode_batch);
        self.queue_wait_s.merge(&other.queue_wait_s);
        self.time_to_detect_s.merge(&other.time_to_detect_s);
        self.time_to_recover_s.merge(&other.time_to_recover_s);
        merge_padded(&mut self.per_server_busy_s, &other.per_server_busy_s);
        merge_padded(&mut self.per_server_down_s, &other.per_server_down_s);
        merge_padded(&mut self.per_server_completed, &other.per_server_completed);
    }

    /// Fraction of the run each server was available (not Down or
    /// Recovering), given the run duration.
    pub fn per_server_availability(&self, duration_s: f64) -> Vec<f64> {
        let d = duration_s.max(1e-12);
        self.per_server_down_s
            .iter()
            .map(|&down| (1.0 - down / d).clamp(0.0, 1.0))
            .collect()
    }
}

/// Elementwise `a[i] += b[i]`, growing `a` with zeros when `b` is
/// longer (server counts may differ across folded runs).
fn merge_padded<T>(a: &mut Vec<T>, b: &[T])
where
    T: Copy + Default + std::ops::AddAssign,
{
    if a.len() < b.len() {
        a.resize(b.len(), T::default());
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 21.2).abs() < 1e-12);
        assert_eq!(h.max(), 100.0);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(buckets[1], (2.0, 1)); // 1.5
        assert_eq!(buckets[2], (4.0, 1)); // 3.0
        assert_eq!(buckets[3], (f64::INFINITY, 1)); // 100.0
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::exponential(1.0, 2.0, 8);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        // p50 of 1..=100 lands in the (32, 64] bucket.
        assert_eq!(h.quantile(0.5), 64.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let e = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), 0.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(e.quantile(q), 0.0);
        }
    }

    #[test]
    fn quantile_clamps_q() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(7.0);
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn single_bucket_histogram() {
        // One explicit bucket plus the overflow bucket.
        let mut h = Histogram::with_bounds(vec![1.0]);
        h.observe(0.25);
        h.observe(5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 1.0); // in-bucket bound
        assert_eq!(h.quantile(1.0), 5.0); // overflow reports the max
        assert!((h.mean() - 2.625).abs() < 1e-12);
    }

    #[test]
    fn negative_observations_do_not_fake_a_zero_max() {
        // Regression: `max` was initialized to 0.0, so a histogram of
        // strictly negative observations reported max() == 0.
        let mut h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(-3.0);
        h.observe(-0.5);
        assert_eq!(h.max(), -0.5);
        assert_eq!(h.quantile(1.0), -0.5);
        assert_eq!(h.quantile(0.0), -0.5); // bucket bound capped at max
        assert!((h.mean() + 1.75).abs() < 1e-12);
    }

    #[test]
    fn order_invariance() {
        let mut a = Histogram::exponential(1.0, 2.0, 6);
        let mut b = Histogram::exponential(1.0, 2.0, 6);
        let vals = [3.0, 1.0, 7.5, 0.1, 42.0];
        for v in vals {
            a.observe(v);
        }
        for v in vals.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn bad_bounds_panic() {
        Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn metrics_shed_total_counts_terminal_sheds() {
        let mut m = ServingMetrics::new(2);
        m.shed_queue_full.add(5);
        m.shed_deadline.add(2);
        m.retries.add(4);
        m.shed_permanent.add(3);
        assert_eq!(m.shed_total(), 3);
        assert_eq!(m.per_server_busy_s.len(), 2);
        assert_eq!(m.per_server_down_s.len(), 2);
        assert_eq!(m.per_server_completed.len(), 2);
    }

    #[test]
    fn merge_equals_observing_everything_once() {
        // The defining property: merge(A, B) == observe(A ∪ B), bucket
        // by bucket and moment by moment.
        let mut a = Histogram::exponential(1e-3, 2.0, 10);
        let mut b = Histogram::exponential(1e-3, 2.0, 10);
        let mut whole = Histogram::exponential(1e-3, 2.0, 10);
        let va = [0.002, 0.5, 7.0, 0.0001];
        let vb = [0.9, 0.004, 123.0];
        for v in va {
            a.observe(v);
            whole.observe(v);
        }
        for v in vb {
            b.observe(v);
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 7);
        assert_eq!(a.max(), 123.0);
        let merged: Vec<_> = a.buckets().collect();
        let direct: Vec<_> = whole.buckets().collect();
        assert_eq!(merged, direct);
    }

    #[test]
    fn merge_empty_cases() {
        let empty = Histogram::with_bounds(vec![1.0, 2.0]);
        // empty ∪ empty stays empty and well-defined.
        let mut e = empty.clone();
        e.merge(&empty);
        assert_eq!(e.count(), 0);
        assert_eq!(e.max(), 0.0);
        assert_eq!(e.quantile(0.99), 0.0);
        // non-empty ∪ empty is a no-op.
        let mut h = empty.clone();
        h.observe(1.5);
        let before = h.clone();
        h.merge(&empty);
        assert_eq!(h, before);
        // empty ∪ non-empty copies the real max — including a negative
        // one (the NEG_INFINITY sentinel must not leak a fake 0).
        let mut neg = empty.clone();
        neg.observe(-2.0);
        let mut e2 = empty.clone();
        e2.merge(&neg);
        assert_eq!(e2, neg);
        assert_eq!(e2.max(), -2.0);
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        // Both populated: re-binning would be lossy, so this must panic.
        let mut a = Histogram::with_bounds(vec![1.0, 2.0]);
        let mut b = Histogram::with_bounds(vec![1.0, 3.0]);
        a.observe(0.5);
        b.observe(2.5);
        a.merge(&b);
    }

    #[test]
    fn merge_empty_with_mismatched_bounds_is_safe() {
        // Regression (PR 10): merging when either side is empty used to
        // panic on mismatched bucket maxes even though no count needs
        // re-binning. An empty `other` is a no-op; an empty `self`
        // adopts the other's bucketing and moments exactly.
        let mut a = Histogram::with_bounds(vec![1.0, 2.0]);
        a.observe(1.5);
        a.observe(0.25);
        let before = a.clone();
        let empty_other = Histogram::with_bounds(vec![1.0, 3.0]);
        a.merge(&empty_other);
        assert_eq!(a, before, "empty other must be a no-op");

        let mut empty_self = Histogram::with_bounds(vec![4.0, 8.0]);
        empty_self.merge(&a);
        assert_eq!(empty_self, a, "empty self adopts the other wholesale");
        assert_eq!(empty_self.count(), 2);
        assert_eq!(empty_self.max(), 1.5);

        // Empty ∪ empty with mismatched maxes stays empty and sane.
        let mut e = Histogram::with_bounds(vec![1.0, 2.0]);
        e.merge(&Histogram::with_bounds(vec![1.0, 3.0]));
        assert_eq!(e.count(), 0);
        assert_eq!(e.max(), 0.0);
    }

    #[test]
    fn metrics_fold_adds_counters_and_pads_servers() {
        let mut a = ServingMetrics::new(2);
        a.arrivals.add(10);
        a.completed.add(8);
        a.kv_peak_bytes = 100;
        a.batch_sizes.observe(4.0);
        a.per_server_busy_s[0] = 1.5;
        a.per_server_completed[1] = 8;
        let mut b = ServingMetrics::new(3);
        b.arrivals.add(5);
        b.completed.add(5);
        b.kv_peak_bytes = 70;
        b.batch_sizes.observe(4.0);
        b.batch_sizes.observe(2.0);
        b.per_server_busy_s[2] = 0.5;
        b.per_server_completed[2] = 5;
        a.merge_from(&b);
        assert_eq!(a.arrivals.get(), 15);
        assert_eq!(a.completed.get(), 13);
        // Peak is a max, not a sum.
        assert_eq!(a.kv_peak_bytes, 100);
        assert_eq!(a.batch_sizes.count(), 3);
        assert!((a.batch_sizes.sum() - 10.0).abs() < 1e-12);
        // Shorter per-server vectors grew to cover b's third server.
        assert_eq!(a.per_server_busy_s, vec![1.5, 0.0, 0.5]);
        assert_eq!(a.per_server_completed, vec![0, 8, 5]);
    }

    #[test]
    fn metrics_fold_is_associative_on_counts() {
        let mk = |n: u64| {
            let mut m = ServingMetrics::new(1);
            m.arrivals.add(n);
            m.queue_wait_s.observe(n as f64 * 1e-4);
            m
        };
        let (x, y, z) = (mk(1), mk(2), mk(3));
        let mut left = x.clone();
        left.merge_from(&y);
        left.merge_from(&z);
        let mut yz = y.clone();
        yz.merge_from(&z);
        let mut right = x;
        right.merge_from(&yz);
        assert_eq!(left, right);
    }

    #[test]
    fn availability_from_downtime() {
        let mut m = ServingMetrics::new(2);
        m.per_server_down_s[1] = 2.5;
        let a = m.per_server_availability(10.0);
        assert_eq!(a[0], 1.0);
        assert!((a[1] - 0.75).abs() < 1e-12);
    }
}
