//! Serving metrics: counters and histograms threaded through the DES.
//!
//! Production serving systems live on exactly these signals (Lesson 10
//! is stated in terms of them): offered load, sheds, retries, batch-size
//! distribution, per-server busy time. The DES fills a
//! [`ServingMetrics`] as it runs and exposes it via
//! [`crate::des::ServingReport`].

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are defined by their inclusive upper bounds, plus an implicit
/// overflow bucket. Observation order does not matter: two histograms
/// with the same bounds fed the same multiset of values compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bound of each bucket, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    /// Sum of all observations (exact means for integral observations).
    sum: f64,
    /// Number of observations.
    n: u64,
    /// Largest observation seen.
    max: f64,
}

impl Histogram {
    /// Builds a histogram from explicit bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must strictly increase"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            n: 0,
            max: 0.0,
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`count` buckets).
    ///
    /// # Panics
    ///
    /// Panics on `start <= 0`, `factor <= 1`, or `count == 0`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Histogram {
        assert!(
            start > 0.0 && factor > 1.0 && count > 0,
            "bad histogram spec"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.n += 1;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Largest observation, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper bound of the bucket where the `q`-quantile falls, capped at
    /// the observed max (exact for the overflow bucket). `q` is clamped
    /// to [0, 1]. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// `(upper_bound, count)` pairs; the final pair is the overflow
    /// bucket reported as `(f64::INFINITY, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

/// Everything the DES measures in one run.
///
/// Request accounting invariant (checked by the DES):
/// `arrivals == completed + shed_total + dropped_at_drain`, where
/// `shed_total` counts *permanently* lost requests (retries that
/// ultimately succeed are not sheds).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// Fresh requests offered to the system.
    pub arrivals: Counter,
    /// Queue admissions, including re-admissions of retried requests.
    pub admitted: Counter,
    /// Requests that finished service.
    pub completed: Counter,
    /// Completions whose end-to-end latency exceeded the deadline
    /// (served, counted in throughput, but not in goodput).
    pub completed_late: Counter,
    /// Shed events due to the admission-control queue cap.
    pub shed_queue_full: Counter,
    /// Shed events due to in-queue deadline expiry.
    pub shed_deadline: Counter,
    /// Retries scheduled after a shed.
    pub retries: Counter,
    /// Requests permanently lost after exhausting their retry budget.
    pub retries_exhausted: Counter,
    /// Requests still queued when the simulation drained.
    pub dropped_at_drain: Counter,
    /// Distribution of formed batch sizes.
    pub batch_sizes: Histogram,
    /// Distribution of per-admission queue waiting time, seconds.
    pub queue_wait_s: Histogram,
    /// Busy time accumulated by each server, seconds.
    pub per_server_busy_s: Vec<f64>,
}

impl ServingMetrics {
    /// Fresh metrics for a pool of `servers`.
    pub fn new(servers: usize) -> ServingMetrics {
        ServingMetrics {
            arrivals: Counter::default(),
            admitted: Counter::default(),
            completed: Counter::default(),
            completed_late: Counter::default(),
            shed_queue_full: Counter::default(),
            shed_deadline: Counter::default(),
            retries: Counter::default(),
            retries_exhausted: Counter::default(),
            dropped_at_drain: Counter::default(),
            // Powers of two cover any practical batch cap.
            batch_sizes: Histogram::exponential(1.0, 2.0, 14),
            // 10 us .. ~80 s in x3 steps.
            queue_wait_s: Histogram::exponential(1e-5, 3.0, 16),
            per_server_busy_s: vec![0.0; servers],
        }
    }

    /// Total permanently shed requests.
    pub fn shed_total(&self) -> u64 {
        // A request is permanently lost when its final shed event is not
        // followed by a retry. `retries` counts re-admissions, so:
        // permanent = shed events - retries scheduled.
        (self.shed_queue_full.get() + self.shed_deadline.get()) - self.retries.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 21.2).abs() < 1e-12);
        assert_eq!(h.max(), 100.0);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 2)); // 0.5, 1.0
        assert_eq!(buckets[1], (2.0, 1)); // 1.5
        assert_eq!(buckets[2], (4.0, 1)); // 3.0
        assert_eq!(buckets[3], (f64::INFINITY, 1)); // 100.0
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::exponential(1.0, 2.0, 8);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        // p50 of 1..=100 lands in the (32, 64] bucket.
        assert_eq!(h.quantile(0.5), 64.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // Empty histogram.
        let e = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(e.quantile(0.5), 0.0);
    }

    #[test]
    fn order_invariance() {
        let mut a = Histogram::exponential(1.0, 2.0, 6);
        let mut b = Histogram::exponential(1.0, 2.0, 6);
        let vals = [3.0, 1.0, 7.5, 0.1, 42.0];
        for v in vals {
            a.observe(v);
        }
        for v in vals.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn bad_bounds_panic() {
        Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn metrics_shed_total() {
        let mut m = ServingMetrics::new(2);
        m.shed_queue_full.add(5);
        m.shed_deadline.add(2);
        m.retries.add(4);
        assert_eq!(m.shed_total(), 3);
        assert_eq!(m.per_server_busy_s.len(), 2);
    }
}
