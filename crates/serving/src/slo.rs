//! SLO-constrained search: Lesson 10 quantified.
//!
//! "Applications limit latency, not batch size": the interesting
//! operating point of an inference accelerator is the largest batch (and
//! the highest arrival rate) at which the p99 latency still meets the
//! application's SLO. These searches regenerate experiment E8.

use crate::des::{simulate, ServingConfig, ServingReport};
use crate::latency::LatencyModel;

/// The largest batch size whose *service latency alone* meets the SLO
/// (an upper bound for any serving policy), or `None` if even batch 1
/// misses it.
pub fn max_batch_within_slo(latency: &LatencyModel, slo_s: f64, limit: u64) -> Option<u64> {
    if latency.latency(1) > slo_s {
        return None;
    }
    let mut best = 1;
    let mut b = 1u64;
    while b <= limit {
        if latency.latency(b) <= slo_s {
            best = b;
        } else {
            break;
        }
        // Saturating doubling: with `limit` near `u64::MAX` the probe
        // passes `u64::MAX / 2` and a plain `b *= 2` overflows (panics
        // in debug builds). Saturation also terminates the loop: once
        // `b` pins at `u64::MAX` it stops growing.
        let next = b.saturating_mul(2);
        if next == b {
            break;
        }
        b = next;
    }
    // Refine between best and 2*best by binary search. The midpoint is
    // computed as `lo + ceil((hi - lo) / 2)` — algebraically equal to
    // `ceil((lo + hi) / 2)` but immune to `lo + hi` overflowing.
    let (mut lo, mut hi) = (best, best.saturating_mul(2).min(limit));
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if latency.latency(mid) <= slo_s {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Result of the throughput-under-SLO search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloThroughput {
    /// Highest sustainable arrival rate meeting the SLO, requests/s.
    pub max_rps: f64,
    /// The serving report at that rate.
    pub report: ServingReport,
    /// The batch cap used.
    pub max_batch: u64,
}

/// Finds the highest Poisson arrival rate whose simulated p99 meets
/// `slo_s`, by bisection over the rate.
///
/// `max_batch` caps batch formation (use [`max_batch_within_slo`] to
/// pick it); `requests` controls simulation length (more = tighter p99).
///
/// When no probed rate meets the SLO, `max_rps` is 0 and the returned
/// report is the one simulated at the bisection's floor rate (the
/// lowest rate the search can probe) — its `p99_s` exceeds `slo_s`,
/// documenting the miss. The pair is always consistent: the report
/// belongs to the returned rate, never to an unrelated bootstrap run.
pub fn max_throughput_under_slo(
    latency: &LatencyModel,
    slo_s: f64,
    max_batch: u64,
    requests: usize,
    seed: u64,
) -> SloThroughput {
    let cfg = |rate: f64| ServingConfig {
        arrival_rate_rps: rate,
        max_batch,
        // Wait at most a fraction of the SLO for a batch to fill.
        batch_timeout_s: slo_s * 0.1,
        requests,
        seed,
    };
    // The lowest rate any probe runs at (the bisection clamps to it).
    let floor_rate = 1e-3;
    // Upper bound: ideal service rate at the capped batch.
    let mut hi = latency.throughput(max_batch) * 1.05;
    let mut lo = 0.0f64;
    let mut best_rate = 0.0;
    let mut best_report: Option<ServingReport> = None;
    for _ in 0..18 {
        let mid = (lo + hi) / 2.0;
        // The rate is clamped positive and every other knob is fixed
        // and sane, so validation cannot fail here.
        let r = simulate(latency, &cfg(mid.max(floor_rate))).expect("valid search config");
        if r.p99_s <= slo_s {
            best_rate = mid;
            best_report = Some(r);
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let report = best_report.unwrap_or_else(|| {
        // Nothing met the SLO: report the floor-rate run so the
        // returned (rate, report) pair is consistent.
        simulate(latency, &cfg(floor_rate)).expect("valid search config")
    });
    SloThroughput {
        max_rps: best_rate,
        report,
        max_batch,
    }
}

/// Fleet capacity derated for availability **and** correlated cell
/// loss: how many replicas a fleet needs so that `required_rps` is
/// still served when the expected fraction of machines is down *and*
/// the largest failure domain is lost outright.
///
/// `per_server_rps` is one replica's sustainable rate (e.g.
/// [`SloThroughput::max_rps`]); `availability` is the per-server uptime
/// fraction (e.g. from
/// [`crate::metrics::ServingMetrics::per_server_availability`]). N+1
/// sizing falls out naturally: at 0.999 availability the derate is tiny,
/// at 0.9 a 10-replica fleet needs an 11th.
///
/// `cells` is the number of correlated failure domains the fleet is
/// spread over as evenly as possible (see [`crate::fleet`]): replica
/// failures *within* a cell are independent, but a whole cell — power
/// feed, cooling plant, network spine — can be lost at once. With
/// `cells <= 1` there is no correlated term and the formula reduces to
/// the classic independent-availability sizing (the pinned legacy
/// behavior). With `cells >= 2` the fleet is sized so the survivors
/// still meet `required_rps` after losing the largest cell
/// (`ceil(n / cells)` replicas): the smallest `n` with
/// `n - ceil(n / cells) >= ceil(required / effective)`. Two cells give
/// the classic 2N provisioning; many small cells approach the
/// independent-failure answer from above.
///
/// Returns 0 if `required_rps` is non-positive; saturates to `u64::MAX`
/// replicas when `availability` or `per_server_rps` is non-positive.
pub fn replicas_for_rate(
    required_rps: f64,
    per_server_rps: f64,
    availability: f64,
    cells: usize,
) -> u64 {
    if required_rps <= 0.0 {
        return 0;
    }
    let effective = per_server_rps * availability.clamp(0.0, 1.0);
    if effective <= 0.0 || effective.is_nan() {
        return u64::MAX;
    }
    let base = (required_rps / effective).ceil() as u64;
    if cells <= 1 {
        return base;
    }
    // Survivors of losing the largest of `c` near-equal cells:
    // n - ceil(n/c) = floor(n*(c-1)/c), so the smallest n with
    // floor(n*(c-1)/c) >= base is n = ceil(base*c / (c-1)).
    // u128 keeps base*c exact out to the u64::MAX saturation point.
    let c = cells as u128;
    let n = (base as u128 * c).div_ceil(c - 1);
    u64::try_from(n).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        // 2 ms fixed + 0.1 ms per item.
        LatencyModel::from_points(vec![(1, 0.0021), (200, 0.022)]).unwrap()
    }

    #[test]
    fn max_batch_math() {
        let m = model();
        // latency(b) = 2 + 0.1b ms <= 10 ms → b <= 80.
        let b = max_batch_within_slo(&m, 0.010, 1024).unwrap();
        assert!((75..=85).contains(&b), "{b}");
        // SLO below batch-1 latency: impossible.
        assert_eq!(max_batch_within_slo(&m, 0.001, 1024), None);
        // Limit caps the answer.
        assert_eq!(max_batch_within_slo(&m, 0.010, 16), Some(16));
    }

    #[test]
    fn max_batch_survives_huge_limits() {
        // Regression: `b *= 2` (and `best * 2`) overflowed u64 once the
        // doubling probe passed u64::MAX / 2, panicking in debug builds.
        let m = model();
        // Finite answer, absurd limit: the doubling must stop at the SLO
        // boundary without ever overflowing.
        let b = max_batch_within_slo(&m, 0.010, u64::MAX).unwrap();
        assert!((75..=85).contains(&b), "{b}");
        // A constant-latency model under its SLO never fails the probe,
        // so the doubling runs all the way up: it must saturate, not
        // wrap, and report the limit.
        let flat = LatencyModel::from_points(vec![(1, 0.001), (2, 0.001)]).unwrap();
        assert_eq!(max_batch_within_slo(&flat, 0.010, u64::MAX), Some(u64::MAX));
        assert_eq!(
            max_batch_within_slo(&flat, 0.010, u64::MAX / 2 + 7),
            Some(u64::MAX / 2 + 7)
        );
    }

    #[test]
    fn impossible_slo_returns_consistent_pair() {
        // Regression: with no probe meeting the SLO, the report stayed
        // the rate-1.0 bootstrap while max_rps said 0 — an inconsistent
        // pair. Now the report is the floor-rate probe and its p99
        // documents the miss.
        let m = model();
        // SLO far below batch-1 service latency: nothing can meet it.
        let slo = 1e-6;
        let r = max_throughput_under_slo(&m, slo, 16, 200, 3);
        assert_eq!(r.max_rps, 0.0);
        assert!(
            r.report.p99_s > slo,
            "the returned report must document the SLO miss"
        );
        // The report corresponds to the floor probe rate (~1e-3 rps),
        // not the old rate-1.0 bootstrap.
        assert!(
            r.report.throughput_rps < 0.01,
            "throughput {} should be near the 1e-3 floor rate",
            r.report.throughput_rps
        );
    }

    #[test]
    fn tighter_slo_means_smaller_batch() {
        let m = model();
        let loose = max_batch_within_slo(&m, 0.020, 1024).unwrap();
        let tight = max_batch_within_slo(&m, 0.005, 1024).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn throughput_search_meets_slo() {
        let m = model();
        let slo = 0.015;
        let cap = max_batch_within_slo(&m, slo, 1024).unwrap();
        let r = max_throughput_under_slo(&m, slo, cap, 3000, 11);
        assert!(r.report.p99_s <= slo, "p99 {} > slo {slo}", r.report.p99_s);
        assert!(r.max_rps > 0.0);
        // Should achieve a decent fraction of ideal capacity.
        let ideal = m.throughput(cap);
        assert!(
            r.max_rps > 0.3 * ideal,
            "rate {} vs ideal {ideal}",
            r.max_rps
        );
    }

    #[test]
    fn availability_derated_fleet_sizing() {
        // Regression pin: at 1 cell (no correlated domain) the answers
        // are exactly the legacy independent-availability sizing.
        // 10k rps on 1k-rps replicas: 10 at perfect availability.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0, 1), 10);
        // At 0.9 availability the fleet needs N+2 (10/0.9 = 11.1 -> 12).
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.9, 1), 12);
        // Three nines barely moves it.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.999, 1), 11);
        // 0 cells is treated as "no correlated domain" too.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.9, 0), 12);
        // Degenerate inputs stay well-defined.
        assert_eq!(replicas_for_rate(0.0, 1000.0, 1.0, 1), 0);
        assert_eq!(replicas_for_rate(100.0, 0.0, 1.0, 1), u64::MAX);
        assert_eq!(replicas_for_rate(100.0, 1000.0, 0.0, 1), u64::MAX);
        assert_eq!(replicas_for_rate(100.0, 1000.0, 0.0, 4), u64::MAX);
    }

    #[test]
    fn correlated_cell_loss_derates_capacity() {
        // 10 replicas' worth of load spread over 2 cells: losing one of
        // the two cells halves the fleet, so the sizing doubles (2N).
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0, 2), 20);
        // 3 cells: n = ceil(10*3/2) = 15; losing the largest cell
        // (ceil(15/3) = 5) leaves exactly 10.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0, 3), 15);
        // Many small cells approach the independent answer from above.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0, 10), 12);
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0, 100), 11);
        // The per-server availability derate composes with the cell
        // term: base = ceil(10/0.9) = 12, then ceil(12*3/2) = 18.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.9, 3), 18);
    }

    #[test]
    fn cell_sized_fleet_survives_largest_cell_loss() {
        // The defining property, checked directly: after losing the
        // largest of `cells` near-equal cells, the survivors still meet
        // the required rate — and one fewer replica would not.
        for cells in 2..=8usize {
            for base_load in [1u64, 3, 7, 10, 23, 100] {
                let required = base_load as f64 * 1000.0;
                let n = replicas_for_rate(required, 1000.0, 1.0, cells);
                let survivors = n - n.div_ceil(cells as u64);
                assert!(
                    survivors as f64 * 1000.0 >= required,
                    "cells={cells} load={base_load}: {n} replicas leave {survivors}"
                );
                let fewer = n - 1;
                let fewer_survivors = fewer - fewer.div_ceil(cells as u64);
                assert!(
                    (fewer_survivors as f64 * 1000.0) < required,
                    "cells={cells} load={base_load}: {n} is not minimal"
                );
            }
        }
    }

    #[test]
    fn tighter_slo_means_lower_throughput() {
        let m = model();
        let loose = max_throughput_under_slo(&m, 0.020, 128, 2000, 5);
        let tight = max_throughput_under_slo(&m, 0.004, 16, 2000, 5);
        assert!(
            tight.max_rps < loose.max_rps,
            "tight {} vs loose {}",
            tight.max_rps,
            loose.max_rps
        );
    }
}
