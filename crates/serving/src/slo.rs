//! SLO-constrained search: Lesson 10 quantified.
//!
//! "Applications limit latency, not batch size": the interesting
//! operating point of an inference accelerator is the largest batch (and
//! the highest arrival rate) at which the p99 latency still meets the
//! application's SLO. These searches regenerate experiment E8.

use crate::des::{simulate, ServingConfig, ServingReport};
use crate::latency::LatencyModel;

/// The largest batch size whose *service latency alone* meets the SLO
/// (an upper bound for any serving policy), or `None` if even batch 1
/// misses it.
pub fn max_batch_within_slo(latency: &LatencyModel, slo_s: f64, limit: u64) -> Option<u64> {
    if latency.latency(1) > slo_s {
        return None;
    }
    let mut best = 1;
    let mut b = 1u64;
    while b <= limit {
        if latency.latency(b) <= slo_s {
            best = b;
        } else {
            break;
        }
        b *= 2;
    }
    // Refine between best and 2*best by binary search.
    let (mut lo, mut hi) = (best, (best * 2).min(limit));
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if latency.latency(mid) <= slo_s {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Result of the throughput-under-SLO search.
#[derive(Debug, Clone, PartialEq)]
pub struct SloThroughput {
    /// Highest sustainable arrival rate meeting the SLO, requests/s.
    pub max_rps: f64,
    /// The serving report at that rate.
    pub report: ServingReport,
    /// The batch cap used.
    pub max_batch: u64,
}

/// Finds the highest Poisson arrival rate whose simulated p99 meets
/// `slo_s`, by bisection over the rate.
///
/// `max_batch` caps batch formation (use [`max_batch_within_slo`] to
/// pick it); `requests` controls simulation length (more = tighter p99).
pub fn max_throughput_under_slo(
    latency: &LatencyModel,
    slo_s: f64,
    max_batch: u64,
    requests: usize,
    seed: u64,
) -> SloThroughput {
    let cfg = |rate: f64| ServingConfig {
        arrival_rate_rps: rate,
        max_batch,
        // Wait at most a fraction of the SLO for a batch to fill.
        batch_timeout_s: slo_s * 0.1,
        requests,
        seed,
    };
    // Upper bound: ideal service rate at the capped batch.
    let mut hi = latency.throughput(max_batch) * 1.05;
    let mut lo = 0.0f64;
    let mut best_rate = 0.0;
    // The rate is clamped positive and every other knob is fixed and
    // sane, so validation cannot fail here.
    let mut best_report = simulate(latency, &cfg(1.0)).expect("valid search config");
    for _ in 0..18 {
        let mid = (lo + hi) / 2.0;
        let r = simulate(latency, &cfg(mid.max(1e-3))).expect("valid search config");
        if r.p99_s <= slo_s {
            best_rate = mid;
            best_report = r;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    SloThroughput {
        max_rps: best_rate,
        report: best_report,
        max_batch,
    }
}

/// Fleet capacity derated for availability: how many replicas a fleet
/// needs so that `required_rps` is still served when the expected
/// fraction of machines is down.
///
/// `per_server_rps` is one replica's sustainable rate (e.g.
/// [`SloThroughput::max_rps`]); `availability` is the per-server uptime
/// fraction (e.g. from
/// [`crate::metrics::ServingMetrics::per_server_availability`]). N+1
/// sizing falls out naturally: at 0.999 availability the derate is tiny,
/// at 0.9 a 10-replica fleet needs an 11th.
///
/// Returns 0 if `required_rps` is non-positive; saturates to `u64::MAX`
/// replicas when `availability` or `per_server_rps` is non-positive.
pub fn replicas_for_rate(required_rps: f64, per_server_rps: f64, availability: f64) -> u64 {
    if required_rps <= 0.0 {
        return 0;
    }
    let effective = per_server_rps * availability.clamp(0.0, 1.0);
    if effective <= 0.0 || effective.is_nan() {
        return u64::MAX;
    }
    (required_rps / effective).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        // 2 ms fixed + 0.1 ms per item.
        LatencyModel::from_points(vec![(1, 0.0021), (200, 0.022)]).unwrap()
    }

    #[test]
    fn max_batch_math() {
        let m = model();
        // latency(b) = 2 + 0.1b ms <= 10 ms → b <= 80.
        let b = max_batch_within_slo(&m, 0.010, 1024).unwrap();
        assert!((75..=85).contains(&b), "{b}");
        // SLO below batch-1 latency: impossible.
        assert_eq!(max_batch_within_slo(&m, 0.001, 1024), None);
        // Limit caps the answer.
        assert_eq!(max_batch_within_slo(&m, 0.010, 16), Some(16));
    }

    #[test]
    fn tighter_slo_means_smaller_batch() {
        let m = model();
        let loose = max_batch_within_slo(&m, 0.020, 1024).unwrap();
        let tight = max_batch_within_slo(&m, 0.005, 1024).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn throughput_search_meets_slo() {
        let m = model();
        let slo = 0.015;
        let cap = max_batch_within_slo(&m, slo, 1024).unwrap();
        let r = max_throughput_under_slo(&m, slo, cap, 3000, 11);
        assert!(r.report.p99_s <= slo, "p99 {} > slo {slo}", r.report.p99_s);
        assert!(r.max_rps > 0.0);
        // Should achieve a decent fraction of ideal capacity.
        let ideal = m.throughput(cap);
        assert!(
            r.max_rps > 0.3 * ideal,
            "rate {} vs ideal {ideal}",
            r.max_rps
        );
    }

    #[test]
    fn availability_derated_fleet_sizing() {
        // 10k rps on 1k-rps replicas: 10 at perfect availability.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 1.0), 10);
        // At 0.9 availability the fleet needs N+2 (10/0.9 = 11.1 -> 12).
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.9), 12);
        // Three nines barely moves it.
        assert_eq!(replicas_for_rate(10_000.0, 1000.0, 0.999), 11);
        // Degenerate inputs stay well-defined.
        assert_eq!(replicas_for_rate(0.0, 1000.0, 1.0), 0);
        assert_eq!(replicas_for_rate(100.0, 0.0, 1.0), u64::MAX);
        assert_eq!(replicas_for_rate(100.0, 1000.0, 0.0), u64::MAX);
    }

    #[test]
    fn tighter_slo_means_lower_throughput() {
        let m = model();
        let loose = max_throughput_under_slo(&m, 0.020, 128, 2000, 5);
        let tight = max_throughput_under_slo(&m, 0.004, 16, 2000, 5);
        assert!(
            tight.max_rps < loose.max_rps,
            "tight {} vs loose {}",
            tight.max_rps,
            loose.max_rps
        );
    }
}
