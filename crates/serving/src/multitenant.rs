//! Multi-tenant serving: several models on one accelerator (Lesson 7).
//!
//! Production inference pools host many models per chip. The paper's
//! argument for big HBM and for CMEM partitioning: if every tenant's
//! weights stay resident in HBM, switching tenants is (nearly) free; if
//! not, each switch re-loads weights over the host link, and tail
//! latency collapses. Experiment E11 sweeps the tenant count through
//! this module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tpu_arch::ChipConfig;

use crate::latency::LatencyModel;
use crate::stats::LatencyStats;

/// One tenant model resident (or not) on the chip.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name.
    pub name: String,
    /// Batch→latency curve of the tenant's model on this chip.
    pub latency: LatencyModel,
    /// Weight footprint in bytes (HBM residency).
    pub weight_bytes: u64,
    /// This tenant's Poisson arrival rate, requests/s.
    pub arrival_rate_rps: f64,
}

/// Configuration of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Largest batch per tenant dispatch.
    pub max_batch: u64,
    /// Batch formation timeout, seconds.
    pub batch_timeout_s: f64,
    /// Total requests to simulate (across tenants).
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
    /// Host-link bandwidth for weight swaps, bytes/s (PCIe-class).
    pub host_link_bps: f64,
}

impl Default for MultiTenantConfig {
    fn default() -> MultiTenantConfig {
        MultiTenantConfig {
            max_batch: 16,
            batch_timeout_s: 0.002,
            requests: 4000,
            seed: 7,
            host_link_bps: 16e9,
        }
    }
}

/// Result of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Per-tenant latency statistics, in tenant order.
    pub per_tenant: Vec<LatencyStats>,
    /// Aggregate latency statistics.
    pub aggregate: LatencyStats,
    /// Aggregate throughput, requests/s.
    pub throughput_rps: f64,
    /// Whether every tenant's weights fit HBM simultaneously.
    pub all_resident: bool,
    /// Number of weight swaps that occurred.
    pub swaps: usize,
    /// Time spent swapping weights, seconds.
    pub swap_seconds: f64,
}

impl MultiTenantReport {
    /// Worst per-tenant p99 (the fairness metric of E11).
    pub fn worst_p99_s(&self) -> f64 {
        self.per_tenant
            .iter()
            .map(|s| s.p99_s)
            .fold(0.0f64, f64::max)
    }
}

/// Runs the multi-tenant serving simulation.
///
/// Scheduling: when the chip is free, serve the tenant with the oldest
/// queued request (FIFO across tenants, batching within a tenant). If
/// the sum of weights exceeds HBM, tenants are kept resident LRU and a
/// non-resident dispatch first pays `weights / host_link_bps`.
pub fn simulate_tenants(
    chip: &ChipConfig,
    tenants: &[Tenant],
    cfg: &MultiTenantConfig,
) -> MultiTenantReport {
    assert!(!tenants.is_empty(), "need at least one tenant");
    let hbm = chip.hbm.capacity_bytes;
    let total_weights: u64 = tenants.iter().map(|t| t.weight_bytes).sum();
    let all_resident = total_weights <= hbm;

    // Pre-draw arrivals for each tenant, then merge.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let per_tenant_requests = (cfg.requests / tenants.len()).max(1);
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    for (ti, t) in tenants.iter().enumerate() {
        let mut time = 0.0f64;
        for _ in 0..per_tenant_requests {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            time += -u.ln() / t.arrival_rate_rps.max(1e-9);
            arrivals.push((time, ti));
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Residency: LRU set sized by capacity.
    let mut resident: Vec<usize> = Vec::new(); // most-recent last
    let mut resident_bytes = 0u64;

    let mut queues: Vec<Vec<f64>> = vec![Vec::new(); tenants.len()];
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); tenants.len()];
    let mut swaps = 0usize;
    let mut swap_seconds = 0.0f64;

    // Sequential single-server loop: between dispatches, drain arrivals.
    loop {
        // Ingest everything that has arrived by `now`.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now {
            let (at, ti) = arrivals[next_arrival];
            queues[ti].push(at);
            next_arrival += 1;
        }
        let any_queued = queues.iter().any(|q| !q.is_empty());
        if !any_queued {
            if next_arrival >= arrivals.len() {
                break;
            }
            now = arrivals[next_arrival].0;
            continue;
        }
        // Pick the tenant with the oldest queued request.
        let ti = (0..tenants.len())
            .filter(|&i| !queues[i].is_empty())
            .min_by(|&a, &b| queues[a][0].total_cmp(&queues[b][0]))
            .expect("some queue nonempty");
        // Wait for batch formation: until max_batch queued or timeout
        // after the oldest arrival (bounded by `now`, which only moves
        // forward).
        let oldest = queues[ti][0];
        let deadline = oldest + cfg.batch_timeout_s;
        if (queues[ti].len() as u64) < cfg.max_batch && now < deadline {
            // Advance to the earlier of: deadline, next arrival.
            let next_t = arrivals
                .get(next_arrival)
                .map(|&(t, _)| t)
                .unwrap_or(f64::INFINITY);
            now = deadline.min(next_t);
            continue;
        }
        // Dispatch.
        let take = (queues[ti].len() as u64).min(cfg.max_batch) as usize;
        let batch: Vec<f64> = queues[ti].drain(..take).collect();
        // Residency / swap cost.
        if !resident.contains(&ti) {
            let need = tenants[ti].weight_bytes;
            if !all_resident {
                // Evict LRU until it fits, then pay the transfer.
                while resident_bytes + need > hbm && !resident.is_empty() {
                    let evicted = resident.remove(0);
                    resident_bytes -= tenants[evicted].weight_bytes;
                }
                let cost = need as f64 / cfg.host_link_bps;
                now += cost;
                swap_seconds += cost;
                swaps += 1;
            }
            resident.push(ti);
            resident_bytes += need;
        } else {
            // Refresh LRU position.
            resident.retain(|&x| x != ti);
            resident.push(ti);
        }
        let service = tenants[ti].latency.latency(take as u64);
        now += service;
        for arr in batch {
            latencies[ti].push(now - arr);
        }
    }

    let all: Vec<f64> = latencies.iter().flatten().copied().collect();
    let total = all.len();
    MultiTenantReport {
        per_tenant: latencies
            .iter()
            .map(|l| LatencyStats::from_samples(l))
            .collect(),
        aggregate: LatencyStats::from_samples(&all),
        throughput_rps: total as f64 / now.max(1e-12),
        all_resident,
        swaps,
        swap_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;

    fn tenant(name: &str, ms_per_batch1: f64, gib: f64, rps: f64) -> Tenant {
        Tenant {
            name: name.to_owned(),
            latency: LatencyModel::from_points(vec![
                (1, ms_per_batch1 * 1e-3),
                (64, ms_per_batch1 * 4e-3),
            ])
            .unwrap(),
            weight_bytes: (gib * (1u64 << 30) as f64) as u64,
            arrival_rate_rps: rps,
        }
    }

    #[test]
    fn single_tenant_runs() {
        let chip = catalog::tpu_v4i();
        let r = simulate_tenants(
            &chip,
            &[tenant("a", 1.0, 0.5, 500.0)],
            &MultiTenantConfig::default(),
        );
        assert!(r.all_resident);
        assert_eq!(r.swaps, 0);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.per_tenant.len(), 1);
    }

    #[test]
    fn resident_tenants_do_not_swap() {
        let chip = catalog::tpu_v4i(); // 8 GiB HBM
        let tenants: Vec<Tenant> = (0..4)
            .map(|i| tenant(&format!("t{i}"), 1.0, 1.0, 300.0))
            .collect();
        let r = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
        assert!(r.all_resident);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.swap_seconds, 0.0);
    }

    #[test]
    fn oversubscribed_hbm_causes_swaps_and_tail_blowup() {
        let chip = catalog::tpu_v4i(); // 8 GiB HBM
        let fit: Vec<Tenant> = (0..3)
            .map(|i| tenant(&format!("t{i}"), 1.0, 2.0, 300.0))
            .collect();
        let burst: Vec<Tenant> = (0..6)
            .map(|i| tenant(&format!("t{i}"), 1.0, 2.0, 150.0))
            .collect();
        let r_fit = simulate_tenants(&chip, &fit, &MultiTenantConfig::default());
        let r_burst = simulate_tenants(&chip, &burst, &MultiTenantConfig::default());
        assert!(r_fit.all_resident);
        assert!(!r_burst.all_resident);
        assert!(r_burst.swaps > 0);
        assert!(
            r_burst.worst_p99_s() > 5.0 * r_fit.worst_p99_s(),
            "swapping must blow up tail latency: {} vs {}",
            r_burst.worst_p99_s(),
            r_fit.worst_p99_s()
        );
    }

    #[test]
    fn bigger_hbm_fixes_the_same_tenant_set() {
        // The same 12 GiB of tenants swap on v4i (8 GiB) and are
        // resident on v3 (32 GiB) — the paper's case for capacity.
        let tenants: Vec<Tenant> = (0..6)
            .map(|i| tenant(&format!("t{i}"), 1.0, 2.0, 150.0))
            .collect();
        let small = simulate_tenants(&catalog::tpu_v4i(), &tenants, &MultiTenantConfig::default());
        let big = simulate_tenants(&catalog::tpu_v3(), &tenants, &MultiTenantConfig::default());
        assert!(!small.all_resident);
        assert!(big.all_resident);
        assert_eq!(big.swaps, 0);
        assert!(big.worst_p99_s() < small.worst_p99_s());
    }

    #[test]
    fn fairness_across_symmetric_tenants() {
        let chip = catalog::tpu_v3();
        let tenants: Vec<Tenant> = (0..4)
            .map(|i| tenant(&format!("t{i}"), 1.0, 1.0, 200.0))
            .collect();
        let r = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
        let p99s: Vec<f64> = r.per_tenant.iter().map(|s| s.p99_s).collect();
        let max = p99s.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = p99s.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(
            max / min < 3.0,
            "symmetric tenants should see similar p99s: {p99s:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let chip = catalog::tpu_v4i();
        let tenants = vec![tenant("a", 1.0, 1.0, 400.0), tenant("b", 2.0, 1.0, 300.0)];
        let a = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
        let b = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.swaps, b.swaps);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenants_panics() {
        simulate_tenants(&catalog::tpu_v4i(), &[], &MultiTenantConfig::default());
    }
}
