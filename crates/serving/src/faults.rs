//! Fault injection and recovery for the serving fleet.
//!
//! TPUv4i's lessons are production-inference lessons, and production
//! machines fail: the follow-on fleet papers emphasize routing around
//! failed machines and recovering quickly at scale. This module supplies
//! the fault vocabulary the DES injects and the failover machinery that
//! reacts to it.
//!
//! # Server lifecycle
//!
//! Every server in the fleet walks a five-state lifecycle:
//!
//! ```text
//!        SlowDegrade            Crash / Hang
//!   Up ───────────────▶ Degraded ───────────▶ Down
//!    ▲                     │                   │
//!    │                     │ window ends       │ MTTR elapses (crash)
//!    │                     ▼                   │ or hang ends
//!    │◀────────────────── Up                   ▼
//!    └──────────────── Recovering ◀────────────┘
//!         warmup elapses
//! ```
//!
//! - **Up**: healthy, serving at full speed.
//! - **Degraded**: serving, but every batch runs `factor` times slower
//!   (thermal throttling, a sick host). Health probes still pass — this
//!   is the gray-failure mode that never trips failover.
//! - **Down**: a fail-stop [`FaultKind::Crash`] kills in-flight work
//!   (those requests enter the `failed` terminal state, retryable per
//!   policy) and strands the server's queue; a [`FaultKind::Hang`]
//!   freezes the server — in-flight work resumes where it left off when
//!   the hang clears.
//! - **Recovering**: the machine is back but warming up (reloading
//!   weights); it does not serve until the warmup elapses.
//!
//! # Failover
//!
//! With [`FailoverConfig::enabled`], a health checker probes every
//! server each `probe_interval_s`. A server that is crashed — or hung
//! longer than `probe_timeout_s` — is marked *believed down*: the router
//! stops sending it new arrivals, and its stranded queue is drained and
//! redistributed to surviving replicas (or shed if they are full —
//! admission control sees the reduced capacity through the per-server
//! queue caps). When a probe later finds the server serving again it is
//! re-admitted to the rotation. With failover disabled the router stays
//! oblivious: arrivals keep flowing to dead machines and die there —
//! the serve-through baseline E22 measures against.
//!
//! Fault plans are seed-deterministic: the same [`FaultPlan`] always
//! materializes the same schedule, independent of the failover setting,
//! so failover-on and failover-off runs face *identical* injected
//! faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::des::ConfigError;

/// What goes wrong with a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop crash: in-flight requests fail, the queue is stranded,
    /// and the machine stays dead for `mttr_s` before it starts its
    /// recovery warmup.
    Crash {
        /// Mean-time-to-repair: how long the machine is dead, seconds.
        mttr_s: f64,
    },
    /// Transient hang: the server freezes for `duration_s`. In-flight
    /// work is paused, not lost; it finishes late by the frozen overlap.
    Hang {
        /// Freeze duration, seconds.
        duration_s: f64,
    },
    /// Slow-degrade: service times multiply by `factor` for
    /// `duration_s`. The server keeps passing health probes.
    SlowDegrade {
        /// Service-time multiplier (>= 1).
        factor: f64,
        /// Degradation window, seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Stable telemetry/display name for the fault kind (the instant
    /// event name stamped on the victim's track when it is injected).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Hang { .. } => "hang",
            FaultKind::SlowDegrade { .. } => "slow_degrade",
        }
    }

    /// Checks the kind's knobs.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for non-finite or non-positive durations, or a
    /// degrade factor below 1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            FaultKind::Crash { mttr_s } => {
                if !mttr_s.is_finite() || mttr_s <= 0.0 {
                    return Err(ConfigError::InvalidMttr(mttr_s));
                }
            }
            FaultKind::Hang { duration_s } => {
                if !duration_s.is_finite() || duration_s <= 0.0 {
                    return Err(ConfigError::InvalidFaultDuration(duration_s));
                }
            }
            FaultKind::SlowDegrade { factor, duration_s } => {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(ConfigError::InvalidDegradeFactor(factor));
                }
                if !duration_s.is_finite() || duration_s <= 0.0 {
                    return Err(ConfigError::InvalidFaultDuration(duration_s));
                }
            }
        }
        Ok(())
    }

    /// How long the server is impaired by this fault (recovery warmup
    /// excluded).
    pub fn impaired_s(&self) -> f64 {
        match *self {
            FaultKind::Crash { mttr_s } => mttr_s,
            FaultKind::Hang { duration_s } | FaultKind::SlowDegrade { duration_s, .. } => {
                duration_s
            }
        }
    }
}

/// One fault scheduled against one server at an absolute sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// Target server index.
    pub server: usize,
    /// Injection time, seconds from run start.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// MTBF/MTTR-driven stochastic crash generation: each server draws
/// exponentially distributed times-between-failures with mean `mtbf_s`;
/// each failure is a fail-stop crash lasting exactly `mttr_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtbfFaults {
    /// Mean time between failures per server, seconds.
    pub mtbf_s: f64,
    /// Repair time per failure, seconds.
    pub mttr_s: f64,
    /// Faults are drawn over `[0, horizon_s)`; size it to the expected
    /// run length.
    pub horizon_s: f64,
}

impl MtbfFaults {
    /// Checks MTBF, MTTR, and horizon.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for NaN, non-finite, or non-positive values.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.mtbf_s.is_finite() || self.mtbf_s <= 0.0 {
            return Err(ConfigError::InvalidMtbf(self.mtbf_s));
        }
        if !self.mttr_s.is_finite() || self.mttr_s <= 0.0 {
            return Err(ConfigError::InvalidMttr(self.mttr_s));
        }
        if !self.horizon_s.is_finite() || self.horizon_s <= 0.0 {
            return Err(ConfigError::InvalidFaultHorizon(self.horizon_s));
        }
        Ok(())
    }
}

/// Health checking and failover knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverConfig {
    /// If set, a health checker probes every server each
    /// `probe_interval_s`, routes new arrivals away from servers it
    /// believes down, and drains/redistributes a dead server's queue.
    /// If unset, the router stays oblivious to failures.
    pub enabled: bool,
    /// Seconds between health probes.
    pub probe_interval_s: f64,
    /// A hang longer than this reads as a failure to the prober.
    pub probe_timeout_s: f64,
    /// Warmup after a crash repair before the server serves again
    /// (weight reload); applies whether or not failover is enabled.
    pub recovery_warmup_s: f64,
}

impl Default for FailoverConfig {
    fn default() -> FailoverConfig {
        FailoverConfig {
            enabled: true,
            probe_interval_s: 0.01,
            probe_timeout_s: 0.005,
            recovery_warmup_s: 0.01,
        }
    }
}

impl FailoverConfig {
    /// Checks the probe and warmup knobs.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a non-positive probe interval or negative /
    /// non-finite timeout or warmup.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.probe_interval_s.is_finite() || self.probe_interval_s <= 0.0 {
            return Err(ConfigError::InvalidProbeInterval(self.probe_interval_s));
        }
        if !self.probe_timeout_s.is_finite() || self.probe_timeout_s < 0.0 {
            return Err(ConfigError::InvalidProbeTimeout(self.probe_timeout_s));
        }
        if !self.recovery_warmup_s.is_finite() || self.recovery_warmup_s < 0.0 {
            return Err(ConfigError::InvalidRecoveryWarmup(self.recovery_warmup_s));
        }
        Ok(())
    }

    /// The worst-case detection lag for a fail-stop crash: a full probe
    /// interval (the crash lands right after a probe) plus the probe
    /// timeout.
    pub fn worst_case_detection_s(&self) -> f64 {
        self.probe_interval_s + self.probe_timeout_s
    }
}

/// A complete fault-injection plan for one run: explicitly scheduled
/// faults, optional MTBF/MTTR-driven crashes, and the failover policy
/// reacting to them.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Explicitly scheduled faults.
    pub scheduled: Vec<ScheduledFault>,
    /// Stochastic crash generation, if any.
    pub mtbf: Option<MtbfFaults>,
    /// Seed for the stochastic draws; independent of the serving seed so
    /// the same faults hit regardless of arrival-stream settings.
    pub fault_seed: u64,
    /// Health checking / failover behavior.
    pub failover: FailoverConfig,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan with no faults (and failover armed but idle).
    pub fn none() -> FaultPlan {
        FaultPlan {
            scheduled: Vec::new(),
            mtbf: None,
            fault_seed: 0,
            failover: FailoverConfig::default(),
        }
    }

    /// A plan with only explicitly scheduled faults.
    pub fn scheduled(faults: Vec<ScheduledFault>) -> FaultPlan {
        FaultPlan {
            scheduled: faults,
            ..FaultPlan::none()
        }
    }

    /// Replaces the failover policy.
    pub fn with_failover(mut self, failover: FailoverConfig) -> FaultPlan {
        self.failover = failover;
        self
    }

    /// Disables failover: the router stays oblivious to failures (the
    /// serve-through baseline).
    pub fn without_failover(mut self) -> FaultPlan {
        self.failover.enabled = false;
        self
    }

    /// Whether this plan can inject anything at all.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.mtbf.is_none()
    }

    /// Checks every scheduled fault and the stochastic / failover knobs
    /// against a fleet of `servers`.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for NaN or negative times, out-of-range server
    /// indices, bad MTBF/MTTR, or bad probe knobs.
    pub fn validate(&self, servers: usize) -> Result<(), ConfigError> {
        for f in &self.scheduled {
            if f.server >= servers {
                return Err(ConfigError::FaultServerOutOfRange {
                    server: f.server,
                    servers,
                });
            }
            if !f.at_s.is_finite() || f.at_s < 0.0 {
                return Err(ConfigError::InvalidFaultTime(f.at_s));
            }
            f.kind.validate()?;
        }
        if let Some(m) = &self.mtbf {
            m.validate()?;
        }
        self.failover.validate()
    }

    /// Materializes the full, deterministic fault schedule for a fleet
    /// of `servers`: explicit faults plus MTBF-drawn crashes, sorted by
    /// time, with overlapping faults on the same server dropped (one
    /// fault at a time per machine).
    ///
    /// The schedule depends only on the plan and `servers` — never on
    /// the failover setting — so failover-on and failover-off runs can
    /// be compared under identical injected faults.
    pub fn materialize(&self, servers: usize) -> Vec<ScheduledFault> {
        let mut all = self.scheduled.clone();
        if let Some(m) = &self.mtbf {
            for s in 0..servers {
                // One independent stream per server, a pure function of
                // the plan seed and the server index.
                let mut rng =
                    StdRng::seed_from_u64(self.fault_seed ^ (s as u64).wrapping_mul(0xA24B_AED4));
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() * m.mtbf_s;
                    if t >= m.horizon_s {
                        break;
                    }
                    all.push(ScheduledFault {
                        server: s,
                        at_s: t,
                        kind: FaultKind::Crash { mttr_s: m.mttr_s },
                    });
                    // The machine cannot fail again while it is dead.
                    t += m.mttr_s;
                }
            }
        }
        all.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.server.cmp(&b.server)));
        // Drop faults that land while the same server is still impaired
        // by an earlier one.
        let mut impaired_until = vec![0.0f64; servers];
        all.retain(|f| {
            if f.at_s < impaired_until[f.server] {
                return false;
            }
            impaired_until[f.server] = f.at_s + f.kind.impaired_s();
            true
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.validate(4).is_ok());
        assert!(p.materialize(4).is_empty());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let crash = |server, at_s, mttr_s| {
            FaultPlan::scheduled(vec![ScheduledFault {
                server,
                at_s,
                kind: FaultKind::Crash { mttr_s },
            }])
        };
        assert!(matches!(
            crash(9, 0.1, 0.1).validate(4),
            Err(ConfigError::FaultServerOutOfRange {
                server: 9,
                servers: 4
            })
        ));
        assert!(matches!(
            crash(0, f64::NAN, 0.1).validate(4),
            Err(ConfigError::InvalidFaultTime(_))
        ));
        assert!(matches!(
            crash(0, -1.0, 0.1).validate(4),
            Err(ConfigError::InvalidFaultTime(_))
        ));
        assert!(matches!(
            crash(0, 0.1, f64::NAN).validate(4),
            Err(ConfigError::InvalidMttr(_))
        ));
        assert!(matches!(
            crash(0, 0.1, -0.5).validate(4),
            Err(ConfigError::InvalidMttr(_))
        ));
        let mut p = FaultPlan::none();
        p.mtbf = Some(MtbfFaults {
            mtbf_s: f64::NAN,
            mttr_s: 0.1,
            horizon_s: 1.0,
        });
        assert!(matches!(p.validate(2), Err(ConfigError::InvalidMtbf(_))));
        p.mtbf = Some(MtbfFaults {
            mtbf_s: 1.0,
            mttr_s: -1.0,
            horizon_s: 1.0,
        });
        assert!(matches!(p.validate(2), Err(ConfigError::InvalidMttr(_))));
        p.mtbf = Some(MtbfFaults {
            mtbf_s: 1.0,
            mttr_s: 0.1,
            horizon_s: f64::INFINITY,
        });
        assert!(matches!(
            p.validate(2),
            Err(ConfigError::InvalidFaultHorizon(_))
        ));
        let mut p = FaultPlan::none();
        p.failover.probe_interval_s = 0.0;
        assert!(matches!(
            p.validate(2),
            Err(ConfigError::InvalidProbeInterval(_))
        ));
        let bad_degrade = FaultPlan::scheduled(vec![ScheduledFault {
            server: 0,
            at_s: 0.1,
            kind: FaultKind::SlowDegrade {
                factor: 0.5,
                duration_s: 1.0,
            },
        }]);
        assert!(matches!(
            bad_degrade.validate(1),
            Err(ConfigError::InvalidDegradeFactor(_))
        ));
        let bad_hang = FaultPlan::scheduled(vec![ScheduledFault {
            server: 0,
            at_s: 0.1,
            kind: FaultKind::Hang { duration_s: 0.0 },
        }]);
        assert!(matches!(
            bad_hang.validate(1),
            Err(ConfigError::InvalidFaultDuration(_))
        ));
    }

    #[test]
    fn materialization_is_deterministic_and_failover_independent() {
        let plan = FaultPlan {
            scheduled: vec![ScheduledFault {
                server: 1,
                at_s: 0.25,
                kind: FaultKind::Hang { duration_s: 0.05 },
            }],
            mtbf: Some(MtbfFaults {
                mtbf_s: 0.5,
                mttr_s: 0.1,
                horizon_s: 2.0,
            }),
            fault_seed: 7,
            failover: FailoverConfig::default(),
        };
        let a = plan.materialize(4);
        let b = plan.materialize(4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let off = plan.without_failover();
        assert_eq!(off.materialize(4), a);
        // Sorted by time.
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
    }

    #[test]
    fn mtbf_draws_scale_with_rate_and_respect_horizon() {
        let plan = |mtbf_s: f64| FaultPlan {
            scheduled: Vec::new(),
            mtbf: Some(MtbfFaults {
                mtbf_s,
                mttr_s: 0.05,
                horizon_s: 10.0,
            }),
            fault_seed: 3,
            failover: FailoverConfig::default(),
        };
        let frequent = plan(0.5).materialize(8);
        let rare = plan(5.0).materialize(8);
        assert!(
            frequent.len() > 2 * rare.len(),
            "shorter MTBF must inject more faults: {} vs {}",
            frequent.len(),
            rare.len()
        );
        assert!(frequent.iter().all(|f| f.at_s < 10.0));
    }

    #[test]
    fn overlapping_faults_on_one_server_are_dropped() {
        let plan = FaultPlan::scheduled(vec![
            ScheduledFault {
                server: 0,
                at_s: 0.1,
                kind: FaultKind::Crash { mttr_s: 0.5 },
            },
            // Lands while server 0 is still dead: dropped.
            ScheduledFault {
                server: 0,
                at_s: 0.3,
                kind: FaultKind::Hang { duration_s: 0.1 },
            },
            // Different server: kept.
            ScheduledFault {
                server: 1,
                at_s: 0.3,
                kind: FaultKind::Hang { duration_s: 0.1 },
            },
        ]);
        let m = plan.materialize(2);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].server, 0);
        assert_eq!(m[1].server, 1);
    }

    #[test]
    fn detection_bound_is_interval_plus_timeout() {
        let f = FailoverConfig {
            enabled: true,
            probe_interval_s: 0.02,
            probe_timeout_s: 0.01,
            recovery_warmup_s: 0.0,
        };
        assert!((f.worst_case_detection_s() - 0.03).abs() < 1e-12);
    }
}
