//! Discrete-event inference serving on simulated TPUs.
//!
//! The paper's Lessons 7 and 10 are serving-system lessons, not chip
//! lessons: production inference must hit a **p99 latency SLO** (which
//! limits batch size long before chip memory does), and it must support
//! **multi-tenancy** (several models resident on one accelerator). This
//! crate provides the queueing substrate those experiments need:
//!
//! - [`latency`]: batch→latency curves profiled through the compiler and
//!   simulator, with linear interpolation between profiled batch sizes;
//! - [`des`]: a discrete-event fleet simulator with Poisson arrivals,
//!   dynamic batching (batch forms on size or timeout), per-request
//!   deadlines, admission-control load shedding, and retry-with-backoff
//!   — every entry point validates its config and returns a typed
//!   [`des::ConfigError`] for degenerate inputs. The same module hosts
//!   the autoregressive decode-loop scheduler
//!   ([`des::simulate_generation`]): static vs continuous batching with
//!   KV-cache HBM as a first-class constrained resource;
//! - [`genmodel`]: bounded prompt/output token-count distributions and
//!   the per-request KV-cache footprint they imply;
//! - [`faults`]: fault injection and failover — validated [`FaultPlan`]s
//!   (fail-stop crashes, transient hangs, slow-degrades; scheduled or
//!   MTBF/MTTR-driven), a server health lifecycle, and a health checker
//!   that drains dead servers' queues onto surviving replicas;
//! - [`equeue`]: the calendar/bucket event queue the engines schedule
//!   on, behind an [`equeue::EventQueue`] trait with the original
//!   binary heap kept as the differential reference;
//! - [`arena`]: the stamped slot arena holding in-flight batches
//!   (free-list reuse with ABA protection via reuse stamps);
//! - [`metrics`]: the counters and histograms a serving fleet is
//!   operated on (sheds, retries, batch sizes, per-server busy time);
//! - [`stats`]: exact percentile computation over recorded latencies;
//! - [`slo`]: SLO-constrained search — the largest batch and the highest
//!   arrival rate that still meet a p99 target (E8);
//! - [`multitenant`]: several models sharing one chip, with HBM
//!   residency checks, weight-swap costs for non-resident models and
//!   per-tenant CMEM partitions (E11);
//! - [`fleet`]: the planet-scale layer — N cells behind a geo
//!   load-balancer, diurnal + flash-crowd traffic, correlated
//!   cell-level failure domains (outage / brownout / partition), and a
//!   target-utilization autoscaler with provisioning lag (E27).
//!
//! # Example
//!
//! ```
//! use tpu_serving::latency::LatencyModel;
//! use tpu_serving::des::{simulate, ServingConfig};
//!
//! // A synthetic 1 ms + 0.1 ms/item service curve.
//! let lat = LatencyModel::from_points(vec![(1, 0.0011), (64, 0.0074)]).unwrap();
//! let report = simulate(&lat, &ServingConfig {
//!     arrival_rate_rps: 1000.0,
//!     max_batch: 16,
//!     batch_timeout_s: 0.002,
//!     requests: 2000,
//!     seed: 7,
//! }).expect("config is valid");
//! assert!(report.p99_s >= report.p50_s);
//! assert!(report.conservation_holds());
//! ```

pub mod arena;
pub mod des;
pub mod equeue;
pub mod faults;
pub mod fleet;
pub mod genmodel;
pub mod latency;
pub mod metrics;
pub mod multitenant;
pub mod slo;
pub mod stats;

pub use des::{
    simulate, simulate_fleet, simulate_fleet_recorded, simulate_fleet_recorded_reference,
    simulate_fleet_samples, simulate_fleet_samples_reference, simulate_fleet_with_faults,
    simulate_fleet_with_faults_reference, simulate_generation, simulate_generation_calendar,
    simulate_generation_recorded, simulate_generation_recorded_reference,
    simulate_generation_reference, BatchingMode, ConfigError, FleetConfig, FleetPolicy, GenConfig,
    GenReport, PoolConfig, RetryPolicy, ServingConfig, ServingReport, Stragglers,
};
pub use faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};
pub use fleet::{
    simulate_global, simulate_global_recorded, simulate_global_reference, AutoscalerConfig,
    AutoscalerReport, Cell, CellFault, CellFaultKind, CellReport, FlashCrowd, GeoPolicy,
    GlobalConfig, GlobalReport, TenantStream, TrafficModel,
};
pub use genmodel::{GenerationModel, TokenDistribution};
pub use latency::{GenLatencyModel, LatencyModel};
pub use metrics::ServingMetrics;
pub use stats::LatencyStats;
