//! The generation request model: bounded token-count distributions and
//! the KV-cache footprint of an autoregressive request.
//!
//! Lesson 10 ("applications limit latency, not batch size") meets its
//! hardest workload here: autoregressive inference, where a request is
//! not one batched forward pass but a prefill followed by a
//! variable-length decode loop that pins KV-cache HBM for its whole
//! residency. Every distribution in this module is **bounded** — a
//! request's worst-case token count is known at admission — so KV
//! residency has a hard per-request ceiling and the decode engine in
//! [`crate::des`] can reserve capacity up front and never deadlock.

use rand::rngs::StdRng;
use rand::Rng;

use crate::des::ConfigError;

/// A bounded distribution over token counts (every draw is >= 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TokenDistribution {
    /// Every request draws exactly this many tokens.
    Fixed(u64),
    /// Uniform over `[min, max]`, both inclusive.
    Uniform {
        /// Smallest possible draw (>= 1).
        min: u64,
        /// Largest possible draw (>= min).
        max: u64,
    },
    /// Geometric with the given mean, truncated to `[1, max]` — the
    /// classic decode-length shape (many short generations, a long
    /// tail), kept bounded so residency stays bounded.
    Geometric {
        /// Mean of the untruncated geometric (>= 1, finite).
        mean: f64,
        /// Hard ceiling applied to every draw (>= 1).
        max: u64,
    },
}

impl TokenDistribution {
    /// Checks the distribution's parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroTokens`] when a bound is 0,
    /// [`ConfigError::EmptyTokenRange`] when `min > max`, or
    /// [`ConfigError::InvalidTokenMean`] for a non-finite or sub-1 mean.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            TokenDistribution::Fixed(n) => {
                if n == 0 {
                    return Err(ConfigError::ZeroTokens);
                }
            }
            TokenDistribution::Uniform { min, max } => {
                if min == 0 {
                    return Err(ConfigError::ZeroTokens);
                }
                if min > max {
                    return Err(ConfigError::EmptyTokenRange { min, max });
                }
            }
            TokenDistribution::Geometric { mean, max } => {
                if max == 0 {
                    return Err(ConfigError::ZeroTokens);
                }
                if !mean.is_finite() || mean < 1.0 {
                    return Err(ConfigError::InvalidTokenMean(mean));
                }
            }
        }
        Ok(())
    }

    /// Largest value a draw can take (the residency planner's input).
    pub fn max_tokens(&self) -> u64 {
        match *self {
            TokenDistribution::Fixed(n) => n,
            TokenDistribution::Uniform { max, .. } => max,
            TokenDistribution::Geometric { max, .. } => max,
        }
    }

    /// Expected draw. Exact for `Fixed` and `Uniform`; for `Geometric`
    /// this is the untruncated mean capped at `max` (the truncation
    /// correction is small whenever `max >> mean`, the intended regime).
    pub fn mean_tokens(&self) -> f64 {
        match *self {
            TokenDistribution::Fixed(n) => n as f64,
            TokenDistribution::Uniform { min, max } => (min + max) as f64 / 2.0,
            TokenDistribution::Geometric { mean, max } => mean.min(max as f64),
        }
    }

    /// Draws one token count. Deterministic given the RNG state; every
    /// variant except `Fixed` consumes exactly one draw.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            TokenDistribution::Fixed(n) => n,
            TokenDistribution::Uniform { min, max } => {
                // Half-open gen_range; min >= 1 keeps `span + 1` from
                // overflowing even at max == u64::MAX.
                let span = max - min;
                min + rng.gen_range(0..span + 1)
            }
            TokenDistribution::Geometric { mean, max } => {
                if mean <= 1.0 {
                    // Degenerate geometric: every draw is 1 (still
                    // consume a draw so the stream shape is uniform
                    // across parameter values).
                    let _ = rng.gen_range(f64::EPSILON..1.0);
                    return 1;
                }
                let p = 1.0 / mean;
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                // Inverse CDF of the geometric on {1, 2, ...}: `u` and
                // `1 - u` are identically distributed, so ln(u) serves.
                let k = 1.0 + (u.ln() / (1.0 - p).ln()).floor();
                (k as u64).clamp(1, max)
            }
        }
    }
}

/// The shape of a generation workload: sampled prompt and output token
/// counts, plus the KV-cache bytes each resident token pins in HBM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationModel {
    /// Prompt (prefill) length distribution, tokens.
    pub prompt: TokenDistribution,
    /// Output (decode) length distribution, tokens.
    pub output: TokenDistribution,
    /// KV-cache bytes pinned per resident token (for a real model:
    /// `2 x layers x kv_heads x head_dim x bytes_per_element`).
    pub kv_bytes_per_token: u64,
}

impl GenerationModel {
    /// Checks both distributions and the KV footprint.
    ///
    /// # Errors
    ///
    /// Everything [`TokenDistribution::validate`] rejects, plus
    /// [`ConfigError::ZeroKvBytesPerToken`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.prompt.validate()?;
        self.output.validate()?;
        if self.kv_bytes_per_token == 0 {
            return Err(ConfigError::ZeroKvBytesPerToken);
        }
        Ok(())
    }

    /// KV bytes one request with the given sampled lengths pins while
    /// resident. The engine reserves this at admission: the full
    /// prompt+output footprint, i.e. the request's residency at its
    /// final decode step.
    pub fn request_kv_bytes(&self, prompt: u64, output: u64) -> u64 {
        prompt
            .saturating_add(output)
            .saturating_mul(self.kv_bytes_per_token)
    }

    /// Worst-case KV bytes any single request can pin. Admission
    /// capacity must cover this, or the head of the FIFO could never be
    /// admitted (checked by `GenConfig::validate`).
    pub fn peak_request_kv_bytes(&self) -> u64 {
        self.request_kv_bytes(self.prompt.max_tokens(), self.output.max_tokens())
    }

    /// Draws one request's `(prompt, output)` token counts.
    pub fn sample(&self, rng: &mut StdRng) -> (u64, u64) {
        (self.prompt.sample(rng), self.output.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_degenerate_distributions() {
        assert_eq!(
            TokenDistribution::Fixed(0).validate(),
            Err(ConfigError::ZeroTokens)
        );
        assert_eq!(
            TokenDistribution::Uniform { min: 0, max: 4 }.validate(),
            Err(ConfigError::ZeroTokens)
        );
        assert_eq!(
            TokenDistribution::Uniform { min: 5, max: 4 }.validate(),
            Err(ConfigError::EmptyTokenRange { min: 5, max: 4 })
        );
        // NaN payloads defeat `assert_eq!` (NaN != NaN), so match.
        assert!(matches!(
            TokenDistribution::Geometric {
                mean: f64::NAN,
                max: 64
            }
            .validate(),
            Err(ConfigError::InvalidTokenMean(m)) if m.is_nan()
        ));
        assert_eq!(
            TokenDistribution::Geometric { mean: 0.5, max: 64 }.validate(),
            Err(ConfigError::InvalidTokenMean(0.5))
        );
        assert!(TokenDistribution::Geometric {
            mean: 32.0,
            max: 256
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let dists = [
            TokenDistribution::Fixed(17),
            TokenDistribution::Uniform { min: 3, max: 9 },
            TokenDistribution::Geometric { mean: 8.0, max: 40 },
        ];
        for d in dists {
            for _ in 0..2000 {
                let x = d.sample(&mut rng);
                assert!(x >= 1, "{d:?} drew {x}");
                assert!(x <= d.max_tokens(), "{d:?} drew {x}");
            }
        }
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let d = TokenDistribution::Geometric {
            mean: 32.0,
            max: 100_000,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 32.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn uniform_covers_both_endpoints() {
        let d = TokenDistribution::Uniform { min: 2, max: 4 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
        assert!(!seen[0] && !seen[1]);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let m = GenerationModel {
            prompt: TokenDistribution::Uniform { min: 16, max: 512 },
            output: TokenDistribution::Geometric {
                mean: 64.0,
                max: 256,
            },
            kv_bytes_per_token: 1024,
        };
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| m.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn kv_footprint_math() {
        let m = GenerationModel {
            prompt: TokenDistribution::Fixed(100),
            output: TokenDistribution::Uniform { min: 1, max: 28 },
            kv_bytes_per_token: 1000,
        };
        assert!(m.validate().is_ok());
        assert_eq!(m.request_kv_bytes(100, 28), 128_000);
        assert_eq!(m.peak_request_kv_bytes(), 128_000);
        // Saturating, never overflowing.
        let huge = GenerationModel {
            prompt: TokenDistribution::Fixed(u64::MAX),
            output: TokenDistribution::Fixed(u64::MAX),
            kv_bytes_per_token: u64::MAX,
        };
        assert_eq!(huge.peak_request_kv_bytes(), u64::MAX);
    }
}
