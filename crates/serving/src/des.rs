//! The discrete-event serving loop: Poisson arrivals, dynamic batching,
//! and the fleet-grade overload machinery production SLOs are set
//! against — per-request deadlines, admission control (load shedding),
//! and retry-with-backoff (Lesson 10).
//!
//! Every entry point validates its configuration up front and returns a
//! typed [`ConfigError`] for degenerate inputs (`max_batch: 0`,
//! non-positive arrival rates, NaNs) instead of hanging or panicking.
//! Every run satisfies request conservation:
//! `arrivals == completed + shed + dropped` (see
//! [`ServingReport::conservation_holds`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::LatencyModel;
use crate::metrics::ServingMetrics;
use crate::stats::LatencyStats;

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Mean request arrival rate (Poisson), requests/second.
    pub arrival_rate_rps: f64,
    /// Largest batch the server will form.
    pub max_batch: u64,
    /// How long the server waits for a batch to fill before launching a
    /// partial one, seconds.
    pub batch_timeout_s: f64,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
}

impl ServingConfig {
    /// The same configuration served by a pool of `servers` identical
    /// chips behind one queue (see [`simulate_pool`]).
    pub fn with_servers(self, servers: usize) -> PoolConfig {
        PoolConfig {
            base: self,
            servers: servers.max(1),
        }
    }

    /// Checks every knob, returning the first problem found.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a non-positive or non-finite arrival rate, a
    /// zero batch cap, a negative or non-finite batch timeout, or a
    /// zero request count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.arrival_rate_rps.is_finite() || self.arrival_rate_rps <= 0.0 {
            return Err(ConfigError::NonPositiveArrivalRate(self.arrival_rate_rps));
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if !self.batch_timeout_s.is_finite() || self.batch_timeout_s < 0.0 {
            return Err(ConfigError::InvalidBatchTimeout(self.batch_timeout_s));
        }
        if self.requests == 0 {
            return Err(ConfigError::ZeroRequests);
        }
        Ok(())
    }
}

/// A pool of identical servers behind one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Per-run knobs shared with the single-server simulation.
    pub base: ServingConfig,
    /// Number of identical chips serving the queue.
    pub servers: usize,
}

impl PoolConfig {
    /// Validates the base config and the pool size.
    ///
    /// # Errors
    ///
    /// Everything [`ServingConfig::validate`] rejects, plus
    /// [`ConfigError::ZeroServers`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.base.validate()?;
        if self.servers == 0 {
            return Err(ConfigError::ZeroServers);
        }
        Ok(())
    }
}

/// Failure-injection knobs: occasional slow service (thermal throttling,
/// host interference). A batch is independently a straggler with
/// probability `probability`, multiplying its service time by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stragglers {
    /// Per-batch straggler probability in [0, 1].
    pub probability: f64,
    /// Service-time multiplier for straggler batches (>= 1).
    pub factor: f64,
}

impl Default for Stragglers {
    fn default() -> Stragglers {
        Stragglers {
            probability: 0.0,
            factor: 1.0,
        }
    }
}

impl Stragglers {
    /// Checks probability and factor ranges.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidStragglerProbability`] or
    /// [`ConfigError::InvalidStragglerFactor`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.probability.is_finite() || !(0.0..=1.0).contains(&self.probability) {
            return Err(ConfigError::InvalidStragglerProbability(self.probability));
        }
        if !self.factor.is_finite() || self.factor < 1.0 {
            return Err(ConfigError::InvalidStragglerFactor(self.factor));
        }
        Ok(())
    }
}

/// Retry behavior for shed requests: exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How many times a shed request re-enters the queue before it is
    /// permanently lost. 0 disables retries.
    pub max_retries: u32,
    /// Delay before the first retry, seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the delay on each further retry (>= 1).
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_s: 0.01,
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Checks the backoff parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidRetryBackoff`] or
    /// [`ConfigError::InvalidRetryBackoffMult`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.backoff_s.is_finite() || self.backoff_s < 0.0 {
            return Err(ConfigError::InvalidRetryBackoff(self.backoff_s));
        }
        if !self.backoff_mult.is_finite() || self.backoff_mult < 1.0 {
            return Err(ConfigError::InvalidRetryBackoffMult(self.backoff_mult));
        }
        Ok(())
    }
}

/// Fleet-level serving policy: deadlines, load shedding, retries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetPolicy {
    /// Per-request SLO budget, seconds. Used for goodput accounting
    /// (a completion later than this is not "good") and — when
    /// `shed_expired` is set — for shedding requests whose queue wait
    /// exceeds it.
    pub deadline_s: Option<f64>,
    /// If set, a queued request past its deadline is shed from the
    /// queue instead of being served late. Requires `deadline_s`.
    pub shed_expired: bool,
    /// How long an attempt may sit in the queue before `shed_expired`
    /// sheds it; defaults to `deadline_s`. Set it *below* the deadline
    /// to reserve end-to-end budget for service time (a request that
    /// launches right at the wire still has to run).
    pub queue_budget_s: Option<f64>,
    /// Admission control: arrivals beyond this many queued requests are
    /// shed immediately (classic load shedding). `None` = unbounded.
    pub queue_cap: Option<usize>,
    /// What happens to shed requests.
    pub retry: RetryPolicy,
}

impl FleetPolicy {
    /// Checks deadline, cap, and retry parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a non-positive/non-finite deadline, a zero
    /// queue cap, shedding without a deadline, or bad retry backoff.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(ConfigError::InvalidDeadline(d));
            }
        }
        if self.shed_expired && self.deadline_s.is_none() {
            return Err(ConfigError::SheddingWithoutDeadline);
        }
        if let Some(b) = self.queue_budget_s {
            if !b.is_finite() || b <= 0.0 {
                return Err(ConfigError::InvalidQueueBudget(b));
            }
        }
        if self.queue_cap == Some(0) {
            return Err(ConfigError::ZeroQueueCap);
        }
        self.retry.validate()
    }
}

/// The full-featured run description: a pool, failure injection, and a
/// fleet policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The pool of servers and the base serving knobs.
    pub pool: PoolConfig,
    /// Failure injection.
    pub stragglers: Stragglers,
    /// Deadlines, shedding, retries.
    pub policy: FleetPolicy,
}

impl FleetConfig {
    /// A fleet with no stragglers and no overload policy (plain dynamic
    /// batching, like [`simulate_pool`]).
    pub fn new(pool: PoolConfig) -> FleetConfig {
        FleetConfig {
            pool,
            stragglers: Stragglers::default(),
            policy: FleetPolicy::default(),
        }
    }

    /// Replaces the straggler knobs.
    pub fn with_stragglers(mut self, stragglers: Stragglers) -> FleetConfig {
        self.stragglers = stragglers;
        self
    }

    /// Replaces the fleet policy.
    pub fn with_policy(mut self, policy: FleetPolicy) -> FleetConfig {
        self.policy = policy;
        self
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found in pool, stragglers, or policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.pool.validate()?;
        self.stragglers.validate()?;
        self.policy.validate()
    }
}

/// A degenerate serving configuration, caught before simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Arrival rate must be finite and > 0.
    NonPositiveArrivalRate(f64),
    /// `max_batch` must be at least 1 (0 can never form a batch).
    ZeroMaxBatch,
    /// Batch timeout must be finite and >= 0.
    InvalidBatchTimeout(f64),
    /// At least one request must be simulated.
    ZeroRequests,
    /// A pool needs at least one server.
    ZeroServers,
    /// Straggler probability must be a finite value in [0, 1].
    InvalidStragglerProbability(f64),
    /// Straggler factor must be finite and >= 1.
    InvalidStragglerFactor(f64),
    /// A deadline must be finite and > 0.
    InvalidDeadline(f64),
    /// `shed_expired` requires `deadline_s`.
    SheddingWithoutDeadline,
    /// A queue budget must be finite and > 0.
    InvalidQueueBudget(f64),
    /// A queue cap of 0 would shed every request.
    ZeroQueueCap,
    /// Retry backoff must be finite and >= 0.
    InvalidRetryBackoff(f64),
    /// Retry backoff multiplier must be finite and >= 1.
    InvalidRetryBackoffMult(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveArrivalRate(r) => {
                write!(f, "arrival_rate_rps must be finite and > 0, got {r}")
            }
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            ConfigError::InvalidBatchTimeout(t) => {
                write!(f, "batch_timeout_s must be finite and >= 0, got {t}")
            }
            ConfigError::ZeroRequests => write!(f, "requests must be >= 1"),
            ConfigError::ZeroServers => write!(f, "servers must be >= 1"),
            ConfigError::InvalidStragglerProbability(p) => {
                write!(f, "straggler probability must be in [0, 1], got {p}")
            }
            ConfigError::InvalidStragglerFactor(x) => {
                write!(f, "straggler factor must be finite and >= 1, got {x}")
            }
            ConfigError::InvalidDeadline(d) => {
                write!(f, "deadline_s must be finite and > 0, got {d}")
            }
            ConfigError::SheddingWithoutDeadline => {
                write!(f, "shed_expired requires deadline_s to be set")
            }
            ConfigError::InvalidQueueBudget(b) => {
                write!(f, "queue_budget_s must be finite and > 0, got {b}")
            }
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be >= 1 (or None)"),
            ConfigError::InvalidRetryBackoff(b) => {
                write!(f, "retry backoff_s must be finite and >= 0, got {b}")
            }
            ConfigError::InvalidRetryBackoffMult(m) => {
                write!(f, "retry backoff_mult must be finite and >= 1, got {m}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The result of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// End-to-end (queue + service) latency statistics over *completed*
    /// requests, measured from first arrival (retries included).
    pub stats: LatencyStats,
    /// p50 shorthand, seconds.
    pub p50_s: f64,
    /// p99 shorthand, seconds (the SLO metric, Lesson 10).
    pub p99_s: f64,
    /// Achieved throughput (all completions), requests/second.
    pub throughput_rps: f64,
    /// Goodput: completions within the deadline, requests/second.
    /// Equals `throughput_rps` when no deadline is configured.
    pub goodput_rps: f64,
    /// Mean formed batch size.
    pub mean_batch: f64,
    /// Fraction of the run the servers were busy.
    pub server_utilization: f64,
    /// Unique requests offered.
    pub arrivals: usize,
    /// Requests that finished service.
    pub completed: usize,
    /// Requests permanently lost to shedding (after exhausting any
    /// retry budget).
    pub shed: usize,
    /// Requests still queued when the event heap drained.
    pub dropped: usize,
    /// Counters and histograms collected during the run.
    pub metrics: ServingMetrics,
}

impl ServingReport {
    /// Request conservation: every offered request is accounted for.
    pub fn conservation_holds(&self) -> bool {
        self.arrivals == self.completed + self.shed + self.dropped
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Fresh request `i` arrives.
    Arrival(usize),
    /// A shed request re-enters admission.
    Retry { req: usize },
    /// Re-check batch formation (the batch-timeout timer).
    Timeout,
    /// Queued request may have exceeded its deadline; `attempt` guards
    /// against stale timers from earlier admissions.
    Expire { req: usize, attempt: u32 },
    /// A batch finished; the payload indexes `in_service`.
    Done(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Where in its lifecycle a request currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Not in the queue: before arrival or awaiting a retry.
    Idle,
    /// In the queue.
    Queued,
    /// In a launched batch.
    InService,
    /// Finished service.
    Completed,
    /// Permanently shed.
    Lost,
}

#[derive(Debug, Clone, Copy)]
struct ReqState {
    first_arrival: f64,
    /// Times this request has been offered to admission (arrival +
    /// retries).
    tries: u32,
    phase: Phase,
}

#[derive(Debug, Clone, Copy)]
struct QEntry {
    req: usize,
    enqueued: f64,
}

#[derive(Debug)]
struct Batch {
    server: usize,
    members: Vec<usize>,
}

/// Why a request is being shed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ShedReason {
    QueueFull,
    DeadlineExpired,
}

/// Runs the serving simulation.
///
/// Dynamic batching policy: a batch launches when a server is idle and
/// either `max_batch` requests are queued or `batch_timeout_s` has
/// elapsed since the oldest queued request arrived. This is the standard
/// production policy the paper's latency-vs-batch trade-off lives in.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate(latency: &LatencyModel, cfg: &ServingConfig) -> Result<ServingReport, ConfigError> {
    simulate_fleet(latency, &FleetConfig::new(cfg.with_servers(1)))
}

/// Simulates a pool of identical servers draining one queue (the
/// fleet-level view behind E18): a batch launches on any free server.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_pool(
    latency: &LatencyModel,
    cfg: &PoolConfig,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(latency, &FleetConfig::new(*cfg))
}

/// Like [`simulate`] with failure injection: some batches run slow.
///
/// Tail latency under stragglers is what production SLOs are actually
/// set against; a policy that looks fine at p99 with uniform service can
/// blow its SLO with 1% of batches running 3x slow.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_with_stragglers(
    latency: &LatencyModel,
    cfg: &ServingConfig,
    stragglers: &Stragglers,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(
        latency,
        &FleetConfig::new(cfg.with_servers(1)).with_stragglers(*stragglers),
    )
}

/// Pool of servers plus stragglers (no overload policy).
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_pool_with_stragglers(
    latency: &LatencyModel,
    pool: &PoolConfig,
    stragglers: &Stragglers,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(
        latency,
        &FleetConfig::new(*pool).with_stragglers(*stragglers),
    )
}

/// The full-featured entry point: pool, stragglers, deadlines, load
/// shedding, and retry-with-backoff.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_fleet(
    latency: &LatencyModel,
    cfg: &FleetConfig,
) -> Result<ServingReport, ConfigError> {
    cfg.validate()?;
    Ok(Engine::new(latency, cfg).run())
}

/// The DES state machine. One instance per run.
struct Engine<'a> {
    latency: &'a LatencyModel,
    cfg: FleetConfig,
    /// Pre-drawn Poisson arrival times.
    arrivals: Vec<f64>,
    /// Straggler multipliers draw from their own stream so enabling or
    /// disabling other features never perturbs them.
    straggler_rng: StdRng,
    events: BinaryHeap<Reverse<((TimeKey, u64), Event)>>,
    seq: u64,
    queue: VecDeque<QEntry>,
    /// Free server ids; smallest id first for determinism.
    free_servers: BinaryHeap<Reverse<usize>>,
    req: Vec<ReqState>,
    in_service: Vec<Batch>,
    latencies: Vec<f64>,
    completed: usize,
    good: usize,
    shed: usize,
    metrics: ServingMetrics,
    end_time: f64,
}

impl<'a> Engine<'a> {
    fn new(latency: &'a LatencyModel, cfg: &FleetConfig) -> Engine<'a> {
        let base = &cfg.pool.base;
        let n = base.requests;
        let mut rng = StdRng::seed_from_u64(base.seed);
        let mut arrivals = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for _ in 0..n {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / base.arrival_rate_rps;
            arrivals.push(t);
        }
        let mut free_servers = BinaryHeap::with_capacity(cfg.pool.servers);
        for s in 0..cfg.pool.servers {
            free_servers.push(Reverse(s));
        }
        Engine {
            latency,
            cfg: *cfg,
            arrivals,
            straggler_rng: StdRng::seed_from_u64(base.seed ^ 0x9E37_79B9_7F4A_7C15),
            events: BinaryHeap::new(),
            seq: 0,
            queue: VecDeque::new(),
            free_servers,
            req: vec![
                ReqState {
                    first_arrival: 0.0,
                    tries: 0,
                    phase: Phase::Idle,
                };
                n
            ],
            in_service: Vec::new(),
            latencies: Vec::with_capacity(n),
            completed: 0,
            good: 0,
            shed: 0,
            metrics: ServingMetrics::new(cfg.pool.servers),
            end_time: 0.0,
        }
    }

    fn push_event(&mut self, t: f64, e: Event) {
        self.events.push(Reverse(((TimeKey(t), self.seq), e)));
        self.seq += 1;
    }

    /// Offers a request to admission control; enqueues or sheds it.
    fn admit(&mut self, req: usize, now: f64) {
        self.req[req].tries += 1;
        if let Some(cap) = self.cfg.policy.queue_cap {
            if self.queue.len() >= cap {
                self.shed_request(req, now, ShedReason::QueueFull);
                return;
            }
        }
        self.metrics.admitted.inc();
        self.req[req].phase = Phase::Queued;
        self.queue.push_back(QEntry { req, enqueued: now });
        if let Some(b) = self.expiry_budget() {
            let attempt = self.req[req].tries;
            self.push_event(now + b, Event::Expire { req, attempt });
        }
        if !self.try_launch(now) && self.queue.len() == 1 {
            self.push_event(now + self.cfg.pool.base.batch_timeout_s, Event::Timeout);
        }
    }

    /// In-queue wait allowed per attempt before shedding, if shedding
    /// is on.
    fn expiry_budget(&self) -> Option<f64> {
        if !self.cfg.policy.shed_expired {
            return None;
        }
        self.cfg
            .policy
            .queue_budget_s
            .or(self.cfg.policy.deadline_s)
    }

    /// Sheds a request, scheduling a retry if the budget allows.
    ///
    /// Only admission rejections retry: a deadline-expired request's SLO
    /// has already passed, so re-serving it cannot produce good work.
    fn shed_request(&mut self, req: usize, now: f64, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.metrics.shed_queue_full.inc(),
            ShedReason::DeadlineExpired => self.metrics.shed_deadline.inc(),
        }
        let retry = self.cfg.policy.retry;
        let tries = self.req[req].tries;
        if reason == ShedReason::QueueFull && tries <= retry.max_retries {
            let delay = retry.backoff_s * retry.backoff_mult.powi(tries as i32 - 1);
            self.req[req].phase = Phase::Idle;
            self.metrics.retries.inc();
            self.push_event(now + delay, Event::Retry { req });
        } else {
            self.req[req].phase = Phase::Lost;
            self.shed += 1;
            if reason == ShedReason::QueueFull && retry.max_retries > 0 {
                self.metrics.retries_exhausted.inc();
            }
        }
    }

    /// Sheds the expired prefix of the queue (entries are enqueued in
    /// time order, so expiries are a prefix).
    fn shed_expired_prefix(&mut self, now: f64) {
        let Some(b) = self.expiry_budget() else {
            return;
        };
        while let Some(front) = self.queue.front() {
            if front.enqueued + b <= now + 1e-12 {
                let entry = self.queue.pop_front().expect("nonempty");
                self.shed_request(entry.req, now, ShedReason::DeadlineExpired);
            } else {
                break;
            }
        }
    }

    /// Greedily launches batches while a server is free and the batching
    /// policy allows; returns whether at least one batch launched.
    fn try_launch(&mut self, now: f64) -> bool {
        let cfg = self.cfg.pool.base;
        let mut launched = false;
        loop {
            self.shed_expired_prefix(now);
            if self.free_servers.is_empty() || self.queue.is_empty() {
                return launched;
            }
            let oldest = self.queue.front().expect("nonempty").enqueued;
            let full = self.queue.len() as u64 >= cfg.max_batch;
            let timed_out = now + 1e-12 >= oldest + cfg.batch_timeout_s;
            if !full && !timed_out {
                return launched;
            }
            let take = (self.queue.len() as u64).min(cfg.max_batch) as usize;
            let mut members = Vec::with_capacity(take);
            for _ in 0..take {
                let entry = self.queue.pop_front().expect("sized above");
                self.req[entry.req].phase = Phase::InService;
                self.metrics.queue_wait_s.observe(now - entry.enqueued);
                members.push(entry.req);
            }
            let mult = if self.cfg.stragglers.probability > 0.0
                && self.straggler_rng.gen_bool(self.cfg.stragglers.probability)
            {
                self.cfg.stragglers.factor
            } else {
                1.0
            };
            let service = self.latency.latency(take as u64) * mult;
            let Reverse(server) = self.free_servers.pop().expect("checked free");
            self.metrics.per_server_busy_s[server] += service;
            self.metrics.batch_sizes.observe(take as f64);
            let idx = self.in_service.len();
            self.in_service.push(Batch { server, members });
            self.push_event(now + service, Event::Done(idx));
            launched = true;
        }
    }

    fn run(mut self) -> ServingReport {
        let n = self.cfg.pool.base.requests;
        let first = self.arrivals[0];
        self.push_event(first, Event::Arrival(0));

        while let Some(Reverse(((TimeKey(now), _), event))) = self.events.pop() {
            self.end_time = self.end_time.max(now);
            match event {
                Event::Arrival(i) => {
                    self.metrics.arrivals.inc();
                    self.req[i].first_arrival = now;
                    if i + 1 < n {
                        let t = self.arrivals[i + 1];
                        self.push_event(t, Event::Arrival(i + 1));
                    }
                    self.admit(i, now);
                }
                Event::Retry { req } => {
                    self.admit(req, now);
                }
                Event::Timeout => {
                    // With every server busy there is nothing to do: the
                    // next Done event re-checks the queue (re-arming here
                    // would spin the event loop).
                    if !self.queue.is_empty() && !self.free_servers.is_empty() {
                        let launched = self.try_launch(now);
                        if !launched {
                            if let Some(front) = self.queue.front() {
                                // A server is free but the (new) oldest
                                // request has not waited out the timeout
                                // yet; this fire time is strictly in the
                                // future, else the launch would have
                                // happened.
                                let t = front.enqueued + self.cfg.pool.base.batch_timeout_s;
                                self.push_event(t, Event::Timeout);
                            }
                        }
                    }
                }
                Event::Expire { req, attempt } => {
                    // Stale timers (the request retried, launched, or
                    // finished since) are no-ops.
                    if self.req[req].phase == Phase::Queued && self.req[req].tries == attempt {
                        if let Some(pos) = self.queue.iter().position(|e| e.req == req) {
                            self.queue.remove(pos);
                            self.shed_request(req, now, ShedReason::DeadlineExpired);
                        }
                    }
                }
                Event::Done(idx) => {
                    let server = self.in_service[idx].server;
                    self.free_servers.push(Reverse(server));
                    let members = std::mem::take(&mut self.in_service[idx].members);
                    for req in members {
                        let lat = now - self.req[req].first_arrival;
                        self.req[req].phase = Phase::Completed;
                        self.latencies.push(lat);
                        self.completed += 1;
                        self.metrics.completed.inc();
                        match self.cfg.policy.deadline_s {
                            Some(d) if lat > d => self.metrics.completed_late.inc(),
                            _ => self.good += 1,
                        }
                    }
                    // The freed server may immediately take another batch.
                    if !self.try_launch(now) && !self.queue.is_empty() {
                        let front = self.queue.front().expect("nonempty");
                        let fire = (front.enqueued + self.cfg.pool.base.batch_timeout_s).max(now);
                        self.push_event(fire, Event::Timeout);
                    }
                }
            }
        }

        // Anything still queued when the heap drained is accounted as
        // dropped — conservation over silent loss.
        let dropped = self.queue.len();
        for entry in self.queue.drain(..) {
            self.req[entry.req].phase = Phase::Lost;
            self.metrics.dropped_at_drain.inc();
        }
        debug_assert_eq!(
            self.completed + self.shed + dropped,
            n,
            "request conservation violated"
        );

        let stats = LatencyStats::from_samples(&self.latencies);
        let total_time = self.end_time.max(1e-12);
        let servers = self.cfg.pool.servers;
        let busy_total: f64 = self.metrics.per_server_busy_s.iter().sum();
        ServingReport {
            p50_s: stats.p50_s,
            p99_s: stats.p99_s,
            throughput_rps: self.completed as f64 / total_time,
            goodput_rps: self.good as f64 / total_time,
            mean_batch: self.metrics.batch_sizes.mean(),
            server_utilization: (busy_total / (total_time * servers as f64)).min(1.0),
            arrivals: n,
            completed: self.completed,
            shed: self.shed,
            dropped,
            stats,
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_model() -> LatencyModel {
        // 1 ms fixed + 0.05 ms per item.
        LatencyModel::from_points(vec![(1, 0.00105), (100, 0.006)]).unwrap()
    }

    fn cfg(rate: f64) -> ServingConfig {
        ServingConfig {
            arrival_rate_rps: rate,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 4000,
            seed: 42,
        }
    }

    #[test]
    fn all_requests_complete() {
        let r = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert_eq!(r.stats.n, 4000);
        assert_eq!(r.completed, 4000);
        assert_eq!(r.shed, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.conservation_holds());
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        let b = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert_eq!(a, b);
        let mut c2 = cfg(2000.0);
        c2.seed = 43;
        let c = simulate(&linear_model(), &c2).unwrap();
        // Different arrival draws shift the mean (p99 may coincide when
        // dominated by the batch timeout).
        assert_ne!(a.stats.mean_s, c.stats.mean_s);
    }

    #[test]
    fn light_load_latency_is_service_plus_timeout() {
        // At very light load, each request waits out the batch timeout
        // alone, then is served at batch 1.
        let m = linear_model();
        let mut c = cfg(10.0);
        c.requests = 500;
        let r = simulate(&m, &c).unwrap();
        let expected = 0.001 + m.latency(1);
        assert!(
            (r.p50_s - expected).abs() < 0.3e-3,
            "p50 {} vs expected {expected}",
            r.p50_s
        );
        assert!(r.mean_batch < 1.3);
    }

    #[test]
    fn heavy_load_forms_big_batches() {
        let r_light = simulate(&linear_model(), &cfg(200.0)).unwrap();
        let r_heavy = simulate(&linear_model(), &cfg(8000.0)).unwrap();
        assert!(r_heavy.mean_batch > 4.0 * r_light.mean_batch.max(1.0));
        assert!(r_heavy.server_utilization > r_light.server_utilization);
    }

    #[test]
    fn p99_explodes_past_saturation() {
        // Capacity with batch 16: 16 / latency(16) ≈ 9k rps.
        let below = simulate(&linear_model(), &cfg(5000.0)).unwrap();
        let mut over = cfg(20000.0);
        over.requests = 6000;
        let above = simulate(&linear_model(), &over).unwrap();
        assert!(
            above.p99_s > 5.0 * below.p99_s,
            "saturation must blow up p99: {} vs {}",
            above.p99_s,
            below.p99_s
        );
    }

    #[test]
    fn p99_grows_with_load() {
        let mut last = 0.0;
        for rate in [500.0, 2000.0, 6000.0] {
            let r = simulate(&linear_model(), &cfg(rate)).unwrap();
            assert!(r.p99_s >= last * 0.8, "p99 should broadly grow with load");
            last = r.p99_s;
        }
    }

    #[test]
    fn stragglers_inflate_the_tail_more_than_the_median() {
        let m = linear_model();
        let base = simulate(&m, &cfg(2000.0)).unwrap();
        let slow = simulate_with_stragglers(
            &m,
            &cfg(2000.0),
            &Stragglers {
                probability: 0.02,
                factor: 10.0,
            },
        )
        .unwrap();
        // All requests still complete.
        assert_eq!(slow.stats.n, base.stats.n);
        // The tail suffers disproportionately.
        let p99_blowup = slow.p99_s / base.p99_s;
        let p50_blowup = slow.p50_s / base.p50_s;
        assert!(p99_blowup > 2.0, "p99 blowup {p99_blowup}");
        assert!(
            p99_blowup > 2.0 * p50_blowup,
            "tail must suffer more: p99 {p99_blowup:.2}x vs p50 {p50_blowup:.2}x"
        );
    }

    #[test]
    fn zero_probability_stragglers_change_nothing() {
        let m = linear_model();
        let a = simulate(&m, &cfg(3000.0)).unwrap();
        let b = simulate_with_stragglers(&m, &cfg(3000.0), &Stragglers::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_servers_cut_queueing_latency() {
        // Load that saturates one server comfortably fits four.
        let m = linear_model();
        let mut c = cfg(12000.0);
        c.requests = 6000;
        let one = simulate_pool(&m, &c.with_servers(1)).unwrap();
        let four = simulate_pool(&m, &c.with_servers(4)).unwrap();
        assert_eq!(one.stats.n, four.stats.n);
        assert!(
            four.p99_s < one.p99_s / 3.0,
            "four servers must slash the tail: {} vs {}",
            four.p99_s,
            one.p99_s
        );
        assert!(four.server_utilization < one.server_utilization);
    }

    #[test]
    fn pool_of_one_matches_single_server_api() {
        let m = linear_model();
        let c = cfg(2000.0);
        let a = simulate(&m, &c).unwrap();
        let b = simulate_pool(&m, &c.with_servers(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pool_throughput_scales_until_arrival_limited() {
        let m = linear_model();
        let mut c = cfg(50_000.0); // far past single-server capacity
        c.requests = 8000;
        let t1 = simulate_pool(&m, &c.with_servers(1))
            .unwrap()
            .throughput_rps;
        let t4 = simulate_pool(&m, &c.with_servers(4))
            .unwrap()
            .throughput_rps;
        assert!(t4 > 2.5 * t1, "{t4} vs {t1}");
    }

    #[test]
    fn utilization_bounded() {
        let r = simulate(&linear_model(), &cfg(100000.0)).unwrap();
        assert!(r.server_utilization <= 1.0);
        assert!(r.server_utilization > 0.9);
    }

    // ---- config validation regressions --------------------------------

    #[test]
    fn max_batch_zero_is_a_typed_error() {
        // Regression: this used to spin forever launching empty batches
        // and then panic indexing the straggler table out of bounds.
        let m = linear_model();
        let mut c = cfg(1000.0);
        c.max_batch = 0;
        assert_eq!(simulate(&m, &c), Err(ConfigError::ZeroMaxBatch));
        assert_eq!(
            simulate_pool_with_stragglers(&m, &c.with_servers(3), &Stragglers::default()),
            Err(ConfigError::ZeroMaxBatch)
        );
    }

    #[test]
    fn zero_arrival_rate_is_a_typed_error() {
        let m = linear_model();
        let mut c = cfg(0.0);
        c.arrival_rate_rps = 0.0;
        assert_eq!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(0.0))
        );
        assert_eq!(
            simulate_pool_with_stragglers(&m, &c.with_servers(2), &Stragglers::default()),
            Err(ConfigError::NonPositiveArrivalRate(0.0))
        );
        c.arrival_rate_rps = -5.0;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(_))
        ));
    }

    #[test]
    fn nan_and_degenerate_knobs_are_typed_errors() {
        let m = linear_model();
        let mut c = cfg(1000.0);
        c.arrival_rate_rps = f64::NAN;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(_))
        ));
        let mut c = cfg(1000.0);
        c.batch_timeout_s = f64::NAN;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::InvalidBatchTimeout(_))
        ));
        let mut c = cfg(1000.0);
        c.batch_timeout_s = -1.0;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::InvalidBatchTimeout(_))
        ));
        let mut c = cfg(1000.0);
        c.requests = 0;
        assert_eq!(simulate(&m, &c), Err(ConfigError::ZeroRequests));
        let pool = PoolConfig {
            base: cfg(1000.0),
            servers: 0,
        };
        assert_eq!(simulate_pool(&m, &pool), Err(ConfigError::ZeroServers));
        assert!(matches!(
            simulate_with_stragglers(
                &m,
                &cfg(1000.0),
                &Stragglers {
                    probability: 1.5,
                    factor: 2.0
                }
            ),
            Err(ConfigError::InvalidStragglerProbability(_))
        ));
        assert!(matches!(
            simulate_with_stragglers(
                &m,
                &cfg(1000.0),
                &Stragglers {
                    probability: 0.1,
                    factor: 0.5
                }
            ),
            Err(ConfigError::InvalidStragglerFactor(_))
        ));
    }

    #[test]
    fn bad_policy_is_a_typed_error() {
        let m = linear_model();
        let fleet =
            |policy: FleetPolicy| FleetConfig::new(cfg(1000.0).with_servers(1)).with_policy(policy);
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    deadline_s: Some(f64::NAN),
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidDeadline(_))
        ));
        assert_eq!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    shed_expired: true,
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::SheddingWithoutDeadline)
        );
        assert_eq!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    queue_cap: Some(0),
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::ZeroQueueCap)
        );
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    retry: RetryPolicy {
                        max_retries: 1,
                        backoff_s: -1.0,
                        backoff_mult: 2.0
                    },
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidRetryBackoff(_))
        ));
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    retry: RetryPolicy {
                        max_retries: 1,
                        backoff_s: 0.001,
                        backoff_mult: 0.0
                    },
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidRetryBackoffMult(_))
        ));
    }

    #[test]
    fn config_error_displays() {
        let msg = format!("{}", ConfigError::ZeroMaxBatch);
        assert!(msg.contains("max_batch"));
        let msg = format!("{}", ConfigError::NonPositiveArrivalRate(f64::NAN));
        assert!(msg.contains("arrival_rate_rps"));
    }

    // ---- fleet policy behavior ----------------------------------------

    /// A mildly overloaded fleet: one server, arrivals ~1.7x capacity.
    fn overloaded_fleet(policy: FleetPolicy) -> FleetConfig {
        let mut base = cfg(15_000.0);
        base.requests = 6000;
        FleetConfig::new(base.with_servers(1)).with_policy(policy)
    }

    #[test]
    fn conservation_holds_under_every_policy() {
        let m = linear_model();
        let policies = [
            FleetPolicy::default(),
            FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                ..FleetPolicy::default()
            },
            FleetPolicy {
                queue_cap: Some(32),
                ..FleetPolicy::default()
            },
            FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                queue_cap: Some(32),
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff_s: 0.002,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            },
        ];
        for policy in policies {
            let r = simulate_fleet(&m, &overloaded_fleet(policy)).unwrap();
            assert!(
                r.conservation_holds(),
                "arrivals {} != completed {} + shed {} + dropped {} for {policy:?}",
                r.arrivals,
                r.completed,
                r.shed,
                r.dropped
            );
            assert_eq!(r.completed as u64, r.metrics.completed.get());
            assert_eq!(r.shed as u64, r.metrics.shed_total());
            assert_eq!(r.dropped as u64, r.metrics.dropped_at_drain.get());
        }
    }

    #[test]
    fn deadline_shedding_sheds_and_protects_goodput() {
        let m = linear_model();
        let deadline = 0.02;
        let no_shed = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(deadline),
                shed_expired: false,
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        let shed = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(deadline),
                shed_expired: true,
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        // Without shedding everything completes, but mostly too late.
        assert_eq!(no_shed.completed, no_shed.arrivals);
        assert!(no_shed.metrics.completed_late.get() > 0);
        assert!(no_shed.goodput_rps < no_shed.throughput_rps);
        // With shedding, expired requests are lost instead of served.
        assert!(shed.shed > 0);
        assert!(shed.metrics.shed_deadline.get() > 0);
        // Shedding protects goodput: served requests meet the deadline.
        assert!(
            shed.goodput_rps > 1.5 * no_shed.goodput_rps,
            "shedding goodput {} vs head-of-line-blocked {}",
            shed.goodput_rps,
            no_shed.goodput_rps
        );
    }

    #[test]
    fn queue_cap_sheds_under_overload() {
        let m = linear_model();
        let r = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                queue_cap: Some(32),
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        assert!(r.shed > 0);
        assert!(r.metrics.shed_queue_full.get() > 0);
        // The queue never exceeded its cap, so waits stay bounded: every
        // admitted request waits at most cap/throughput plus service.
        assert!(
            r.p99_s < 0.05,
            "p99 {} should be bounded by the cap",
            r.p99_s
        );
        assert!(r.conservation_holds());
    }

    #[test]
    fn retries_recover_some_sheds() {
        let m = linear_model();
        let policy_no_retry = FleetPolicy {
            queue_cap: Some(32),
            ..FleetPolicy::default()
        };
        let policy_retry = FleetPolicy {
            queue_cap: Some(32),
            retry: RetryPolicy {
                max_retries: 3,
                backoff_s: 0.005,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        };
        let without = simulate_fleet(&m, &overloaded_fleet(policy_no_retry)).unwrap();
        let with = simulate_fleet(&m, &overloaded_fleet(policy_retry)).unwrap();
        assert!(with.metrics.retries.get() > 0);
        // Every permanent loss under retries burned its whole budget.
        assert_eq!(with.shed as u64, with.metrics.retries_exhausted.get());
        // Retries convert some sheds into completions.
        assert!(
            with.completed > without.completed,
            "retries should recover work: {} vs {}",
            with.completed,
            without.completed
        );
        assert!(with.conservation_holds());
    }

    #[test]
    fn queue_budget_reserves_room_for_service() {
        let m = linear_model();
        // Budget validation.
        let bad = FleetConfig::new(cfg(1000.0).with_servers(1)).with_policy(FleetPolicy {
            deadline_s: Some(0.02),
            shed_expired: true,
            queue_budget_s: Some(f64::NAN),
            ..FleetPolicy::default()
        });
        assert!(matches!(
            simulate_fleet(&m, &bad),
            Err(ConfigError::InvalidQueueBudget(_))
        ));
        // With the full deadline as queue budget, a request can launch
        // right at the wire and finish late; reserving service time in
        // the budget keeps completions on time.
        let deadline = 0.02;
        let run = |budget: Option<f64>| {
            simulate_fleet(
                &m,
                &overloaded_fleet(FleetPolicy {
                    deadline_s: Some(deadline),
                    shed_expired: true,
                    queue_budget_s: budget,
                    ..FleetPolicy::default()
                }),
            )
            .unwrap()
        };
        let full = run(None);
        let reserved = run(Some(deadline - m.latency(16)));
        assert!(full.metrics.completed_late.get() > 0);
        assert!(
            reserved.metrics.completed_late.get() < full.metrics.completed_late.get(),
            "reserving service headroom must cut late completions: {} vs {}",
            reserved.metrics.completed_late.get(),
            full.metrics.completed_late.get()
        );
    }

    #[test]
    fn deadline_sheds_do_not_retry() {
        // Retries are for admission rejections; a request whose SLO
        // already passed is permanently lost even with a retry budget.
        let m = linear_model();
        let r = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff_s: 0.001,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        assert!(r.metrics.shed_deadline.get() > 0);
        assert_eq!(r.metrics.retries.get(), 0);
        assert_eq!(r.shed as u64, r.metrics.shed_deadline.get());
        assert!(r.conservation_holds());
    }

    #[test]
    fn goodput_equals_throughput_without_deadline() {
        let r = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert!((r.goodput_rps - r.throughput_rps).abs() < 1e-9);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let m = linear_model();
        let fleet = overloaded_fleet(FleetPolicy {
            deadline_s: Some(0.015),
            shed_expired: true,
            queue_cap: Some(64),
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.002,
                backoff_mult: 1.5,
            },
            ..FleetPolicy::default()
        })
        .with_stragglers(Stragglers {
            probability: 0.05,
            factor: 4.0,
        });
        let a = simulate_fleet(&m, &fleet).unwrap();
        let b = simulate_fleet(&m, &fleet).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_server_busy_time_is_tracked() {
        let m = linear_model();
        let mut c = cfg(12_000.0);
        c.requests = 6000;
        let r = simulate_pool(&m, &c.with_servers(3)).unwrap();
        assert_eq!(r.metrics.per_server_busy_s.len(), 3);
        // Under saturating load every server gets work.
        for (s, &busy) in r.metrics.per_server_busy_s.iter().enumerate() {
            assert!(busy > 0.0, "server {s} never worked");
        }
        let total: f64 = r.metrics.per_server_busy_s.iter().sum();
        assert!(r.server_utilization <= 1.0);
        assert!(total > 0.0);
    }
}
