//! The discrete-event serving loop: Poisson arrivals, dynamic batching.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::LatencyModel;
use crate::stats::LatencyStats;

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Mean request arrival rate (Poisson), requests/second.
    pub arrival_rate_rps: f64,
    /// Largest batch the server will form.
    pub max_batch: u64,
    /// How long the server waits for a batch to fill before launching a
    /// partial one, seconds.
    pub batch_timeout_s: f64,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
}

impl ServingConfig {
    /// The same configuration served by a pool of `servers` identical
    /// chips behind one queue (see [`simulate_pool`]).
    pub fn with_servers(self, servers: usize) -> PoolConfig {
        PoolConfig {
            base: self,
            servers: servers.max(1),
        }
    }
}

/// A pool of identical servers behind one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Per-run knobs shared with the single-server simulation.
    pub base: ServingConfig,
    /// Number of identical chips serving the queue.
    pub servers: usize,
}

/// Failure-injection knobs: occasional slow service (thermal throttling,
/// host interference). A batch is independently a straggler with
/// probability `probability`, multiplying its service time by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stragglers {
    /// Per-batch straggler probability in [0, 1].
    pub probability: f64,
    /// Service-time multiplier for straggler batches (>= 1).
    pub factor: f64,
}

impl Default for Stragglers {
    fn default() -> Stragglers {
        Stragglers {
            probability: 0.0,
            factor: 1.0,
        }
    }
}

/// The result of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// End-to-end (queue + service) latency statistics.
    pub stats: LatencyStats,
    /// p50 shorthand, seconds.
    pub p50_s: f64,
    /// p99 shorthand, seconds (the SLO metric, Lesson 10).
    pub p99_s: f64,
    /// Achieved throughput, requests/second.
    pub throughput_rps: f64,
    /// Mean formed batch size.
    pub mean_batch: f64,
    /// Fraction of the run the server was busy.
    pub server_utilization: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival(usize),
    Deadline,
    /// A batch finished; the payload indexes `in_service`.
    Done(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

// Event ordering tie-break: arrivals before deadlines before completions
// at identical times is irrelevant to correctness; any total order works.
fn key(t: f64, seq: u64) -> (TimeKey, u64) {
    (TimeKey(t), seq)
}

/// Runs the serving simulation.
///
/// Dynamic batching policy: a batch launches when the server is idle and
/// either `max_batch` requests are queued or `batch_timeout_s` has
/// elapsed since the oldest queued request arrived. This is the standard
/// production policy the paper's latency-vs-batch trade-off lives in.
pub fn simulate(latency: &LatencyModel, cfg: &ServingConfig) -> ServingReport {
    simulate_pool_with_stragglers(
        latency,
        &cfg.with_servers(1),
        &Stragglers::default(),
    )
}

/// Simulates a pool of identical servers draining one queue (the
/// fleet-level view behind E18): a batch launches on any free server.
pub fn simulate_pool(latency: &LatencyModel, cfg: &PoolConfig) -> ServingReport {
    simulate_pool_with_stragglers(latency, cfg, &Stragglers::default())
}

/// Like [`simulate`] with failure injection: some batches run slow.
///
/// Tail latency under stragglers is what production SLOs are actually
/// set against; a policy that looks fine at p99 with uniform service can
/// blow its SLO with 1% of batches running 3x slow.
pub fn simulate_with_stragglers(
    latency: &LatencyModel,
    cfg: &ServingConfig,
    stragglers: &Stragglers,
) -> ServingReport {
    simulate_pool_with_stragglers(latency, &cfg.with_servers(1), stragglers)
}

/// The full-featured entry point: pool of servers plus stragglers.
pub fn simulate_pool_with_stragglers(
    latency: &LatencyModel,
    pool: &PoolConfig,
    stragglers: &Stragglers,
) -> ServingReport {
    let cfg = &pool.base;
    let servers = pool.servers.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.requests.max(1);
    // Pre-draw Poisson arrivals.
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / cfg.arrival_rate_rps.max(1e-9);
        arrivals.push(t);
    }
    // Pre-draw straggler multipliers (there can never be more batches
    // than requests).
    let straggler_mults: Vec<f64> = (0..n)
        .map(|_| {
            if stragglers.probability > 0.0
                && rng.gen_bool(stragglers.probability.clamp(0.0, 1.0))
            {
                stragglers.factor.max(1.0)
            } else {
                1.0
            }
        })
        .collect();

    let mut events: BinaryHeap<Reverse<((TimeKey, u64), Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_event = |events: &mut BinaryHeap<Reverse<((TimeKey, u64), Event)>>,
                          seq: &mut u64,
                          t: f64,
                          e: Event| {
        events.push(Reverse((key(t, *seq), e)));
        *seq += 1;
    };
    push_event(&mut events, &mut seq, arrivals[0], Event::Arrival(0));

    let mut queue: VecDeque<f64> = VecDeque::new(); // arrival times
    let mut busy_servers = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    let mut batches: Vec<u64> = Vec::new();
    let mut busy_time = 0.0f64;
    let mut in_service: Vec<Vec<f64>> = Vec::new();
    let mut end_time = 0.0f64;

    // Launches one batch on a free server; returns false if the launch
    // conditions do not hold.
    let try_launch = |now: f64,
                          queue: &mut VecDeque<f64>,
                          busy_servers: &mut usize,
                          busy_time: &mut f64,
                          batches: &mut Vec<u64>,
                          in_service: &mut Vec<Vec<f64>>,
                          events: &mut BinaryHeap<Reverse<((TimeKey, u64), Event)>>,
                          seq: &mut u64|
     -> bool {
        if *busy_servers >= servers || queue.is_empty() {
            return false;
        }
        let oldest = *queue.front().expect("nonempty");
        let full = queue.len() as u64 >= cfg.max_batch;
        let timed_out = now + 1e-12 >= oldest + cfg.batch_timeout_s;
        if !full && !timed_out {
            return false;
        }
        let take = (queue.len() as u64).min(cfg.max_batch) as usize;
        let batch: Vec<f64> = queue.drain(..take).collect();
        let service = latency.latency(take as u64) * straggler_mults[batches.len()];
        *busy_servers += 1;
        *busy_time += service;
        batches.push(take as u64);
        let idx = in_service.len();
        in_service.push(batch);
        events.push(Reverse((key(now + service, *seq), Event::Done(idx))));
        *seq += 1;
        true
    };

    while let Some(Reverse(((TimeKey(now), _), event))) = events.pop() {
        end_time = end_time.max(now);
        match event {
            Event::Arrival(i) => {
                queue.push_back(now);
                if i + 1 < n {
                    push_event(&mut events, &mut seq, arrivals[i + 1], Event::Arrival(i + 1));
                }
                if !try_launch(
                    now, &mut queue, &mut busy_servers, &mut busy_time, &mut batches,
                    &mut in_service, &mut events, &mut seq,
                ) && queue.len() == 1
                {
                    push_event(&mut events, &mut seq, now + cfg.batch_timeout_s, Event::Deadline);
                }
            }
            Event::Deadline => {
                // With every server busy there is nothing to do: the next
                // Done event re-checks the queue (re-arming here would
                // spin the event loop).
                if !queue.is_empty() && busy_servers < servers {
                    let launched = try_launch(
                        now, &mut queue, &mut busy_servers, &mut busy_time, &mut batches,
                        &mut in_service, &mut events, &mut seq,
                    );
                    if !launched {
                        // A server is free but the (new) oldest request
                        // has not waited out the timeout yet.
                        let oldest = *queue.front().expect("nonempty");
                        push_event(
                            &mut events,
                            &mut seq,
                            oldest + cfg.batch_timeout_s,
                            Event::Deadline,
                        );
                    }
                }
            }
            Event::Done(idx) => {
                busy_servers -= 1;
                for &arr in &in_service[idx] {
                    latencies.push(now - arr);
                }
                in_service[idx].clear();
                // The freed server may immediately take another batch.
                if !try_launch(
                    now, &mut queue, &mut busy_servers, &mut busy_time, &mut batches,
                    &mut in_service, &mut events, &mut seq,
                ) && !queue.is_empty()
                {
                    let oldest = *queue.front().expect("nonempty");
                    let fire = (oldest + cfg.batch_timeout_s).max(now);
                    push_event(&mut events, &mut seq, fire, Event::Deadline);
                }
            }
        }
    }

    let stats = LatencyStats::from_samples(&latencies);
    let total_time = end_time.max(1e-12);
    ServingReport {
        p50_s: stats.p50_s,
        p99_s: stats.p99_s,
        throughput_rps: latencies.len() as f64 / total_time,
        mean_batch: if batches.is_empty() {
            0.0
        } else {
            batches.iter().sum::<u64>() as f64 / batches.len() as f64
        },
        server_utilization: (busy_time / (total_time * servers as f64)).min(1.0),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_model() -> LatencyModel {
        // 1 ms fixed + 0.05 ms per item.
        LatencyModel::from_points(vec![(1, 0.00105), (100, 0.006)]).unwrap()
    }

    fn cfg(rate: f64) -> ServingConfig {
        ServingConfig {
            arrival_rate_rps: rate,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 4000,
            seed: 42,
        }
    }

    #[test]
    fn all_requests_complete() {
        let r = simulate(&linear_model(), &cfg(2000.0));
        assert_eq!(r.stats.n, 4000);
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&linear_model(), &cfg(2000.0));
        let b = simulate(&linear_model(), &cfg(2000.0));
        assert_eq!(a, b);
        let mut c2 = cfg(2000.0);
        c2.seed = 43;
        let c = simulate(&linear_model(), &c2);
        // Different arrival draws shift the mean (p99 may coincide when
        // dominated by the batch timeout).
        assert_ne!(a.stats.mean_s, c.stats.mean_s);
    }

    #[test]
    fn light_load_latency_is_service_plus_timeout() {
        // At very light load, each request waits out the batch timeout
        // alone, then is served at batch 1.
        let m = linear_model();
        let mut c = cfg(10.0);
        c.requests = 500;
        let r = simulate(&m, &c);
        let expected = 0.001 + m.latency(1);
        assert!(
            (r.p50_s - expected).abs() < 0.3e-3,
            "p50 {} vs expected {expected}",
            r.p50_s
        );
        assert!(r.mean_batch < 1.3);
    }

    #[test]
    fn heavy_load_forms_big_batches() {
        let r_light = simulate(&linear_model(), &cfg(200.0));
        let r_heavy = simulate(&linear_model(), &cfg(8000.0));
        assert!(r_heavy.mean_batch > 4.0 * r_light.mean_batch.max(1.0));
        assert!(r_heavy.server_utilization > r_light.server_utilization);
    }

    #[test]
    fn p99_explodes_past_saturation() {
        // Capacity with batch 16: 16 / latency(16) ≈ 9k rps.
        let below = simulate(&linear_model(), &cfg(5000.0));
        let mut over = cfg(20000.0);
        over.requests = 6000;
        let above = simulate(&linear_model(), &over);
        assert!(
            above.p99_s > 5.0 * below.p99_s,
            "saturation must blow up p99: {} vs {}",
            above.p99_s,
            below.p99_s
        );
    }

    #[test]
    fn p99_grows_with_load() {
        let mut last = 0.0;
        for rate in [500.0, 2000.0, 6000.0] {
            let r = simulate(&linear_model(), &cfg(rate));
            assert!(
                r.p99_s >= last * 0.8,
                "p99 should broadly grow with load"
            );
            last = r.p99_s;
        }
    }

    #[test]
    fn stragglers_inflate_the_tail_more_than_the_median() {
        let m = linear_model();
        let base = simulate(&m, &cfg(2000.0));
        let slow = simulate_with_stragglers(
            &m,
            &cfg(2000.0),
            &Stragglers {
                probability: 0.02,
                factor: 10.0,
            },
        );
        // All requests still complete.
        assert_eq!(slow.stats.n, base.stats.n);
        // The tail suffers disproportionately.
        let p99_blowup = slow.p99_s / base.p99_s;
        let p50_blowup = slow.p50_s / base.p50_s;
        assert!(p99_blowup > 2.0, "p99 blowup {p99_blowup}");
        assert!(
            p99_blowup > 2.0 * p50_blowup,
            "tail must suffer more: p99 {p99_blowup:.2}x vs p50 {p50_blowup:.2}x"
        );
    }

    #[test]
    fn zero_probability_stragglers_change_nothing() {
        let m = linear_model();
        let a = simulate(&m, &cfg(3000.0));
        let b = simulate_with_stragglers(&m, &cfg(3000.0), &Stragglers::default());
        assert_eq!(a, b);
    }

    #[test]
    fn more_servers_cut_queueing_latency() {
        // Load that saturates one server comfortably fits four.
        let m = linear_model();
        let mut c = cfg(12000.0);
        c.requests = 6000;
        let one = simulate_pool(&m, &c.with_servers(1));
        let four = simulate_pool(&m, &c.with_servers(4));
        assert_eq!(one.stats.n, four.stats.n);
        assert!(
            four.p99_s < one.p99_s / 3.0,
            "four servers must slash the tail: {} vs {}",
            four.p99_s,
            one.p99_s
        );
        assert!(four.server_utilization < one.server_utilization);
    }

    #[test]
    fn pool_of_one_matches_single_server_api() {
        let m = linear_model();
        let c = cfg(2000.0);
        let a = simulate(&m, &c);
        let b = simulate_pool(&m, &c.with_servers(1));
        assert_eq!(a, b);
    }

    #[test]
    fn pool_throughput_scales_until_arrival_limited() {
        let m = linear_model();
        let mut c = cfg(50_000.0); // far past single-server capacity
        c.requests = 8000;
        let t1 = simulate_pool(&m, &c.with_servers(1)).throughput_rps;
        let t4 = simulate_pool(&m, &c.with_servers(4)).throughput_rps;
        assert!(t4 > 2.5 * t1, "{t4} vs {t1}");
    }

    #[test]
    fn utilization_bounded() {
        let r = simulate(&linear_model(), &cfg(100000.0));
        assert!(r.server_utilization <= 1.0);
        assert!(r.server_utilization > 0.9);
    }
}
