//! The discrete-event serving loop: Poisson arrivals, dynamic batching,
//! and the fleet-grade machinery production SLOs are set against —
//! per-request deadlines, admission control (load shedding),
//! retry-with-backoff (Lesson 10), and fault injection with health
//! checking and failover (see [`crate::faults`]).
//!
//! Every server owns its queue and a round-robin router spreads arrivals
//! over the replicas it believes are up; with failover enabled a health
//! checker updates that belief, drains dead servers' queues, and
//! redistributes their requests. In-flight work killed by a crash enters
//! the `failed` terminal state.
//!
//! Every entry point validates its configuration up front and returns a
//! typed [`ConfigError`] for degenerate inputs (`max_batch: 0`,
//! non-positive arrival rates, NaNs) instead of hanging or panicking.
//! Every run satisfies request conservation:
//! `arrivals == completed + shed + dropped + failed` (see
//! [`ServingReport::conservation_holds`]).

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpu_telemetry::{EventSink, NullSink, Recorder, SpanPhase, TelemetryEvent, Track};

use crate::arena::{Handle, SlotArena};
use crate::equeue::{CalendarQueue, EventQueue, HeapQueue, TimeKey};
use crate::faults::{FailoverConfig, FaultKind, FaultPlan, ScheduledFault};
use crate::genmodel::GenerationModel;
use crate::latency::{GenLatencyModel, LatencyModel};
use crate::metrics::ServingMetrics;
use crate::stats::LatencyStats;

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Mean request arrival rate (Poisson), requests/second.
    pub arrival_rate_rps: f64,
    /// Largest batch the server will form.
    pub max_batch: u64,
    /// How long the server waits for a batch to fill before launching a
    /// partial one, seconds.
    pub batch_timeout_s: f64,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
}

impl ServingConfig {
    /// The same configuration served by a pool of `servers` identical
    /// chips (see [`simulate_pool`]).
    pub fn with_servers(self, servers: usize) -> PoolConfig {
        PoolConfig {
            base: self,
            servers: servers.max(1),
        }
    }

    /// Checks every knob, returning the first problem found.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a non-positive or non-finite arrival rate, a
    /// zero batch cap, a negative or non-finite batch timeout, or a
    /// zero request count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.arrival_rate_rps.is_finite() || self.arrival_rate_rps <= 0.0 {
            return Err(ConfigError::NonPositiveArrivalRate(self.arrival_rate_rps));
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if !self.batch_timeout_s.is_finite() || self.batch_timeout_s < 0.0 {
            return Err(ConfigError::InvalidBatchTimeout(self.batch_timeout_s));
        }
        if self.requests == 0 {
            return Err(ConfigError::ZeroRequests);
        }
        Ok(())
    }
}

/// A pool of identical servers, each with its own queue, behind a
/// round-robin router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Per-run knobs shared with the single-server simulation.
    pub base: ServingConfig,
    /// Number of identical chips serving.
    pub servers: usize,
}

impl PoolConfig {
    /// Validates the base config and the pool size.
    ///
    /// # Errors
    ///
    /// Everything [`ServingConfig::validate`] rejects, plus
    /// [`ConfigError::ZeroServers`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.base.validate()?;
        if self.servers == 0 {
            return Err(ConfigError::ZeroServers);
        }
        Ok(())
    }
}

/// Failure-injection knobs: occasional slow service (thermal throttling,
/// host interference). A batch is independently a straggler with
/// probability `probability`, multiplying its service time by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stragglers {
    /// Per-batch straggler probability in [0, 1].
    pub probability: f64,
    /// Service-time multiplier for straggler batches (>= 1).
    pub factor: f64,
}

impl Default for Stragglers {
    fn default() -> Stragglers {
        Stragglers {
            probability: 0.0,
            factor: 1.0,
        }
    }
}

impl Stragglers {
    /// Checks probability and factor ranges.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidStragglerProbability`] or
    /// [`ConfigError::InvalidStragglerFactor`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.probability.is_finite() || !(0.0..=1.0).contains(&self.probability) {
            return Err(ConfigError::InvalidStragglerProbability(self.probability));
        }
        if !self.factor.is_finite() || self.factor < 1.0 {
            return Err(ConfigError::InvalidStragglerFactor(self.factor));
        }
        Ok(())
    }
}

/// Retry behavior for shed or failed requests: exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How many times a shed/failed request re-enters the queue before
    /// it is permanently lost. 0 disables retries.
    pub max_retries: u32,
    /// Delay before the first retry, seconds.
    pub backoff_s: f64,
    /// Multiplier applied to the delay on each further retry (>= 1).
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_s: 0.01,
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Checks the backoff parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidRetryBackoff`] or
    /// [`ConfigError::InvalidRetryBackoffMult`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.backoff_s.is_finite() || self.backoff_s < 0.0 {
            return Err(ConfigError::InvalidRetryBackoff(self.backoff_s));
        }
        if !self.backoff_mult.is_finite() || self.backoff_mult < 1.0 {
            return Err(ConfigError::InvalidRetryBackoffMult(self.backoff_mult));
        }
        Ok(())
    }
}

/// Fleet-level serving policy: deadlines, load shedding, retries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetPolicy {
    /// Per-request SLO budget, seconds. Used for goodput accounting
    /// (a completion later than this is not "good") and — when
    /// `shed_expired` is set — for shedding requests whose queue wait
    /// exceeds it.
    pub deadline_s: Option<f64>,
    /// If set, a queued request past its deadline is shed from the
    /// queue instead of being served late. Requires `deadline_s`.
    pub shed_expired: bool,
    /// How long an attempt may sit in the queue before `shed_expired`
    /// sheds it; defaults to `deadline_s`. Set it *below* the deadline
    /// to reserve end-to-end budget for service time (a request that
    /// launches right at the wire still has to run).
    pub queue_budget_s: Option<f64>,
    /// Admission control: arrivals beyond this many queued requests
    /// (summed over the fleet) are shed immediately (classic load
    /// shedding). With failover enabled the cap scales down with the
    /// number of believed-up servers — admission control sees the
    /// reduced capacity. `None` = unbounded.
    pub queue_cap: Option<usize>,
    /// What happens to shed requests.
    pub retry: RetryPolicy,
}

impl FleetPolicy {
    /// Checks deadline, cap, and retry parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a non-positive/non-finite deadline, a zero
    /// queue cap, shedding without a deadline, or bad retry backoff.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(ConfigError::InvalidDeadline(d));
            }
        }
        if self.shed_expired && self.deadline_s.is_none() {
            return Err(ConfigError::SheddingWithoutDeadline);
        }
        if let Some(b) = self.queue_budget_s {
            if !b.is_finite() || b <= 0.0 {
                return Err(ConfigError::InvalidQueueBudget(b));
            }
        }
        if self.queue_cap == Some(0) {
            return Err(ConfigError::ZeroQueueCap);
        }
        self.retry.validate()
    }
}

/// The full-featured run description: a pool, failure injection, and a
/// fleet policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The pool of servers and the base serving knobs.
    pub pool: PoolConfig,
    /// Failure injection.
    pub stragglers: Stragglers,
    /// Deadlines, shedding, retries.
    pub policy: FleetPolicy,
}

impl FleetConfig {
    /// A fleet with no stragglers and no overload policy (plain dynamic
    /// batching, like [`simulate_pool`]).
    pub fn new(pool: PoolConfig) -> FleetConfig {
        FleetConfig {
            pool,
            stragglers: Stragglers::default(),
            policy: FleetPolicy::default(),
        }
    }

    /// Replaces the straggler knobs.
    pub fn with_stragglers(mut self, stragglers: Stragglers) -> FleetConfig {
        self.stragglers = stragglers;
        self
    }

    /// Replaces the fleet policy.
    pub fn with_policy(mut self, policy: FleetPolicy) -> FleetConfig {
        self.policy = policy;
        self
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found in pool, stragglers, or policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.pool.validate()?;
        self.stragglers.validate()?;
        self.policy.validate()
    }
}

/// A degenerate serving or fault configuration, caught before
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Arrival rate must be finite and > 0.
    NonPositiveArrivalRate(f64),
    /// `max_batch` must be at least 1 (0 can never form a batch).
    ZeroMaxBatch,
    /// Batch timeout must be finite and >= 0.
    InvalidBatchTimeout(f64),
    /// At least one request must be simulated.
    ZeroRequests,
    /// A pool needs at least one server.
    ZeroServers,
    /// Straggler probability must be a finite value in [0, 1].
    InvalidStragglerProbability(f64),
    /// Straggler factor must be finite and >= 1.
    InvalidStragglerFactor(f64),
    /// A deadline must be finite and > 0.
    InvalidDeadline(f64),
    /// `shed_expired` requires `deadline_s`.
    SheddingWithoutDeadline,
    /// A queue budget must be finite and > 0.
    InvalidQueueBudget(f64),
    /// A queue cap of 0 would shed every request.
    ZeroQueueCap,
    /// Retry backoff must be finite and >= 0.
    InvalidRetryBackoff(f64),
    /// Retry backoff multiplier must be finite and >= 1.
    InvalidRetryBackoffMult(f64),
    /// MTTR must be finite and > 0.
    InvalidMttr(f64),
    /// A hang/degrade duration must be finite and > 0.
    InvalidFaultDuration(f64),
    /// A slow-degrade factor must be finite and >= 1.
    InvalidDegradeFactor(f64),
    /// MTBF must be finite and > 0.
    InvalidMtbf(f64),
    /// The MTBF draw horizon must be finite and > 0.
    InvalidFaultHorizon(f64),
    /// A scheduled fault time must be finite and >= 0.
    InvalidFaultTime(f64),
    /// A scheduled fault targets a server outside the pool.
    FaultServerOutOfRange {
        /// The offending server index.
        server: usize,
        /// The pool size it must be below.
        servers: usize,
    },
    /// Health-probe interval must be finite and > 0.
    InvalidProbeInterval(f64),
    /// Health-probe timeout must be finite and >= 0.
    InvalidProbeTimeout(f64),
    /// Recovery warmup must be finite and >= 0.
    InvalidRecoveryWarmup(f64),
    /// A token-count bound must be at least 1.
    ZeroTokens,
    /// A token range with `min > max` can never draw.
    EmptyTokenRange {
        /// Lower bound of the offending range.
        min: u64,
        /// Upper bound of the offending range.
        max: u64,
    },
    /// A geometric token mean must be finite and >= 1.
    InvalidTokenMean(f64),
    /// KV-cache bytes per token must be at least 1.
    ZeroKvBytesPerToken,
    /// The KV capacity cannot hold even one worst-case request, so the
    /// FIFO head could be deferred forever.
    KvCapacityTooSmall {
        /// Worst-case single-request KV footprint, bytes.
        need: u64,
        /// The configured capacity, bytes.
        capacity: u64,
    },
    /// A TTFT SLO must be finite and > 0.
    InvalidTtftSlo(f64),
    /// A prefill/decode latency curve evaluated non-positive or
    /// non-finite (zero-latency steps make token rates infinite).
    NonPositiveGenLatency(f64),
    /// A global fleet needs at least one cell.
    NoCells,
    /// The geo control epoch must be finite and > 0.
    InvalidEpoch(f64),
    /// The simulated horizon must be finite and > 0.
    InvalidHorizon(f64),
    /// The traffic model's base rate must be finite and > 0.
    InvalidTrafficRate(f64),
    /// The diurnal amplitude must be finite and in [0, 1) (an amplitude
    /// of 1 would drive the instantaneous rate to 0).
    InvalidDiurnalAmplitude(f64),
    /// The diurnal period must be finite and > 0.
    InvalidTrafficPeriod(f64),
    /// A tenant's traffic share must be finite and > 0.
    InvalidTenantShare(f64),
    /// A tenant's diurnal phase offset must be finite.
    InvalidTenantPhase(f64),
    /// A flash crowd's start/duration must be finite, with start >= 0
    /// and duration > 0.
    InvalidFlashWindow(f64),
    /// A flash crowd's rate multiplier must be finite and > 0.
    InvalidFlashMultiplier(f64),
    /// A cell fault targets a cell outside the global config.
    CellFaultOutOfRange {
        /// The offending cell index.
        cell: usize,
        /// The cell count it must be below.
        cells: usize,
    },
    /// A cell fault's start/duration must be finite, with start >= 0
    /// and duration > 0.
    InvalidCellFaultWindow(f64),
    /// A brownout fraction must be finite and in (0, 1].
    InvalidBrownoutFraction(f64),
    /// Cell server bounds must satisfy 1 <= min <= initial <= max.
    InvalidCellServers {
        /// Configured minimum server count.
        min: usize,
        /// Configured maximum server count.
        max: usize,
    },
    /// A cell's per-server capacity must be finite and > 0.
    InvalidCellCapacity(f64),
    /// The autoscaler utilization target must be finite and in (0, 1].
    InvalidUtilizationTarget(f64),
    /// The cross-cell redirect latency penalty must be finite and >= 0.
    InvalidRedirectLatency(f64),
    /// The overload-redirect threshold must be finite and > 0.
    InvalidRedirectThreshold(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveArrivalRate(r) => {
                write!(f, "arrival_rate_rps must be finite and > 0, got {r}")
            }
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            ConfigError::InvalidBatchTimeout(t) => {
                write!(f, "batch_timeout_s must be finite and >= 0, got {t}")
            }
            ConfigError::ZeroRequests => write!(f, "requests must be >= 1"),
            ConfigError::ZeroServers => write!(f, "servers must be >= 1"),
            ConfigError::InvalidStragglerProbability(p) => {
                write!(f, "straggler probability must be in [0, 1], got {p}")
            }
            ConfigError::InvalidStragglerFactor(x) => {
                write!(f, "straggler factor must be finite and >= 1, got {x}")
            }
            ConfigError::InvalidDeadline(d) => {
                write!(f, "deadline_s must be finite and > 0, got {d}")
            }
            ConfigError::SheddingWithoutDeadline => {
                write!(f, "shed_expired requires deadline_s to be set")
            }
            ConfigError::InvalidQueueBudget(b) => {
                write!(f, "queue_budget_s must be finite and > 0, got {b}")
            }
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be >= 1 (or None)"),
            ConfigError::InvalidRetryBackoff(b) => {
                write!(f, "retry backoff_s must be finite and >= 0, got {b}")
            }
            ConfigError::InvalidRetryBackoffMult(m) => {
                write!(f, "retry backoff_mult must be finite and >= 1, got {m}")
            }
            ConfigError::InvalidMttr(t) => {
                write!(f, "mttr_s must be finite and > 0, got {t}")
            }
            ConfigError::InvalidFaultDuration(d) => {
                write!(f, "fault duration_s must be finite and > 0, got {d}")
            }
            ConfigError::InvalidDegradeFactor(x) => {
                write!(f, "degrade factor must be finite and >= 1, got {x}")
            }
            ConfigError::InvalidMtbf(t) => {
                write!(f, "mtbf_s must be finite and > 0, got {t}")
            }
            ConfigError::InvalidFaultHorizon(h) => {
                write!(f, "fault horizon_s must be finite and > 0, got {h}")
            }
            ConfigError::InvalidFaultTime(t) => {
                write!(f, "fault at_s must be finite and >= 0, got {t}")
            }
            ConfigError::FaultServerOutOfRange { server, servers } => {
                write!(f, "fault targets server {server}, pool has {servers}")
            }
            ConfigError::InvalidProbeInterval(p) => {
                write!(f, "probe_interval_s must be finite and > 0, got {p}")
            }
            ConfigError::InvalidProbeTimeout(t) => {
                write!(f, "probe_timeout_s must be finite and >= 0, got {t}")
            }
            ConfigError::InvalidRecoveryWarmup(w) => {
                write!(f, "recovery_warmup_s must be finite and >= 0, got {w}")
            }
            ConfigError::ZeroTokens => write!(f, "token counts must be >= 1"),
            ConfigError::EmptyTokenRange { min, max } => {
                write!(f, "token range [{min}, {max}] is empty")
            }
            ConfigError::InvalidTokenMean(m) => {
                write!(f, "token mean must be finite and >= 1, got {m}")
            }
            ConfigError::ZeroKvBytesPerToken => write!(f, "kv_bytes_per_token must be >= 1"),
            ConfigError::KvCapacityTooSmall { need, capacity } => {
                write!(
                    f,
                    "kv_capacity_bytes {capacity} cannot hold one worst-case request ({need} bytes)"
                )
            }
            ConfigError::InvalidTtftSlo(s) => {
                write!(f, "ttft_slo_s must be finite and > 0, got {s}")
            }
            ConfigError::NonPositiveGenLatency(t) => {
                write!(f, "prefill/decode latency must be finite and > 0, got {t}")
            }
            ConfigError::NoCells => write!(f, "a global fleet needs at least one cell"),
            ConfigError::InvalidEpoch(e) => {
                write!(f, "epoch_s must be finite and > 0, got {e}")
            }
            ConfigError::InvalidHorizon(h) => {
                write!(f, "horizon_s must be finite and > 0, got {h}")
            }
            ConfigError::InvalidTrafficRate(r) => {
                write!(f, "traffic base_rps must be finite and > 0, got {r}")
            }
            ConfigError::InvalidDiurnalAmplitude(a) => {
                write!(f, "diurnal amplitude must be finite and in [0, 1), got {a}")
            }
            ConfigError::InvalidTrafficPeriod(p) => {
                write!(f, "diurnal period_s must be finite and > 0, got {p}")
            }
            ConfigError::InvalidTenantShare(s) => {
                write!(f, "tenant share must be finite and > 0, got {s}")
            }
            ConfigError::InvalidTenantPhase(p) => {
                write!(f, "tenant phase_s must be finite, got {p}")
            }
            ConfigError::InvalidFlashWindow(t) => {
                write!(
                    f,
                    "flash crowd window must be finite (start >= 0, duration > 0), got {t}"
                )
            }
            ConfigError::InvalidFlashMultiplier(m) => {
                write!(f, "flash crowd multiplier must be finite and > 0, got {m}")
            }
            ConfigError::CellFaultOutOfRange { cell, cells } => {
                write!(f, "cell fault targets cell {cell}, config has {cells}")
            }
            ConfigError::InvalidCellFaultWindow(t) => {
                write!(
                    f,
                    "cell fault window must be finite (start >= 0, duration > 0), got {t}"
                )
            }
            ConfigError::InvalidBrownoutFraction(x) => {
                write!(f, "brownout fraction must be finite and in (0, 1], got {x}")
            }
            ConfigError::InvalidCellServers { min, max } => {
                write!(f, "cell server bounds must satisfy 1 <= min <= initial <= max, got min={min} max={max}")
            }
            ConfigError::InvalidCellCapacity(c) => {
                write!(f, "capacity_per_server_rps must be finite and > 0, got {c}")
            }
            ConfigError::InvalidUtilizationTarget(u) => {
                write!(
                    f,
                    "autoscaler target_utilization must be finite and in (0, 1], got {u}"
                )
            }
            ConfigError::InvalidRedirectLatency(l) => {
                write!(f, "redirect_latency_s must be finite and >= 0, got {l}")
            }
            ConfigError::InvalidRedirectThreshold(t) => {
                write!(f, "overload_threshold must be finite and > 0, got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The result of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// End-to-end (queue + service) latency statistics over *completed*
    /// requests, measured from first arrival (retries included).
    pub stats: LatencyStats,
    /// p50 shorthand, seconds.
    pub p50_s: f64,
    /// p99 shorthand, seconds (the SLO metric, Lesson 10).
    pub p99_s: f64,
    /// Achieved throughput (all completions), requests/second.
    pub throughput_rps: f64,
    /// Goodput: completions within the deadline, requests/second.
    /// Equals `throughput_rps` when no deadline is configured.
    pub goodput_rps: f64,
    /// Mean formed batch size.
    pub mean_batch: f64,
    /// Fraction of the run the servers were busy.
    pub server_utilization: f64,
    /// Unique requests offered.
    pub arrivals: usize,
    /// Requests that finished service.
    pub completed: usize,
    /// Requests permanently lost to shedding (after exhausting any
    /// retry budget).
    pub shed: usize,
    /// Requests still queued when the event heap drained.
    pub dropped: usize,
    /// Requests permanently lost because the server running them
    /// crashed (after exhausting any retry budget).
    pub failed: usize,
    /// The RNG seed the run used (recorded for replay: the same config,
    /// fault plan, and seed reproduce a bit-identical report).
    pub seed: u64,
    /// Simulated wall-clock length of the run, seconds (time of the
    /// last material event: arrival, completion, or terminal loss).
    pub duration_s: f64,
    /// Counters and histograms collected during the run.
    pub metrics: ServingMetrics,
}

impl ServingReport {
    /// Request conservation: every offered request is accounted for.
    pub fn conservation_holds(&self) -> bool {
        self.arrivals == self.completed + self.shed + self.dropped + self.failed
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Fresh request `i` arrives.
    Arrival(usize),
    /// A shed or failed request re-enters admission.
    Retry { req: usize },
    /// Re-check batch formation on one server (the batch-timeout timer).
    Timeout { server: usize },
    /// One server's oldest queued request may have exceeded its
    /// deadline: shed the expired prefix, then re-arm for the new front.
    /// One in-flight sweep per server replaces the old per-request
    /// expiry timer (O(launches + sheds) events instead of O(admits)).
    Expire { server: usize },
    /// A batch finished; the payload is the batch's arena handle
    /// (slot index + reuse stamp). A crash frees the slot immediately
    /// and bumps its stamp, so a `Done` whose stamp no longer matches
    /// is recognized as aborted when it pops.
    Done { slot: u32, stamp: u32 },
    /// Inject the materialized fault with this index.
    Fault(usize),
    /// A crashed machine finished repair and starts its warmup.
    CrashOver { server: usize, epoch: u64 },
    /// A hung machine thaws.
    HangOver { server: usize, epoch: u64 },
    /// A slow-degrade window ends.
    DegradeOver { server: usize, epoch: u64 },
    /// Recovery warmup done: the server is Up again.
    RecoveryDone { server: usize, epoch: u64 },
    /// Health-checker sweep over every server.
    Probe,
}

/// Where in its lifecycle a request currently is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Not in the queue: before arrival or awaiting a retry.
    Idle,
    /// In some server's queue.
    Queued,
    /// In a launched batch.
    InService,
    /// Finished service.
    Completed,
    /// Permanently shed.
    Lost,
    /// Permanently lost to a server crash.
    Failed,
}

impl Phase {
    /// 3-bit encoding inside [`ReqTable`]'s packed meta word.
    const fn bits(self) -> u64 {
        match self {
            Phase::Idle => 0,
            Phase::Queued => 1,
            Phase::InService => 2,
            Phase::Completed => 3,
            Phase::Lost => 4,
            Phase::Failed => 5,
        }
    }
}

const PHASE_MASK: u64 = 0b111;
const TRIES_MASK: u64 = !0u64 << 32;

/// Struct-of-arrays request table: the hot per-request fields live in
/// flat arrays indexed by request id. `meta` packs
/// `phase (3 bits) | server << 3 (29 bits) | tries << 32`, so the
/// lazy-deletion liveness test — phase, server, *and* attempt stamp
/// all current — is one 64-bit compare against a precomputed key.
struct ReqTable {
    first_arrival: Vec<f64>,
    meta: Vec<u64>,
}

impl ReqTable {
    fn new(n: usize) -> ReqTable {
        ReqTable {
            first_arrival: vec![0.0; n],
            meta: vec![Phase::Idle.bits(); n],
        }
    }

    /// The meta word of a request queued on `server` at attempt
    /// `tries` — the key a live queue entry's request must match.
    #[inline]
    fn queued_key(server: usize, tries: u32) -> u64 {
        Phase::Queued.bits() | (server as u64) << 3 | (tries as u64) << 32
    }

    /// Times this request has been offered to admission (arrival +
    /// retries + failover redistributions).
    #[inline]
    fn tries(&self, r: usize) -> u32 {
        (self.meta[r] >> 32) as u32
    }

    #[inline]
    fn bump_tries(&mut self, r: usize) {
        self.meta[r] += 1 << 32;
    }

    #[inline]
    fn set_phase(&mut self, r: usize, p: Phase) {
        self.meta[r] = (self.meta[r] & !PHASE_MASK) | p.bits();
    }

    /// Marks `r` queued on `server` (phase and server in one store).
    #[inline]
    fn set_queued_on(&mut self, r: usize, server: usize) {
        self.meta[r] = (self.meta[r] & TRIES_MASK) | Self::queued_key(server, 0);
    }
}

#[derive(Debug, Clone, Copy)]
struct QEntry {
    req: u32,
    /// `tries` at enqueue time. An entry is *live* iff the request
    /// is still `Queued` on this server at this attempt; entries whose
    /// request moved on (expired, launched, redistributed) go stale in
    /// place and are skipped when they reach the front — O(1) lazy
    /// deletion instead of the old O(n) mid-queue scan-and-remove.
    attempt: u32,
    enqueued: f64,
}

#[derive(Debug, Default)]
struct Batch {
    server: u32,
    members: Vec<u32>,
    /// When the batch will complete (including hang delays).
    done_at: f64,
    /// Pending hang delay to apply when the original Done fires.
    extra_delay_s: f64,
    /// Telemetry span pairing id (0 when telemetry is disabled).
    span_id: u64,
}

/// The server lifecycle (see [`crate::faults`] for the state diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    /// Serving, but slowed by `degrade_factor`; probes still pass.
    Degraded,
    /// Fail-stop crash: dead until repair + warmup.
    DownCrash,
    /// Frozen: in-flight work paused, resumes on thaw.
    DownHang,
    /// Repaired but warming up (reloading weights); not serving yet.
    Recovering,
}

#[derive(Debug)]
struct Server {
    health: Health,
    /// What the router believes; only health probes update it.
    believed_up: bool,
    busy: bool,
    /// Arena handle of the in-service batch while busy.
    serving: Option<Handle>,
    queue: VecDeque<QEntry>,
    /// Live entries in `queue` (total length minus stale entries).
    live: usize,
    /// An `Event::Expire` sweep is in flight for this server. While
    /// true, its fire time is ≤ the front live entry's expiry (the
    /// sweep was armed for the front at arming time, and entries behind
    /// it expire later), so no additional timer is ever needed.
    expiry_pending: bool,
    degrade_factor: f64,
    hang_started: f64,
    /// When the current fault began (for detect/recover lags).
    fault_at: f64,
    /// When the server left Up/Degraded (for availability accounting).
    down_since: f64,
    down_total_s: f64,
    /// Bumped per injected fault; stale lifecycle timers are ignored.
    fault_epoch: u64,
}

impl Server {
    fn new() -> Server {
        Server {
            health: Health::Up,
            believed_up: true,
            busy: false,
            serving: None,
            queue: VecDeque::new(),
            live: 0,
            expiry_pending: false,
            degrade_factor: 1.0,
            hang_started: 0.0,
            fault_at: 0.0,
            down_since: 0.0,
            down_total_s: 0.0,
            fault_epoch: 0,
        }
    }

    /// Actually able to run work right now (ignoring `busy`)?
    fn is_available(&self) -> bool {
        matches!(self.health, Health::Up | Health::Degraded)
    }

    fn can_serve(&self) -> bool {
        !self.busy && self.is_available()
    }
}

/// Why a request is being shed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ShedReason {
    QueueFull,
    DeadlineExpired,
    NoHealthyServer,
}

/// Runs the serving simulation.
///
/// Dynamic batching policy: a batch launches when a server is idle and
/// either `max_batch` requests are queued or `batch_timeout_s` has
/// elapsed since the oldest queued request arrived. This is the standard
/// production policy the paper's latency-vs-batch trade-off lives in.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate(latency: &LatencyModel, cfg: &ServingConfig) -> Result<ServingReport, ConfigError> {
    simulate_fleet(latency, &FleetConfig::new(cfg.with_servers(1)))
}

/// Simulates a pool of identical servers (the fleet-level view behind
/// E18): a round-robin router spreads arrivals over per-server queues.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_pool(
    latency: &LatencyModel,
    cfg: &PoolConfig,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(latency, &FleetConfig::new(*cfg))
}

/// Like [`simulate`] with failure injection: some batches run slow.
///
/// Tail latency under stragglers is what production SLOs are actually
/// set against; a policy that looks fine at p99 with uniform service can
/// blow its SLO with 1% of batches running 3x slow.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_with_stragglers(
    latency: &LatencyModel,
    cfg: &ServingConfig,
    stragglers: &Stragglers,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(
        latency,
        &FleetConfig::new(cfg.with_servers(1)).with_stragglers(*stragglers),
    )
}

/// Pool of servers plus stragglers (no overload policy).
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_pool_with_stragglers(
    latency: &LatencyModel,
    pool: &PoolConfig,
    stragglers: &Stragglers,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet(
        latency,
        &FleetConfig::new(*pool).with_stragglers(*stragglers),
    )
}

/// The full-featured fault-free entry point: pool, stragglers,
/// deadlines, load shedding, and retry-with-backoff.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations.
pub fn simulate_fleet(
    latency: &LatencyModel,
    cfg: &FleetConfig,
) -> Result<ServingReport, ConfigError> {
    simulate_fleet_with_faults(latency, cfg, &FaultPlan::none())
}

/// Everything [`simulate_fleet`] does, plus fault injection: server
/// crashes, hangs, and slow-degrades per `plan`, with health checking
/// and failover routing when `plan.failover.enabled`.
///
/// The materialized fault schedule depends only on the plan and the pool
/// size — never on the failover setting — so failover-on and
/// failover-off runs face identical injected faults.
///
/// # Errors
///
/// [`ConfigError`] for degenerate serving configurations or fault plans
/// (NaN/negative times, out-of-range servers, bad MTBF/MTTR or probe
/// knobs).
pub fn simulate_fleet_with_faults(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
) -> Result<ServingReport, ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    Ok(Engine::new(latency, cfg, plan, NullSink, fleet_queue(cfg)).run())
}

/// The fleet engine's calendar queue, with bucket width derived from
/// the validated config's dominant **queued**-event timescale. The
/// arrival stream bypasses the queue entirely (`pending_arrival`), so
/// the events that actually live in buckets are batch timeouts, Done
/// completions, and expiry sweeps — all of order `batch_timeout_s` or
/// slower. Sizing buckets to the mean arrival interval would make the
/// cursor walk dozens of empty buckets per pop at high arrival rates;
/// the timeout floor keeps the walk proportional to real events. The
/// width affects performance only: pop order is `(time, seq)` exact
/// regardless (see the differential suite).
fn fleet_queue(cfg: &FleetConfig) -> CalendarQueue<Event> {
    let arrival = 1.0 / cfg.pool.base.arrival_rate_rps;
    CalendarQueue::for_timescale(arrival.max(cfg.pool.base.batch_timeout_s))
}

/// [`simulate_fleet_with_faults`] run on the reference binary-heap
/// event queue instead of the calendar queue. The two queues pop the
/// same `(time, seq)` total order, so the report is bit-identical by
/// construction — the differential suite
/// (`tests/queue_differential.rs`) holds this entry point against the
/// production one.
///
/// # Errors
///
/// [`ConfigError`] for degenerate serving configurations or fault plans.
pub fn simulate_fleet_with_faults_reference(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
) -> Result<ServingReport, ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    Ok(Engine::new(latency, cfg, plan, NullSink, HeapQueue::new()).run())
}

/// [`simulate_fleet_with_faults`] plus the raw end-to-end latency
/// samples of every completed request (seconds, in completion order;
/// `samples.len() == report.completed`).
///
/// The global fleet layer ([`crate::fleet`]) uses the samples to apply
/// cross-cell redirect latency penalties and to fold exact global
/// percentiles across cells without losing per-request resolution. The
/// report is bit-identical to the sample-less entry point's.
///
/// # Errors
///
/// [`ConfigError`] for degenerate serving configurations or fault plans.
pub fn simulate_fleet_samples(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
) -> Result<(ServingReport, Vec<f64>), ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    Ok(Engine::new(latency, cfg, plan, NullSink, fleet_queue(cfg)).run_with_samples())
}

/// [`simulate_fleet_samples`] on the reference heap queue (see
/// [`simulate_fleet_with_faults_reference`]); backs the global-fleet
/// differential runs.
///
/// # Errors
///
/// [`ConfigError`] for degenerate serving configurations or fault plans.
pub fn simulate_fleet_samples_reference(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
) -> Result<(ServingReport, Vec<f64>), ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    Ok(Engine::new(latency, cfg, plan, NullSink, HeapQueue::new()).run_with_samples())
}

/// Everything [`simulate_fleet_with_faults`] does, with the full request
/// lifecycle recorded into `recorder`: `queued` / `batch` / `down` spans
/// per server, arrival / completion / shed / retry / probe / fault
/// instants on the fleet track, and exact per-event-name counters
/// (including `events_processed`). With
/// [`Recorder::enable_profiling`] on, the engine additionally times its
/// own dispatch and attributes host nanoseconds per DES event type.
///
/// Telemetry is derived from, never an input to, simulation state: the
/// returned report is bit-identical to the [`simulate_fleet_with_faults`]
/// report for the same config and plan, and the recorded event stream is
/// itself a deterministic function of them.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or fault plans.
pub fn simulate_fleet_recorded(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
    recorder: &mut Recorder,
) -> Result<ServingReport, ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    let report = Engine::new(latency, cfg, plan, &mut *recorder, fleet_queue(cfg)).run();
    recorder.add_counter("events_processed", report.metrics.events_processed.get());
    Ok(report)
}

/// [`simulate_fleet_recorded`] on the reference heap queue: the
/// recorded telemetry stream, not just the report, must match the
/// calendar-queue run event for event (the differential suite compares
/// both).
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or fault plans.
pub fn simulate_fleet_recorded_reference(
    latency: &LatencyModel,
    cfg: &FleetConfig,
    plan: &FaultPlan,
    recorder: &mut Recorder,
) -> Result<ServingReport, ConfigError> {
    cfg.validate()?;
    plan.validate(cfg.pool.servers)?;
    let report = Engine::new(latency, cfg, plan, &mut *recorder, HeapQueue::new()).run();
    recorder.add_counter("events_processed", report.metrics.events_processed.get());
    Ok(report)
}

/// The fleet-wide telemetry track (request-lifecycle instants).
const FLEET: Track = Track {
    name: "fleet",
    index: 0,
};

/// The per-replica telemetry track (queued/batch/down spans, faults).
fn server_track(s: usize) -> Track {
    Track {
        name: "server",
        index: s as u32,
    }
}

/// Span id for one queue residency: a request re-enters the queue once
/// per attempt (retries, failover redistributions), so the pair is
/// unique per `(request, attempt)`.
fn queued_span_id(req: usize, attempt: u32) -> u64 {
    (attempt as u64) << 40 | req as u64
}

/// Profiler attribution key per DES event type.
fn event_kind(e: &Event) -> &'static str {
    match e {
        Event::Arrival(_) => "arrival",
        Event::Retry { .. } => "retry",
        Event::Timeout { .. } => "timeout",
        Event::Expire { .. } => "expire",
        Event::Done { .. } => "done",
        Event::Fault(_) => "fault",
        Event::CrashOver { .. } => "crash_over",
        Event::HangOver { .. } => "hang_over",
        Event::DegradeOver { .. } => "degrade_over",
        Event::RecoveryDone { .. } => "recovery_done",
        Event::Probe => "probe",
    }
}

/// The DES state machine. One instance per run.
///
/// Generic over the telemetry sink: every instrumentation site is
/// guarded by `if S::ENABLED`, so the [`NullSink`] instantiation (all
/// untraced entry points) monomorphizes to exactly the uninstrumented
/// engine — zero overhead when disabled.
struct Engine<'a, S: EventSink, Q: EventQueue<Event>> {
    sink: S,
    /// Latest popped event time (telemetry only): end-of-run records
    /// are stamped at `end_time.max(last_now)` so late timer pops keep
    /// the stream monotone.
    last_now: f64,
    /// Allocator for batch/down span pairing ids (telemetry only).
    span_seq: u64,
    /// Open `down` span id per server, 0 = none (telemetry only).
    down_span: Vec<u64>,
    latency: &'a LatencyModel,
    cfg: FleetConfig,
    failover: FailoverConfig,
    /// Materialized fault schedule, sorted by time.
    faults: Vec<ScheduledFault>,
    /// Pre-drawn Poisson arrival times.
    arrivals: Vec<f64>,
    /// Straggler multipliers draw from their own stream so enabling or
    /// disabling other features never perturbs them.
    straggler_rng: StdRng,
    /// Queue for the irregular event streams (Done, Timeout, Retry,
    /// expiry sweeps, faults, probes) — a [`CalendarQueue`] in
    /// production, the reference [`HeapQueue`] in the differential
    /// suite. The highest-volume stream — arrivals — bypasses it: at
    /// most one is outstanding, held in `pending_arrival`. Both sources
    /// share one `seq` counter and are merged by `(TimeKey, seq)`, so
    /// the pop order is exactly what a single queue would produce.
    events: Q,
    /// The one in-flight `Event::Arrival`, keyed like a heap entry.
    pending_arrival: Option<((TimeKey, u64), usize)>,
    /// Interpolated service latency per batch size (index = batch size),
    /// so the launch path does no interpolation.
    latency_cache: Vec<f64>,
    seq: u64,
    servers: Vec<Server>,
    /// Servers currently believed up (mirrors `Server::believed_up`), so
    /// per-admit capacity scaling is O(1) instead of a fleet scan.
    up_count: usize,
    /// Round-robin router position.
    rr_cursor: usize,
    req: ReqTable,
    /// In-flight batches, arena-allocated: the free-list recycles slots
    /// (their `members` capacity included), so steady-state batch
    /// launches allocate nothing, and the reuse stamps void pending
    /// `Done` events of crash-aborted batches.
    in_service: SlotArena<Batch>,
    /// Per-attempt queue-wait budget before `shed_expired` sheds
    /// (precomputed from the validated policy; `None` = no shedding).
    queue_budget: Option<f64>,
    /// Reusable buffer for failover queue drains.
    scratch_entries: Vec<QEntry>,
    /// Live queued entries across the fleet (admission control reads
    /// this instead of summing per-server queues).
    queued_live: usize,
    latencies: Vec<f64>,
    completed: usize,
    good: usize,
    shed: usize,
    failed: usize,
    metrics: ServingMetrics,
    end_time: f64,
}

impl<'a, S: EventSink, Q: EventQueue<Event>> Engine<'a, S, Q> {
    fn new(
        latency: &'a LatencyModel,
        cfg: &FleetConfig,
        plan: &FaultPlan,
        sink: S,
        events: Q,
    ) -> Engine<'a, S, Q> {
        let base = &cfg.pool.base;
        let n = base.requests;
        assert!(n < u32::MAX as usize, "request ids are u32");
        assert!(cfg.pool.servers < 1 << 29, "server ids pack into 29 bits");
        let mut rng = StdRng::seed_from_u64(base.seed);
        // Two passes keep the uniform draws and the `ln` evaluations in
        // separate tight loops; the draw order — and therefore every
        // bit of every arrival time — is unchanged.
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            arrivals.push(rng.gen_range(f64::EPSILON..1.0));
        }
        let mut t = 0.0f64;
        for u in &mut arrivals {
            t += -(*u).ln() / base.arrival_rate_rps;
            *u = t;
        }
        let queue_budget = if cfg.policy.shed_expired {
            cfg.policy.queue_budget_s.or(cfg.policy.deadline_s)
        } else {
            None
        };
        Engine {
            sink,
            last_now: 0.0,
            span_seq: 0,
            down_span: vec![0; cfg.pool.servers],
            latency,
            cfg: *cfg,
            failover: plan.failover,
            faults: plan.materialize(cfg.pool.servers),
            arrivals,
            straggler_rng: StdRng::seed_from_u64(base.seed ^ 0x9E37_79B9_7F4A_7C15),
            events,
            pending_arrival: None,
            latency_cache: (0..=base.max_batch.min(4096))
                .map(|b| latency.latency(b.max(1)))
                .collect(),
            seq: 0,
            servers: (0..cfg.pool.servers).map(|_| Server::new()).collect(),
            up_count: cfg.pool.servers,
            rr_cursor: 0,
            req: ReqTable::new(n),
            in_service: SlotArena::new(),
            queue_budget,
            scratch_entries: Vec::new(),
            queued_live: 0,
            latencies: Vec::with_capacity(n),
            completed: 0,
            good: 0,
            shed: 0,
            failed: 0,
            metrics: ServingMetrics::new(cfg.pool.servers),
            end_time: 0.0,
        }
    }

    /// Record one telemetry event; compiles to nothing when the sink is
    /// disabled. Must never influence simulation state.
    #[inline(always)]
    fn emit(
        &mut self,
        t_s: f64,
        track: Track,
        phase: SpanPhase,
        name: &'static str,
        id: u64,
        arg: i64,
    ) {
        if S::ENABLED {
            self.sink.record(TelemetryEvent {
                t_s,
                track,
                phase,
                name: Cow::Borrowed(name),
                id,
                arg,
            });
        }
    }

    fn push_event(&mut self, t: f64, e: Event) {
        let key = (TimeKey(t), self.seq);
        self.seq += 1;
        match e {
            Event::Arrival(i) => {
                debug_assert!(self.pending_arrival.is_none(), "one arrival at a time");
                self.pending_arrival = Some((key, i));
            }
            _ => self.events.push(key, e),
        }
    }

    /// Pops the globally next event across the two sources (queue,
    /// pending arrival) by `(time, seq)` — exactly the order a single
    /// queue would yield, at O(1) for the arrival stream.
    fn next_event(&mut self) -> Option<(f64, Event)> {
        let hk = self.events.peek_key();
        let ak = self.pending_arrival.map(|(k, _)| k);
        if let Some(a) = ak {
            if hk.is_none_or(|h| a < h) {
                let (k, i) = self.pending_arrival.take().expect("checked");
                return Some((k.0 .0, Event::Arrival(i)));
            }
        }
        let (k, e) = self.events.pop()?;
        Some((k.0 .0, e))
    }

    /// Pops the next event only if it fires at exactly (bit-equal) `t`
    /// — the same-timestamp batch-dispatch fast path. The merged order
    /// is identical to repeated [`Self::next_event`] calls; events
    /// pushed mid-run carry higher sequence numbers and sort after the
    /// run, so draining a run in place changes nothing observable.
    fn next_event_at(&mut self, t: f64) -> Option<Event> {
        let hk = self.events.peek_key();
        if let Some(a) = self.pending_arrival.map(|(k, _)| k) {
            if hk.is_none_or(|h| a < h) {
                if a.0 .0.to_bits() != t.to_bits() {
                    return None;
                }
                let (_, i) = self.pending_arrival.take().expect("checked");
                return Some(Event::Arrival(i));
            }
        }
        let h = hk?;
        if h.0 .0.to_bits() != t.to_bits() {
            return None;
        }
        let (_, e) = self.events.pop().expect("peeked");
        Some(e)
    }

    /// Arms the expiry sweep for server `s` if shedding is on, work is
    /// queued, and no sweep is already in flight. The timer targets the
    /// current front's exact expiry time.
    fn arm_expiry(&mut self, s: usize) {
        if self.servers[s].expiry_pending || self.servers[s].live == 0 {
            return;
        }
        let Some(b) = self.expiry_budget() else {
            return;
        };
        self.compact_front(s);
        let enqueued = self.servers[s].queue.front().expect("live > 0").enqueued;
        self.servers[s].expiry_pending = true;
        self.push_event(enqueued + b, Event::Expire { server: s });
    }

    /// Service latency for a batch of `take`, from the precomputed
    /// per-size cache (falls back to interpolation past the cache).
    fn batch_latency(&self, take: u64) -> f64 {
        match self.latency_cache.get(take as usize) {
            Some(&l) => l,
            None => self.latency.latency(take),
        }
    }

    /// Extends the run length. Only *material* events (arrivals,
    /// completions, terminal losses) call this, so a repair timer firing
    /// long after the last request cannot inflate the duration and
    /// deflate throughput.
    fn touch(&mut self, now: f64) {
        if now > self.end_time {
            self.end_time = now;
        }
    }

    /// Next believed-up server in round-robin order, if any.
    fn route(&mut self) -> Option<usize> {
        let count = self.servers.len();
        for k in 0..count {
            let i = (self.rr_cursor + k) % count;
            if self.servers[i].believed_up {
                self.rr_cursor = (i + 1) % count;
                return Some(i);
            }
        }
        None
    }

    /// Is this queue entry still current? Stale entries (their request
    /// expired, launched, retried, or was redistributed since enqueue)
    /// are skipped lazily when they reach the front.
    fn entry_live(&self, server: usize, e: &QEntry) -> bool {
        self.req.meta[e.req as usize] == ReqTable::queued_key(server, e.attempt)
    }

    /// Pops stale entries off the front of one server's queue.
    fn compact_front(&mut self, s: usize) {
        while let Some(front) = self.servers[s].queue.front() {
            if self.entry_live(s, front) {
                break;
            }
            self.servers[s].queue.pop_front();
        }
    }

    fn total_queued(&self) -> usize {
        self.queued_live
    }

    /// The admission-control cap, scaled down by lost capacity when the
    /// health checker has pulled servers from rotation.
    fn effective_queue_cap(&self) -> Option<usize> {
        let cap = self.cfg.policy.queue_cap?;
        if !self.failover.enabled || self.faults.is_empty() {
            return Some(cap);
        }
        Some(((cap * self.up_count).div_ceil(self.servers.len())).max(1))
    }

    /// Offers a request to admission control; routes and enqueues it, or
    /// sheds it.
    fn admit(&mut self, req: usize, now: f64) {
        self.req.bump_tries(req);
        let Some(target) = self.route() else {
            self.shed_request(req, now, ShedReason::NoHealthyServer);
            return;
        };
        if let Some(cap) = self.effective_queue_cap() {
            if self.total_queued() >= cap {
                self.shed_request(req, now, ShedReason::QueueFull);
                return;
            }
        }
        self.metrics.admitted.inc();
        self.req.set_queued_on(req, target);
        let attempt = self.req.tries(req);
        self.servers[target].queue.push_back(QEntry {
            req: req as u32,
            attempt,
            enqueued: now,
        });
        self.servers[target].live += 1;
        self.queued_live += 1;
        self.emit(
            now,
            server_track(target),
            SpanPhase::Begin,
            "queued",
            queued_span_id(req, attempt),
            req as i64,
        );
        self.arm_expiry(target);
        if !self.try_launch_on(target, now) && self.servers[target].live == 1 {
            self.push_event(
                now + self.cfg.pool.base.batch_timeout_s,
                Event::Timeout { server: target },
            );
        }
    }

    /// In-queue wait allowed per attempt before shedding, if shedding
    /// is on (precomputed at construction).
    #[inline]
    fn expiry_budget(&self) -> Option<f64> {
        self.queue_budget
    }

    /// Sheds a request, scheduling a retry if the reason is retryable
    /// and the budget allows.
    ///
    /// Deadline expiries never retry: the SLO has already passed, so
    /// re-serving cannot produce good work. Admission rejections and
    /// no-capacity sheds do retry.
    fn shed_request(&mut self, req: usize, now: f64, reason: ShedReason) {
        let reason_name = match reason {
            ShedReason::QueueFull => {
                self.metrics.shed_queue_full.inc();
                "shed_queue_full"
            }
            ShedReason::DeadlineExpired => {
                self.metrics.shed_deadline.inc();
                "shed_deadline"
            }
            ShedReason::NoHealthyServer => {
                self.metrics.shed_no_capacity.inc();
                "shed_no_capacity"
            }
        };
        let tries = self.req.tries(req);
        self.emit(
            now,
            FLEET,
            SpanPhase::Instant,
            reason_name,
            req as u64,
            tries as i64,
        );
        let retry = self.cfg.policy.retry;
        let retryable = reason != ShedReason::DeadlineExpired;
        if retryable && tries <= retry.max_retries {
            let delay = retry.backoff_s * retry.backoff_mult.powi(tries as i32 - 1);
            self.req.set_phase(req, Phase::Idle);
            self.metrics.retries.inc();
            self.emit(
                now,
                FLEET,
                SpanPhase::Instant,
                "retry",
                req as u64,
                tries as i64,
            );
            self.push_event(now + delay, Event::Retry { req });
        } else {
            self.req.set_phase(req, Phase::Lost);
            self.shed += 1;
            self.metrics.shed_permanent.inc();
            self.emit(
                now,
                FLEET,
                SpanPhase::Instant,
                "shed_permanent",
                req as u64,
                0,
            );
            if retryable && retry.max_retries > 0 {
                self.metrics.retries_exhausted.inc();
            }
            self.touch(now);
        }
    }

    /// A request whose in-flight batch died with its server: retry per
    /// policy, else the `failed` terminal state.
    fn fail_request(&mut self, req: usize, now: f64) {
        let retry = self.cfg.policy.retry;
        let tries = self.req.tries(req);
        if tries <= retry.max_retries {
            let delay = retry.backoff_s * retry.backoff_mult.powi(tries as i32 - 1);
            self.req.set_phase(req, Phase::Idle);
            self.metrics.retries.inc();
            self.emit(
                now,
                FLEET,
                SpanPhase::Instant,
                "retry",
                req as u64,
                tries as i64,
            );
            self.push_event(now + delay, Event::Retry { req });
        } else {
            self.req.set_phase(req, Phase::Failed);
            self.failed += 1;
            self.metrics.failed_permanent.inc();
            self.emit(
                now,
                FLEET,
                SpanPhase::Instant,
                "failed_permanent",
                req as u64,
                0,
            );
            if retry.max_retries > 0 {
                self.metrics.retries_exhausted.inc();
            }
            self.touch(now);
        }
    }

    /// Sheds the expired prefix of one server's queue (live entries are
    /// enqueued in time order, so expiries are a prefix; stale entries
    /// encountered on the way are discarded).
    fn shed_expired_prefix_on(&mut self, s: usize, now: f64) {
        let Some(b) = self.expiry_budget() else {
            return;
        };
        while let Some(front) = self.servers[s].queue.front().copied() {
            if !self.entry_live(s, &front) {
                self.servers[s].queue.pop_front();
                continue;
            }
            if front.enqueued + b <= now + 1e-12 {
                self.servers[s].queue.pop_front();
                self.servers[s].live -= 1;
                self.queued_live -= 1;
                self.emit(
                    now,
                    server_track(s),
                    SpanPhase::End,
                    "queued",
                    queued_span_id(front.req as usize, front.attempt),
                    front.req as i64,
                );
                self.shed_request(front.req as usize, now, ShedReason::DeadlineExpired);
            } else {
                break;
            }
        }
    }

    /// Launches a batch on server `s` if it is idle, healthy, and the
    /// batching policy allows; returns whether one launched.
    fn try_launch_on(&mut self, s: usize, now: f64) -> bool {
        self.shed_expired_prefix_on(s, now);
        if !self.servers[s].can_serve() || self.servers[s].live == 0 {
            return false;
        }
        self.compact_front(s);
        let cfg = self.cfg.pool.base;
        let oldest = self.servers[s].queue.front().expect("live > 0").enqueued;
        let full = self.servers[s].live as u64 >= cfg.max_batch;
        let timed_out = now + 1e-12 >= oldest + cfg.batch_timeout_s;
        if !full && !timed_out {
            return false;
        }
        let take = (self.servers[s].live as u64).min(cfg.max_batch) as usize;
        // Allocate the batch slot from the arena: a recycled slot hands
        // back its `members` capacity, so steady state allocates
        // nothing per launch.
        let h = self.in_service.alloc();
        let mut members = std::mem::take(&mut self.in_service.slot_mut(h).members);
        debug_assert!(members.is_empty(), "recycled slot not drained");
        let mut taken = 0usize;
        while taken < take {
            let entry = self.servers[s]
                .queue
                .pop_front()
                .expect("live entries remain");
            if !self.entry_live(s, &entry) {
                continue;
            }
            self.req.set_phase(entry.req as usize, Phase::InService);
            self.metrics.queue_wait_s.observe(now - entry.enqueued);
            self.emit(
                now,
                server_track(s),
                SpanPhase::End,
                "queued",
                queued_span_id(entry.req as usize, entry.attempt),
                entry.req as i64,
            );
            members.push(entry.req);
            taken += 1;
        }
        self.servers[s].live -= take;
        self.queued_live -= take;
        let mult = if self.cfg.stragglers.probability > 0.0
            && self.straggler_rng.gen_bool(self.cfg.stragglers.probability)
        {
            self.cfg.stragglers.factor
        } else {
            1.0
        };
        let service = self.batch_latency(take as u64) * mult * self.servers[s].degrade_factor;
        self.metrics.per_server_busy_s[s] += service;
        self.metrics.batch_sizes.observe(take as f64);
        let span_id = if S::ENABLED {
            self.span_seq += 1;
            self.span_seq
        } else {
            0
        };
        *self.in_service.slot_mut(h) = Batch {
            server: s as u32,
            members,
            done_at: now + service,
            extra_delay_s: 0.0,
            span_id,
        };
        self.servers[s].busy = true;
        self.servers[s].serving = Some(h);
        self.emit(
            now,
            server_track(s),
            SpanPhase::Begin,
            "batch",
            span_id,
            take as i64,
        );
        self.push_event(
            now + service,
            Event::Done {
                slot: h.index,
                stamp: h.stamp,
            },
        );
        true
    }

    /// After a server frees up (or comes back): launch, or re-arm its
    /// batch timer if work is waiting.
    fn relaunch_or_arm(&mut self, s: usize, now: f64) {
        if self.try_launch_on(s, now) || !self.servers[s].can_serve() {
            return;
        }
        self.compact_front(s);
        let Some(front) = self.servers[s].queue.front() else {
            return;
        };
        let fire = (front.enqueued + self.cfg.pool.base.batch_timeout_s).max(now);
        self.push_event(fire, Event::Timeout { server: s });
    }

    /// Applies one materialized fault to its server.
    fn inject_fault(&mut self, f: ScheduledFault, now: f64) {
        let s = f.server;
        self.servers[s].fault_epoch += 1;
        let epoch = self.servers[s].fault_epoch;
        self.emit(
            now,
            server_track(s),
            SpanPhase::Instant,
            f.kind.name(),
            0,
            epoch as i64,
        );
        match f.kind {
            FaultKind::Crash { mttr_s } => {
                self.metrics.failures_injected.inc();
                if self.servers[s].is_available() {
                    self.servers[s].fault_at = now;
                    self.servers[s].down_since = now;
                    self.begin_down_span(s, now);
                }
                self.servers[s].health = Health::DownCrash;
                self.servers[s].degrade_factor = 1.0;
                // Fail-stop: in-flight work dies with the machine.
                if let Some(h) = self.servers[s].serving.take() {
                    self.servers[s].busy = false;
                    let batch = self.in_service.slot_mut(h);
                    let refund = (batch.done_at - now).max(0.0);
                    let span_id = batch.span_id;
                    let mut members = std::mem::take(&mut batch.members);
                    self.metrics.per_server_busy_s[s] -= refund;
                    // Aborted batch: close its span with arg -1.
                    self.emit(now, server_track(s), SpanPhase::End, "batch", span_id, -1);
                    for req in members.drain(..) {
                        self.metrics.in_flight_failures.inc();
                        self.fail_request(req as usize, now);
                    }
                    // Park the emptied Vec back in the slot and free it:
                    // the stamp bump voids the pending Done, and the
                    // slot (capacity included) is immediately reusable.
                    self.in_service.slot_mut(h).members = members;
                    self.in_service.free(h);
                }
                self.push_event(now + mttr_s, Event::CrashOver { server: s, epoch });
            }
            FaultKind::Hang { duration_s } => {
                self.metrics.failures_injected.inc();
                if self.servers[s].is_available() {
                    self.servers[s].fault_at = now;
                    self.servers[s].down_since = now;
                    self.begin_down_span(s, now);
                }
                self.servers[s].health = Health::DownHang;
                self.servers[s].hang_started = now;
                // Pause, don't lose: the batch finishes late by the
                // frozen overlap.
                if let Some(h) = self.servers[s].serving {
                    let batch = self.in_service.slot_mut(h);
                    batch.extra_delay_s += duration_s;
                    batch.done_at += duration_s;
                }
                self.push_event(now + duration_s, Event::HangOver { server: s, epoch });
            }
            FaultKind::SlowDegrade { factor, duration_s } => {
                self.metrics.degrades_injected.inc();
                if self.servers[s].health == Health::Up {
                    self.servers[s].health = Health::Degraded;
                }
                self.servers[s].degrade_factor = factor;
                self.push_event(now + duration_s, Event::DegradeOver { server: s, epoch });
            }
        }
    }

    /// Opens the availability (`down`) span for server `s`. Called
    /// exactly where `down_since` is stamped — the available → down
    /// transition — so spans mirror the downtime accounting.
    fn begin_down_span(&mut self, s: usize, now: f64) {
        if S::ENABLED {
            self.span_seq += 1;
            self.down_span[s] = self.span_seq;
            self.emit(
                now,
                server_track(s),
                SpanPhase::Begin,
                "down",
                self.down_span[s],
                0,
            );
        }
    }

    /// Closes the open `down` span for server `s`, if any.
    fn end_down_span(&mut self, s: usize, at: f64) {
        if S::ENABLED && self.down_span[s] != 0 {
            let id = self.down_span[s];
            self.down_span[s] = 0;
            self.emit(at, server_track(s), SpanPhase::End, "down", id, 0);
        }
    }

    /// A server transitions back to Up: account downtime, then serve
    /// whatever waited out the outage.
    fn server_up(&mut self, s: usize, now: f64) {
        self.servers[s].health = Health::Up;
        let down = (now - self.servers[s].down_since).max(0.0);
        self.servers[s].down_total_s += down;
        self.metrics.failures_recovered.inc();
        self.metrics
            .time_to_recover_s
            .observe(now - self.servers[s].fault_at);
        self.end_down_span(s, now);
        self.emit(now, server_track(s), SpanPhase::Instant, "recovered", 0, 0);
        self.relaunch_or_arm(s, now);
    }

    /// One health-checker sweep: pull dead servers from rotation (and
    /// drain their queues onto the survivors), re-admit recovered ones.
    fn probe_all(&mut self, now: f64) {
        for s in 0..self.cfg.pool.servers {
            let down_to_prober = match self.servers[s].health {
                Health::DownCrash | Health::Recovering => true,
                Health::DownHang => {
                    now - self.servers[s].hang_started + 1e-12 >= self.failover.probe_timeout_s
                }
                Health::Up | Health::Degraded => false,
            };
            if self.servers[s].believed_up && down_to_prober {
                self.servers[s].believed_up = false;
                self.up_count -= 1;
                self.metrics.failures_detected.inc();
                self.metrics
                    .time_to_detect_s
                    .observe(now - self.servers[s].fault_at);
                self.emit(now, server_track(s), SpanPhase::Instant, "detected", 0, 0);
                // Failover: the dead server's queue is redistributed to
                // surviving replicas (or shed, via normal admission).
                // Stale entries are discarded here; only live ones count
                // as redistributed. The drain buffer is reused across
                // probes so failover allocates nothing in steady state.
                let mut stranded = std::mem::take(&mut self.scratch_entries);
                stranded.clear();
                stranded.extend(self.servers[s].queue.drain(..));
                self.queued_live -= self.servers[s].live;
                self.servers[s].live = 0;
                for e in stranded.drain(..) {
                    if self.req.meta[e.req as usize] == ReqTable::queued_key(s, e.attempt) {
                        self.metrics.failover_redistributed.inc();
                        // The old residency ends here; `admit` opens a
                        // fresh `queued` span at the next attempt.
                        self.emit(
                            now,
                            server_track(s),
                            SpanPhase::End,
                            "queued",
                            queued_span_id(e.req as usize, e.attempt),
                            e.req as i64,
                        );
                        self.admit(e.req as usize, now);
                    }
                }
                self.scratch_entries = stranded;
            } else if !self.servers[s].believed_up && self.servers[s].is_available() {
                // The machine answers probes again: back into rotation.
                self.servers[s].believed_up = true;
                self.up_count += 1;
                self.emit(now, server_track(s), SpanPhase::Instant, "readmit", 0, 0);
                self.relaunch_or_arm(s, now);
            }
        }
    }

    fn run(self) -> ServingReport {
        self.run_with_samples().0
    }

    /// [`Self::run`] plus the raw completion-latency samples (seconds,
    /// in completion order, one per completed request) — the global
    /// fleet layer needs per-request samples to apply cross-cell
    /// redirect penalties and fold exact global percentiles.
    fn run_with_samples(mut self) -> (ServingReport, Vec<f64>) {
        let first = self.arrivals[0];
        self.push_event(first, Event::Arrival(0));
        for fi in 0..self.faults.len() {
            let at = self.faults[fi].at_s;
            self.push_event(at, Event::Fault(fi));
        }
        if self.failover.enabled && !self.faults.is_empty() {
            self.push_event(self.failover.probe_interval_s, Event::Probe);
        }

        while let Some((now, event)) = self.next_event() {
            self.process_one(now, event);
            // Same-timestamp batch dispatch: drain the whole run of
            // events at this exact timestamp before re-entering the
            // general pop path. The order is what per-event pops would
            // produce — see `next_event_at`.
            while let Some(e) = self.next_event_at(now) {
                self.process_one(now, e);
            }
        }
        self.finish()
    }

    /// Accounts and dispatches one popped event (the hot-loop body).
    #[inline(always)]
    fn process_one(&mut self, now: f64, event: Event) {
        self.metrics.events_processed.inc();
        if S::ENABLED {
            // Track the latest popped time so end-of-run telemetry
            // can be stamped after any late timer pops.
            self.last_now = self.last_now.max(now);
            if self.sink.profiling() {
                // Self-instrumenting profiler: time our own dispatch
                // and attribute host-nanoseconds per event type.
                let kind = event_kind(&event);
                // Host wall-clock, not sim time: the profiler
                // measures our own dispatch cost and never feeds
                // back into simulated state.
                let t0 = Instant::now(); // repolint:allow host profiler
                self.dispatch(now, event);
                let ns = t0.elapsed().as_nanos() as u64;
                self.sink.profile(kind, ns);
                return;
            }
        }
        self.dispatch(now, event);
    }

    /// Applies one event to the state machine — the hot-loop body,
    /// extracted so the traced run loop can time it per event type when
    /// profiling is on.
    #[inline(always)]
    fn dispatch(&mut self, now: f64, event: Event) {
        let n = self.cfg.pool.base.requests;
        match event {
            Event::Arrival(i) => {
                self.touch(now);
                self.metrics.arrivals.inc();
                self.req.first_arrival[i] = now;
                self.emit(now, FLEET, SpanPhase::Instant, "arrive", i as u64, 0);
                if i + 1 < n {
                    let t = self.arrivals[i + 1];
                    self.push_event(t, Event::Arrival(i + 1));
                }
                self.admit(i, now);
            }
            Event::Retry { req } => {
                self.touch(now);
                self.admit(req, now);
            }
            Event::Timeout { server } => {
                self.touch(now);
                if !self.try_launch_on(server, now) && self.servers[server].can_serve() {
                    self.compact_front(server);
                    if let Some(front) = self.servers[server].queue.front() {
                        // A server is free but the (new) oldest
                        // request has not waited out the timeout yet;
                        // this fire time is strictly in the future,
                        // else the launch would have happened.
                        let t = front.enqueued + self.cfg.pool.base.batch_timeout_s;
                        self.push_event(t, Event::Timeout { server });
                    }
                }
            }
            Event::Expire { server } => {
                // No touch here: a sweep is only material if it
                // sheds, and terminal sheds touch inside
                // `shed_request`. Shed whatever has expired by now
                // (entries behind
                // the armed-for front can only expire later, so the
                // prefix scan sheds at exact expiry times), then
                // re-arm for the new front if work remains.
                self.servers[server].expiry_pending = false;
                self.shed_expired_prefix_on(server, now);
                self.arm_expiry(server);
            }
            Event::Done { slot, stamp } => {
                let h = Handle { index: slot, stamp };
                if !self.in_service.is_live(h) {
                    // The server crashed mid-service and freed the slot
                    // (bumping its stamp); the members were already
                    // failed/retried. Nothing to do.
                    return;
                }
                let delay = self.in_service.slot_mut(h).extra_delay_s;
                if delay > 0.0 {
                    // The server hung during service: the batch
                    // resumes after the thaw and finishes late (the
                    // slot stays allocated until that Done fires).
                    self.in_service.slot_mut(h).extra_delay_s = 0.0;
                    self.push_event(now + delay, Event::Done { slot, stamp });
                    return;
                }
                self.touch(now);
                let server = self.in_service.slot_mut(h).server as usize;
                if S::ENABLED {
                    let span_id = self.in_service.slot_mut(h).span_id;
                    let size = self.in_service.slot_mut(h).members.len() as i64;
                    self.emit(
                        now,
                        server_track(server),
                        SpanPhase::End,
                        "batch",
                        span_id,
                        size,
                    );
                }
                let mut members = std::mem::take(&mut self.in_service.slot_mut(h).members);
                self.servers[server].busy = false;
                self.servers[server].serving = None;
                for req in members.drain(..) {
                    let req = req as usize;
                    let lat = now - self.req.first_arrival[req];
                    self.req.set_phase(req, Phase::Completed);
                    self.latencies.push(lat);
                    self.completed += 1;
                    self.metrics.completed.inc();
                    self.metrics.per_server_completed[server] += 1;
                    self.emit(
                        now,
                        FLEET,
                        SpanPhase::Instant,
                        "complete",
                        req as u64,
                        server as i64,
                    );
                    match self.cfg.policy.deadline_s {
                        Some(d) if lat > d => self.metrics.completed_late.inc(),
                        _ => self.good += 1,
                    }
                }
                // Park the members capacity and free the slot for the
                // relaunch below to recycle.
                self.in_service.slot_mut(h).members = members;
                self.in_service.free(h);
                // The freed server may immediately take another batch.
                self.relaunch_or_arm(server, now);
            }
            Event::Fault(fi) => {
                let f = self.faults[fi];
                self.inject_fault(f, now);
            }
            Event::CrashOver { server, epoch } => {
                if self.servers[server].fault_epoch == epoch
                    && self.servers[server].health == Health::DownCrash
                {
                    self.servers[server].health = Health::Recovering;
                    self.push_event(
                        now + self.failover.recovery_warmup_s,
                        Event::RecoveryDone { server, epoch },
                    );
                }
            }
            Event::HangOver { server, epoch } => {
                if self.servers[server].fault_epoch == epoch
                    && self.servers[server].health == Health::DownHang
                {
                    self.server_up(server, now);
                }
            }
            Event::DegradeOver { server, epoch } => {
                if self.servers[server].fault_epoch == epoch
                    && self.servers[server].health == Health::Degraded
                {
                    self.servers[server].health = Health::Up;
                    self.servers[server].degrade_factor = 1.0;
                }
            }
            Event::RecoveryDone { server, epoch } => {
                if self.servers[server].fault_epoch == epoch
                    && self.servers[server].health == Health::Recovering
                {
                    self.server_up(server, now);
                }
            }
            Event::Probe => {
                self.emit(now, FLEET, SpanPhase::Instant, "probe", 0, 0);
                self.probe_all(now);
                // Re-arm only while requests are unresolved, so the
                // event heap can drain.
                if self.completed + self.shed + self.failed < n {
                    self.push_event(now + self.failover.probe_interval_s, Event::Probe);
                }
            }
        }
    }

    /// Post-loop accounting: drain leftovers as dropped, close any
    /// still-open telemetry spans, and assemble the report (plus the
    /// raw completion-latency samples, in completion order).
    fn finish(mut self) -> (ServingReport, Vec<f64>) {
        let n = self.cfg.pool.base.requests;
        // End-of-run telemetry is stamped at or after every event the
        // stream already holds (late timers can pop past `end_time`).
        let stamp = self.end_time.max(self.last_now);
        // Anything still queued when the heap drained is accounted as
        // dropped — conservation over silent loss.
        let mut dropped = 0usize;
        for s in 0..self.cfg.pool.servers {
            while let Some(entry) = self.servers[s].queue.pop_front() {
                if !self.entry_live(s, &entry) {
                    continue;
                }
                self.servers[s].live -= 1;
                self.queued_live -= 1;
                self.req.set_phase(entry.req as usize, Phase::Lost);
                self.metrics.dropped_at_drain.inc();
                dropped += 1;
                self.emit(
                    stamp,
                    server_track(s),
                    SpanPhase::End,
                    "queued",
                    queued_span_id(entry.req as usize, entry.attempt),
                    entry.req as i64,
                );
                self.emit(
                    stamp,
                    FLEET,
                    SpanPhase::Instant,
                    "dropped",
                    entry.req as u64,
                    0,
                );
            }
        }
        debug_assert_eq!(self.queued_live, 0, "live-queued accounting drift");
        debug_assert_eq!(
            self.completed + self.shed + self.failed + dropped,
            n,
            "request conservation violated"
        );

        let end = self.end_time;
        for s in 0..self.cfg.pool.servers {
            if !self.servers[s].is_available() {
                let extra = (end - self.servers[s].down_since).max(0.0);
                self.servers[s].down_total_s += extra;
            }
            // Close the availability span of servers that never came
            // back; span balance must hold on every recorded run.
            self.end_down_span(s, stamp);
            self.metrics.per_server_down_s[s] = self.servers[s].down_total_s.min(end.max(0.0));
        }

        let stats = LatencyStats::from_samples(&self.latencies);
        let total_time = self.end_time.max(1e-12);
        let servers = self.cfg.pool.servers;
        let busy_total: f64 = self.metrics.per_server_busy_s.iter().sum();
        let report = ServingReport {
            p50_s: stats.p50_s,
            p99_s: stats.p99_s,
            throughput_rps: self.completed as f64 / total_time,
            goodput_rps: self.good as f64 / total_time,
            mean_batch: self.metrics.batch_sizes.mean(),
            server_utilization: (busy_total / (total_time * servers as f64)).clamp(0.0, 1.0),
            arrivals: n,
            completed: self.completed,
            shed: self.shed,
            dropped,
            failed: self.failed,
            seed: self.cfg.pool.base.seed,
            duration_s: self.end_time,
            stats,
            metrics: self.metrics,
        };
        (report, self.latencies)
    }
}

// ---------------------------------------------------------------------------
// Autoregressive generation: the decode-loop scheduler.
// ---------------------------------------------------------------------------

/// How the decode loop packs requests into the in-flight batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchingMode {
    /// A batch forms only when the engine is idle and then decodes until
    /// **every** member finishes: requests that finish early keep their
    /// slot and KV reservation until the whole batch retires. This is
    /// the padding waste continuous batching exists to eliminate.
    Static,
    /// Requests join and leave the in-flight batch at decode-step
    /// boundaries: a finished request frees its slot and KV immediately
    /// and a waiting request is admitted at the very next boundary.
    Continuous,
}

/// Configuration of one autoregressive serving run
/// (see [`simulate_generation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Mean request arrival rate (Poisson), requests/second.
    pub arrival_rate_rps: f64,
    /// Number of requests to simulate.
    pub requests: usize,
    /// RNG seed. Arrival times and token draws are pure functions of it
    /// (separate streams, so the request count never perturbs tokens).
    pub seed: u64,
    /// Static or continuous batching.
    pub mode: BatchingMode,
    /// Cap on the number of requests decoding concurrently.
    pub max_batch: u64,
    /// HBM bytes available for KV-cache on this replica — chip HBM
    /// minus the resident weights. Admission reserves a request's full
    /// worst-case footprint here; on overflow the request is
    /// **deferred**, never shed.
    pub kv_capacity_bytes: u64,
    /// TTFT SLO for goodput accounting, seconds. `None`: every
    /// completion counts as good.
    pub ttft_slo_s: Option<f64>,
    /// Request shape: token distributions and per-token KV bytes.
    pub model: GenerationModel,
}

impl GenConfig {
    /// Checks every knob.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for degenerate rates, counts, SLOs, or token
    /// distributions, and [`ConfigError::KvCapacityTooSmall`] when the
    /// capacity cannot hold even one worst-case request (the FIFO head
    /// could then be deferred forever).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.arrival_rate_rps.is_finite() || self.arrival_rate_rps <= 0.0 {
            return Err(ConfigError::NonPositiveArrivalRate(self.arrival_rate_rps));
        }
        if self.requests == 0 {
            return Err(ConfigError::ZeroRequests);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if let Some(s) = self.ttft_slo_s {
            if !s.is_finite() || s <= 0.0 {
                return Err(ConfigError::InvalidTtftSlo(s));
            }
        }
        self.model.validate()?;
        let need = self.model.peak_request_kv_bytes();
        if self.kv_capacity_bytes < need {
            return Err(ConfigError::KvCapacityTooSmall {
                need,
                capacity: self.kv_capacity_bytes,
            });
        }
        Ok(())
    }
}

/// The result of one generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenReport {
    /// Time-to-first-token over completed requests, seconds.
    pub ttft_stats: LatencyStats,
    /// p50 TTFT shorthand, seconds.
    pub p50_ttft_s: f64,
    /// p99 TTFT shorthand, seconds (the interactive SLO metric).
    pub p99_ttft_s: f64,
    /// Time-per-output-token, seconds: each completed request with at
    /// least two output tokens contributes its mean decode interval
    /// `(finish - first_token) / (output - 1)`.
    pub tpot_stats: LatencyStats,
    /// p99 TPOT shorthand, seconds.
    pub p99_tpot_s: f64,
    /// End-to-end (arrival to last token) latency, seconds.
    pub e2e_stats: LatencyStats,
    /// Completions per second of simulated time.
    pub throughput_rps: f64,
    /// Completions whose TTFT met the SLO, per second (equals
    /// `throughput_rps` when no SLO is set).
    pub goodput_rps: f64,
    /// Generated (decode) tokens per second.
    pub tokens_per_s: f64,
    /// Requests offered.
    pub arrivals: usize,
    /// Requests that finished their full decode. The decode loop defers
    /// admission under KV pressure instead of shedding, so this always
    /// equals `arrivals`.
    pub completed: usize,
    /// Σ sampled output tokens over completed requests.
    pub output_tokens: u64,
    /// Σ sampled prompt tokens over completed requests.
    pub prompt_tokens: u64,
    /// Peak KV-cache reservation over the run, bytes.
    pub kv_peak_bytes: u64,
    /// The RNG seed the run used.
    pub seed: u64,
    /// Simulated length of the run, seconds.
    pub duration_s: f64,
    /// Counters and histograms collected during the run.
    pub metrics: ServingMetrics,
}

impl GenReport {
    /// Per-token conservation: every offered request completed, every
    /// generated token is accounted against a completed request's
    /// sampled output length, and every prompt token was prefilled
    /// exactly once. The two sides come from independent accounting
    /// paths (step-time counters vs completion-time sums), so drift in
    /// either shows up here.
    pub fn conservation_holds(&self) -> bool {
        self.arrivals == self.completed
            && self.metrics.tokens_generated.get() == self.output_tokens
            && self.metrics.tokens_prefilled.get() == self.prompt_tokens
    }
}

/// Lifecycle of one generation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenPhase {
    /// Arrived, waiting for a batch slot and a KV reservation.
    Waiting,
    /// In the in-flight batch.
    Decoding,
    /// All output tokens generated.
    Done,
}

/// Events for the queue-driven decode loop
/// ([`GenEngine::run_via_queue`]). The derived order never decides a
/// pop — every pushed key carries a unique sequence number — it only
/// satisfies the heap reference's `Ord` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum GenEvent {
    /// Request `i` arrives.
    Arrival(usize),
    /// The in-flight decode step completes.
    StepDone,
}

/// The hot per-request decode progress pair, kept contiguous (and
/// separate from the cold arrival/first-token fields) for the
/// per-member step loop.
#[derive(Debug, Clone, Copy)]
struct Prog {
    generated: u64,
    output: u64,
}

/// Salt separating the token-draw stream from the arrival stream: both
/// derive from `cfg.seed`, but changing the arrival rate or request
/// count never perturbs the token draws and vice versa.
const GEN_TOKEN_SALT: u64 = 0xA076_1D64_78BD_642F;

/// The decode-loop state machine (one replica). Same telemetry contract
/// as [`Engine`]: every instrumentation site is gated on `S::ENABLED`,
/// so the [`NullSink`] instantiation monomorphizes to the bare engine
/// and recorded runs return bit-identical reports.
///
/// Only two event sources exist — the next arrival and the end of the
/// in-flight decode step — so the loop needs no heap: it repeatedly
/// takes the earlier of the two (arrival first on ties, matching the
/// schedule-order discipline of the fleet engine and letting a request
/// that lands exactly on a boundary join it).
struct GenEngine<'a, S: EventSink> {
    sink: S,
    lat: &'a GenLatencyModel,
    cfg: GenConfig,
    /// Pre-drawn Poisson arrival times.
    arrivals: Vec<f64>,
    /// Struct-of-arrays request state: decode progress (hot, walked
    /// every step) apart from the cold per-request fields.
    prog: Vec<Prog>,
    prompt: Vec<u64>,
    arrival: Vec<f64>,
    /// Absolute first-token time (valid once `generated >= 1`).
    first_token: Vec<f64>,
    phase: Vec<GenPhase>,
    /// Precomputed full prompt+output KV footprint per request.
    kv_need: Vec<u64>,
    /// Decode-step latency per batch size (index = size), so the step
    /// launch does no interpolation.
    decode_cache: Vec<f64>,
    /// Arrived, unadmitted requests in arrival order. Admission is
    /// strict FIFO: a KV-blocked head is never skipped, so a large
    /// request cannot starve behind a stream of small ones.
    waiting: VecDeque<u32>,
    /// The in-flight batch (request indices, admission order).
    batch: Vec<u32>,
    /// Bytes currently reserved against `kv_capacity_bytes`.
    kv_reserved: u64,
    kv_peak: u64,
    /// End time of the in-flight decode step, if one is running.
    step_end: Option<f64>,
    /// Decode steps launched so far (telemetry ids).
    steps: u64,
    next_arrival: usize,
    ttfts: Vec<f64>,
    tpots: Vec<f64>,
    e2e: Vec<f64>,
    completed: usize,
    good: usize,
    output_tokens: u64,
    prompt_tokens: u64,
    end_time: f64,
    metrics: ServingMetrics,
}

impl<'a, S: EventSink> GenEngine<'a, S> {
    fn new(lat: &'a GenLatencyModel, cfg: &GenConfig, sink: S) -> GenEngine<'a, S> {
        let n = cfg.requests;
        let mut arrival_rng = StdRng::seed_from_u64(cfg.seed);
        // Two passes, identical bits: the uniform draws come off the
        // RNG in the same order, and the ln/prefix-sum loop consumes
        // them in the same order they were drawn.
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            arrivals.push(arrival_rng.gen_range(f64::EPSILON..1.0));
        }
        let mut t = 0.0f64;
        for u in &mut arrivals {
            t += -(*u).ln() / cfg.arrival_rate_rps;
            *u = t;
        }
        let mut token_rng = StdRng::seed_from_u64(cfg.seed ^ GEN_TOKEN_SALT);
        let mut prog = Vec::with_capacity(n);
        let mut prompt = Vec::with_capacity(n);
        let mut kv_need = Vec::with_capacity(n);
        for _ in 0..n {
            let (p, o) = cfg.model.sample(&mut token_rng);
            prog.push(Prog {
                generated: 0,
                output: o,
            });
            prompt.push(p);
            kv_need.push(cfg.model.request_kv_bytes(p, o));
        }
        // Decode latency is a pure function of batch size and the run
        // only probes 1..=max_batch, so interpolate once up front.
        let cache_top = cfg.max_batch.min(4096) as usize;
        let decode_cache = (0..=cache_top)
            .map(|b| lat.decode_step_s((b as u64).max(1)))
            .collect();
        GenEngine {
            sink,
            lat,
            cfg: *cfg,
            arrivals,
            prog,
            prompt,
            arrival: vec![0.0; n],
            first_token: vec![0.0; n],
            phase: vec![GenPhase::Waiting; n],
            kv_need,
            decode_cache,
            waiting: VecDeque::new(),
            batch: Vec::new(),
            kv_reserved: 0,
            kv_peak: 0,
            step_end: None,
            steps: 0,
            next_arrival: 0,
            ttfts: Vec::with_capacity(n),
            tpots: Vec::with_capacity(n),
            e2e: Vec::with_capacity(n),
            completed: 0,
            good: 0,
            output_tokens: 0,
            prompt_tokens: 0,
            end_time: 0.0,
            metrics: ServingMetrics::new(1),
        }
    }

    #[inline(always)]
    fn emit(
        &mut self,
        t_s: f64,
        track: Track,
        phase: SpanPhase,
        name: &'static str,
        id: u64,
        arg: i64,
    ) {
        if S::ENABLED {
            self.sink.record(TelemetryEvent {
                t_s,
                track,
                phase,
                name: Cow::Borrowed(name),
                id,
                arg,
            });
        }
    }

    fn touch(&mut self, now: f64) {
        if now > self.end_time {
            self.end_time = now;
        }
    }

    /// Admits waiting requests into the batch (continuous: at every
    /// boundary; static: only into an empty batch), then launches the
    /// next decode step if anything is in flight.
    ///
    /// Admission reserves the request's **full** prompt+output KV
    /// footprint — its residency at its final decode step — so a
    /// reservation that fits now is guaranteed to fit for the request's
    /// whole lifetime and mid-decode eviction never happens.
    fn schedule(&mut self, now: f64) {
        debug_assert!(self.step_end.is_none(), "step already in flight");
        let may_admit = match self.cfg.mode {
            BatchingMode::Continuous => true,
            BatchingMode::Static => self.batch.is_empty(),
        };
        let mut prefill = 0.0;
        if may_admit {
            while (self.batch.len() as u64) < self.cfg.max_batch {
                let Some(&r) = self.waiting.front() else {
                    break;
                };
                let ri = r as usize;
                let need = self.kv_need[ri];
                if self.kv_reserved + need > self.cfg.kv_capacity_bytes {
                    // KV is the binding constraint: defer (FIFO order
                    // preserved, no skip-ahead) and account the stall.
                    self.metrics.kv_deferrals.inc();
                    self.emit(
                        now,
                        FLEET,
                        SpanPhase::Instant,
                        "kv_defer",
                        r as u64,
                        need as i64,
                    );
                    break;
                }
                self.waiting.pop_front();
                self.kv_reserved += need;
                self.phase[ri] = GenPhase::Decoding;
                self.metrics.admitted.inc();
                self.metrics.tokens_prefilled.add(self.prompt[ri]);
                self.metrics.queue_wait_s.observe(now - self.arrival[ri]);
                // Prefill is paid once, at join: the step that admits a
                // request carries its full prompt cost.
                prefill += self.lat.prefill_s(self.prompt[ri]);
                self.batch.push(r);
                // Residency span: admitted exactly once, so the request
                // index is a unique begin/end pairing id.
                self.emit(
                    now,
                    server_track(0),
                    SpanPhase::Begin,
                    "resident",
                    r as u64,
                    self.prompt[ri] as i64,
                );
            }
            if self.kv_reserved > self.kv_peak {
                self.kv_peak = self.kv_reserved;
            }
        }
        if self.batch.is_empty() {
            return; // Idle; the next arrival restarts the loop.
        }
        let b = self.batch.len() as u64;
        let step = prefill + self.decode_step(b);
        self.steps += 1;
        self.metrics.decode_steps.inc();
        self.metrics.decode_batch.observe(b as f64);
        self.metrics.per_server_busy_s[0] += step;
        self.emit(
            now,
            server_track(0),
            SpanPhase::Instant,
            "decode_step",
            self.steps,
            b as i64,
        );
        self.step_end = Some(now + step);
    }

    /// Decode latency for an in-range batch size from the precomputed
    /// table; out-of-range (max_batch beyond the cache cap) falls back
    /// to the model.
    #[inline(always)]
    fn decode_step(&self, b: u64) -> f64 {
        match self.decode_cache.get(b as usize) {
            Some(&s) => s,
            None => self.lat.decode_step_s(b.max(1)),
        }
    }

    /// One decode step just ended: every still-decoding member emits a
    /// token, finished members retire per the batching mode, and the
    /// next step (plus any admissions) launches.
    fn step_done(&mut self, now: f64) {
        self.step_end = None;
        let mut emitted = 0u64;
        for k in 0..self.batch.len() {
            let r = self.batch[k] as usize;
            let p = self.prog[r];
            if p.generated >= p.output {
                continue; // Static mode: done, padding the batch.
            }
            let g = p.generated + 1;
            self.prog[r].generated = g;
            emitted += 1;
            if g == 1 {
                self.first_token[r] = now;
                self.emit(now, FLEET, SpanPhase::Instant, "first_token", r as u64, 0);
            }
            if g == p.output {
                self.complete(r, now);
            }
        }
        // Only the end-of-run value of this counter is observable, so
        // the per-member increments collapse into one add.
        self.metrics.tokens_generated.add(emitted);
        match self.cfg.mode {
            BatchingMode::Continuous => {
                // Retire finished members immediately, preserving the
                // admission order of the survivors.
                let mut write = 0;
                for k in 0..self.batch.len() {
                    let r = self.batch[k];
                    if self.phase[r as usize] == GenPhase::Done {
                        self.release_kv(r as usize, now);
                    } else {
                        self.batch[write] = r;
                        write += 1;
                    }
                }
                self.batch.truncate(write);
            }
            BatchingMode::Static => {
                // The batch retires only as a unit.
                if self
                    .batch
                    .iter()
                    .all(|&r| self.phase[r as usize] == GenPhase::Done)
                {
                    for k in 0..self.batch.len() {
                        self.release_kv(self.batch[k] as usize, now);
                    }
                    self.batch.clear();
                }
            }
        }
        self.schedule(now);
    }

    /// Completion accounting for one request at its final token.
    fn complete(&mut self, r: usize, now: f64) {
        self.phase[r] = GenPhase::Done;
        let output = self.prog[r].output;
        let ttft = self.first_token[r] - self.arrival[r];
        self.ttfts.push(ttft);
        if output >= 2 {
            self.tpots
                .push((now - self.first_token[r]) / (output - 1) as f64);
        }
        self.e2e.push(now - self.arrival[r]);
        self.completed += 1;
        self.metrics.completed.inc();
        self.metrics.per_server_completed[0] += 1;
        self.output_tokens += output;
        self.prompt_tokens += self.prompt[r];
        match self.cfg.ttft_slo_s {
            Some(slo) if ttft > slo => self.metrics.completed_late.inc(),
            _ => self.good += 1,
        }
        self.emit(
            now,
            FLEET,
            SpanPhase::Instant,
            "complete",
            r as u64,
            output as i64,
        );
        self.touch(now);
    }

    /// Releases one retired member's KV reservation and closes its
    /// residency span.
    fn release_kv(&mut self, r: usize, now: f64) {
        let need = self.kv_need[r];
        debug_assert!(self.kv_reserved >= need, "KV release exceeds reservation");
        self.kv_reserved -= need;
        self.emit(
            now,
            server_track(0),
            SpanPhase::End,
            "resident",
            r as u64,
            self.prog[r].output as i64,
        );
    }

    fn run(mut self) -> GenReport {
        let n = self.cfg.requests;
        loop {
            let next_arr = (self.next_arrival < n).then(|| self.arrivals[self.next_arrival]);
            let (now, is_arrival) = match (next_arr, self.step_end) {
                (None, None) => break,
                (Some(a), None) => (a, true),
                (None, Some(s)) => (s, false),
                (Some(a), Some(s)) => {
                    if a <= s {
                        (a, true)
                    } else {
                        (s, false)
                    }
                }
            };
            self.metrics.events_processed.inc();
            if is_arrival {
                let i = self.next_arrival;
                self.next_arrival += 1;
                self.arrive(i, now);
            } else {
                self.step_done(now);
            }
        }
        self.finish()
    }

    /// Arrival bookkeeping shared by [`Self::run`] and
    /// [`Self::run_via_queue`].
    #[inline(always)]
    fn arrive(&mut self, i: usize, now: f64) {
        self.touch(now);
        self.metrics.arrivals.inc();
        self.arrival[i] = now;
        self.emit(
            now,
            FLEET,
            SpanPhase::Instant,
            "arrive",
            i as u64,
            self.prompt[i] as i64,
        );
        self.waiting.push_back(i as u32);
        if self.step_end.is_none() {
            self.schedule(now);
        }
    }

    /// Drives the identical decode state machine through an
    /// [`EventQueue`] instead of the two-source select in
    /// [`Self::run`]. Sequence keys are band-separated: arrival `i`
    /// carries seq `i` (all `< n`), decode steps carry seqs `> n` — so
    /// an arrival landing exactly on a step boundary pops first,
    /// reproducing the production loop's `a <= s` tie rule bit for
    /// bit. Differential anchor for the queue implementations.
    fn run_via_queue<Q: EventQueue<GenEvent>>(mut self, mut events: Q) -> GenReport {
        let n = self.cfg.requests;
        for (i, &t) in self.arrivals.iter().enumerate() {
            events.push((TimeKey(t), i as u64), GenEvent::Arrival(i));
        }
        let mut step_seq = n as u64;
        while let Some(((TimeKey(now), _), ev)) = events.pop() {
            self.metrics.events_processed.inc();
            // At most one step is in flight. A `step_end` surviving an
            // Arrival was queued earlier; anything `step_done` leaves
            // behind (it clears the old end first) is a fresh launch.
            let had_step = self.step_end.is_some();
            let fresh = match ev {
                GenEvent::Arrival(i) => {
                    self.next_arrival += 1;
                    self.arrive(i, now);
                    !had_step
                }
                GenEvent::StepDone => {
                    self.step_done(now);
                    true
                }
            };
            if fresh {
                if let Some(s) = self.step_end {
                    step_seq += 1;
                    events.push((TimeKey(s), step_seq), GenEvent::StepDone);
                }
            }
        }
        self.finish()
    }

    fn finish(self) -> GenReport {
        // Validation guarantees any single request fits an empty-batch
        // KV, arrivals are finite, and outputs are bounded — so the
        // loop drains completely.
        debug_assert!(self.waiting.is_empty(), "decode loop drained");
        debug_assert!(self.batch.is_empty(), "decode loop drained");
        debug_assert_eq!(self.kv_reserved, 0, "KV accounting drift");
        debug_assert_eq!(
            self.completed, self.cfg.requests,
            "per-request conservation"
        );
        let mut metrics = self.metrics;
        metrics.kv_peak_bytes = self.kv_peak;
        let ttft_stats = LatencyStats::from_samples(&self.ttfts);
        let tpot_stats = LatencyStats::from_samples(&self.tpots);
        let e2e_stats = LatencyStats::from_samples(&self.e2e);
        let total = self.end_time.max(1e-12);
        GenReport {
            p50_ttft_s: ttft_stats.p50_s,
            p99_ttft_s: ttft_stats.p99_s,
            p99_tpot_s: tpot_stats.p99_s,
            ttft_stats,
            tpot_stats,
            e2e_stats,
            throughput_rps: self.completed as f64 / total,
            goodput_rps: self.good as f64 / total,
            tokens_per_s: metrics.tokens_generated.get() as f64 / total,
            arrivals: self.cfg.requests,
            completed: self.completed,
            output_tokens: self.output_tokens,
            prompt_tokens: self.prompt_tokens,
            kv_peak_bytes: self.kv_peak,
            seed: self.cfg.seed,
            duration_s: self.end_time,
            metrics,
        }
    }
}

/// Rejects prefill/decode curves that evaluate non-positive or
/// non-finite anywhere the run can probe them. Both curves are monotone
/// (construction repairs them), so checking the extremes suffices.
fn validate_gen_latency(lat: &GenLatencyModel, cfg: &GenConfig) -> Result<(), ConfigError> {
    let probes = [
        lat.prefill_s(1),
        lat.prefill_s(cfg.model.prompt.max_tokens()),
        lat.decode_step_s(1),
        lat.decode_step_s(cfg.max_batch),
    ];
    for t in probes {
        if !t.is_finite() || t <= 0.0 {
            return Err(ConfigError::NonPositiveGenLatency(t));
        }
    }
    Ok(())
}

/// Simulates autoregressive serving on one replica: Poisson arrivals,
/// per-request sampled prompt/output token counts, a prefill-at-join /
/// decode-step loop, and KV-cache HBM as a first-class constrained
/// resource (reserved at admission, deferred — never shed — on
/// overflow).
///
/// The run is a pure function of `(lat, cfg)` including the seed;
/// [`GenReport::conservation_holds`] cross-checks per-token accounting.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or latency curves.
pub fn simulate_generation(
    lat: &GenLatencyModel,
    cfg: &GenConfig,
) -> Result<GenReport, ConfigError> {
    cfg.validate()?;
    validate_gen_latency(lat, cfg)?;
    Ok(GenEngine::new(lat, cfg, NullSink).run())
}

/// Everything [`simulate_generation`] does, with the decode lifecycle
/// recorded into `recorder`: `arrive` / `first_token` / `complete` /
/// `kv_defer` instants on the fleet track, per-request `resident` KV
/// spans and `decode_step` instants on the replica track, and exact
/// per-event-name counters (including `events_processed`).
///
/// Telemetry is derived from, never an input to, simulation state: the
/// returned report is bit-identical to [`simulate_generation`] for the
/// same config.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or latency curves.
pub fn simulate_generation_recorded(
    lat: &GenLatencyModel,
    cfg: &GenConfig,
    recorder: &mut Recorder,
) -> Result<GenReport, ConfigError> {
    cfg.validate()?;
    validate_gen_latency(lat, cfg)?;
    let report = GenEngine::new(lat, cfg, &mut *recorder).run();
    recorder.add_counter("events_processed", report.metrics.events_processed.get());
    Ok(report)
}

/// [`simulate_generation`] with the decode loop driven through the
/// reference binary-heap [`EventQueue`] instead of the production
/// two-source select. Kept as the differential anchor: for every valid
/// config the report is byte-identical to [`simulate_generation`].
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or latency curves.
pub fn simulate_generation_reference(
    lat: &GenLatencyModel,
    cfg: &GenConfig,
) -> Result<GenReport, ConfigError> {
    cfg.validate()?;
    validate_gen_latency(lat, cfg)?;
    Ok(GenEngine::new(lat, cfg, NullSink).run_via_queue(HeapQueue::new()))
}

/// [`simulate_generation`] with the decode loop driven through the
/// calendar queue, exercising bucket scheduling on the decode loop's
/// arrival/step event pattern. Byte-identical to the production path.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or latency curves.
pub fn simulate_generation_calendar(
    lat: &GenLatencyModel,
    cfg: &GenConfig,
) -> Result<GenReport, ConfigError> {
    cfg.validate()?;
    validate_gen_latency(lat, cfg)?;
    let q = CalendarQueue::for_timescale(1.0 / cfg.arrival_rate_rps);
    Ok(GenEngine::new(lat, cfg, NullSink).run_via_queue(q))
}

/// [`simulate_generation_recorded`] through the reference heap queue:
/// same recorded telemetry stream and counters as the production path.
///
/// # Errors
///
/// [`ConfigError`] for degenerate configurations or latency curves.
pub fn simulate_generation_recorded_reference(
    lat: &GenLatencyModel,
    cfg: &GenConfig,
    recorder: &mut Recorder,
) -> Result<GenReport, ConfigError> {
    cfg.validate()?;
    validate_gen_latency(lat, cfg)?;
    let report = GenEngine::new(lat, cfg, &mut *recorder).run_via_queue(HeapQueue::new());
    recorder.add_counter("events_processed", report.metrics.events_processed.get());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_model() -> LatencyModel {
        // 1 ms fixed + 0.05 ms per item.
        LatencyModel::from_points(vec![(1, 0.00105), (100, 0.006)]).unwrap()
    }

    fn cfg(rate: f64) -> ServingConfig {
        ServingConfig {
            arrival_rate_rps: rate,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 4000,
            seed: 42,
        }
    }

    #[test]
    fn all_requests_complete() {
        let r = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert_eq!(r.stats.n, 4000);
        assert_eq!(r.completed, 4000);
        assert_eq!(r.shed, 0);
        assert_eq!(r.dropped, 0);
        assert!(r.conservation_holds());
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        let b = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert_eq!(a, b);
        let mut c2 = cfg(2000.0);
        c2.seed = 43;
        let c = simulate(&linear_model(), &c2).unwrap();
        // Different arrival draws shift the mean (p99 may coincide when
        // dominated by the batch timeout).
        assert_ne!(a.stats.mean_s, c.stats.mean_s);
    }

    #[test]
    fn light_load_latency_is_service_plus_timeout() {
        // At very light load, each request waits out the batch timeout
        // alone, then is served at batch 1.
        let m = linear_model();
        let mut c = cfg(10.0);
        c.requests = 500;
        let r = simulate(&m, &c).unwrap();
        let expected = 0.001 + m.latency(1);
        assert!(
            (r.p50_s - expected).abs() < 0.3e-3,
            "p50 {} vs expected {expected}",
            r.p50_s
        );
        assert!(r.mean_batch < 1.3);
    }

    #[test]
    fn heavy_load_forms_big_batches() {
        let r_light = simulate(&linear_model(), &cfg(200.0)).unwrap();
        let r_heavy = simulate(&linear_model(), &cfg(8000.0)).unwrap();
        assert!(r_heavy.mean_batch > 4.0 * r_light.mean_batch.max(1.0));
        assert!(r_heavy.server_utilization > r_light.server_utilization);
    }

    #[test]
    fn p99_explodes_past_saturation() {
        // Capacity with batch 16: 16 / latency(16) ≈ 9k rps.
        let below = simulate(&linear_model(), &cfg(5000.0)).unwrap();
        let mut over = cfg(20000.0);
        over.requests = 6000;
        let above = simulate(&linear_model(), &over).unwrap();
        assert!(
            above.p99_s > 5.0 * below.p99_s,
            "saturation must blow up p99: {} vs {}",
            above.p99_s,
            below.p99_s
        );
    }

    #[test]
    fn p99_grows_with_load() {
        let mut last = 0.0;
        for rate in [500.0, 2000.0, 6000.0] {
            let r = simulate(&linear_model(), &cfg(rate)).unwrap();
            assert!(r.p99_s >= last * 0.8, "p99 should broadly grow with load");
            last = r.p99_s;
        }
    }

    #[test]
    fn stragglers_inflate_the_tail_more_than_the_median() {
        let m = linear_model();
        let base = simulate(&m, &cfg(2000.0)).unwrap();
        let slow = simulate_with_stragglers(
            &m,
            &cfg(2000.0),
            &Stragglers {
                probability: 0.02,
                factor: 10.0,
            },
        )
        .unwrap();
        // All requests still complete.
        assert_eq!(slow.stats.n, base.stats.n);
        // The tail suffers disproportionately.
        let p99_blowup = slow.p99_s / base.p99_s;
        let p50_blowup = slow.p50_s / base.p50_s;
        assert!(p99_blowup > 2.0, "p99 blowup {p99_blowup}");
        assert!(
            p99_blowup > 2.0 * p50_blowup,
            "tail must suffer more: p99 {p99_blowup:.2}x vs p50 {p50_blowup:.2}x"
        );
    }

    #[test]
    fn zero_probability_stragglers_change_nothing() {
        let m = linear_model();
        let a = simulate(&m, &cfg(3000.0)).unwrap();
        let b = simulate_with_stragglers(&m, &cfg(3000.0), &Stragglers::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_servers_cut_queueing_latency() {
        // Load that saturates one server comfortably fits four.
        let m = linear_model();
        let mut c = cfg(12000.0);
        c.requests = 6000;
        let one = simulate_pool(&m, &c.with_servers(1)).unwrap();
        let four = simulate_pool(&m, &c.with_servers(4)).unwrap();
        assert_eq!(one.stats.n, four.stats.n);
        assert!(
            four.p99_s < one.p99_s / 3.0,
            "four servers must slash the tail: {} vs {}",
            four.p99_s,
            one.p99_s
        );
        assert!(four.server_utilization < one.server_utilization);
    }

    #[test]
    fn pool_of_one_matches_single_server_api() {
        let m = linear_model();
        let c = cfg(2000.0);
        let a = simulate(&m, &c).unwrap();
        let b = simulate_pool(&m, &c.with_servers(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pool_throughput_scales_until_arrival_limited() {
        let m = linear_model();
        let mut c = cfg(50_000.0); // far past single-server capacity
        c.requests = 8000;
        let t1 = simulate_pool(&m, &c.with_servers(1))
            .unwrap()
            .throughput_rps;
        let t4 = simulate_pool(&m, &c.with_servers(4))
            .unwrap()
            .throughput_rps;
        assert!(t4 > 2.5 * t1, "{t4} vs {t1}");
    }

    #[test]
    fn utilization_bounded() {
        let r = simulate(&linear_model(), &cfg(100000.0)).unwrap();
        assert!(r.server_utilization <= 1.0);
        assert!(r.server_utilization > 0.9);
    }

    // ---- config validation regressions --------------------------------

    #[test]
    fn max_batch_zero_is_a_typed_error() {
        // Regression: this used to spin forever launching empty batches
        // and then panic indexing the straggler table out of bounds.
        let m = linear_model();
        let mut c = cfg(1000.0);
        c.max_batch = 0;
        assert_eq!(simulate(&m, &c), Err(ConfigError::ZeroMaxBatch));
        assert_eq!(
            simulate_pool_with_stragglers(&m, &c.with_servers(3), &Stragglers::default()),
            Err(ConfigError::ZeroMaxBatch)
        );
    }

    #[test]
    fn zero_arrival_rate_is_a_typed_error() {
        let m = linear_model();
        let mut c = cfg(0.0);
        c.arrival_rate_rps = 0.0;
        assert_eq!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(0.0))
        );
        assert_eq!(
            simulate_pool_with_stragglers(&m, &c.with_servers(2), &Stragglers::default()),
            Err(ConfigError::NonPositiveArrivalRate(0.0))
        );
        c.arrival_rate_rps = -5.0;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(_))
        ));
    }

    #[test]
    fn nan_and_degenerate_knobs_are_typed_errors() {
        let m = linear_model();
        let mut c = cfg(1000.0);
        c.arrival_rate_rps = f64::NAN;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::NonPositiveArrivalRate(_))
        ));
        let mut c = cfg(1000.0);
        c.batch_timeout_s = f64::NAN;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::InvalidBatchTimeout(_))
        ));
        let mut c = cfg(1000.0);
        c.batch_timeout_s = -1.0;
        assert!(matches!(
            simulate(&m, &c),
            Err(ConfigError::InvalidBatchTimeout(_))
        ));
        let mut c = cfg(1000.0);
        c.requests = 0;
        assert_eq!(simulate(&m, &c), Err(ConfigError::ZeroRequests));
        let pool = PoolConfig {
            base: cfg(1000.0),
            servers: 0,
        };
        assert_eq!(simulate_pool(&m, &pool), Err(ConfigError::ZeroServers));
        assert!(matches!(
            simulate_with_stragglers(
                &m,
                &cfg(1000.0),
                &Stragglers {
                    probability: 1.5,
                    factor: 2.0
                }
            ),
            Err(ConfigError::InvalidStragglerProbability(_))
        ));
        assert!(matches!(
            simulate_with_stragglers(
                &m,
                &cfg(1000.0),
                &Stragglers {
                    probability: 0.1,
                    factor: 0.5
                }
            ),
            Err(ConfigError::InvalidStragglerFactor(_))
        ));
    }

    #[test]
    fn bad_policy_is_a_typed_error() {
        let m = linear_model();
        let fleet =
            |policy: FleetPolicy| FleetConfig::new(cfg(1000.0).with_servers(1)).with_policy(policy);
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    deadline_s: Some(f64::NAN),
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidDeadline(_))
        ));
        assert_eq!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    shed_expired: true,
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::SheddingWithoutDeadline)
        );
        assert_eq!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    queue_cap: Some(0),
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::ZeroQueueCap)
        );
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    retry: RetryPolicy {
                        max_retries: 1,
                        backoff_s: -1.0,
                        backoff_mult: 2.0
                    },
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidRetryBackoff(_))
        ));
        assert!(matches!(
            simulate_fleet(
                &m,
                &fleet(FleetPolicy {
                    retry: RetryPolicy {
                        max_retries: 1,
                        backoff_s: 0.001,
                        backoff_mult: 0.0
                    },
                    ..FleetPolicy::default()
                })
            ),
            Err(ConfigError::InvalidRetryBackoffMult(_))
        ));
    }

    #[test]
    fn config_error_displays() {
        let msg = format!("{}", ConfigError::ZeroMaxBatch);
        assert!(msg.contains("max_batch"));
        let msg = format!("{}", ConfigError::NonPositiveArrivalRate(f64::NAN));
        assert!(msg.contains("arrival_rate_rps"));
    }

    // ---- fleet policy behavior ----------------------------------------

    /// A mildly overloaded fleet: one server, arrivals ~1.7x capacity.
    fn overloaded_fleet(policy: FleetPolicy) -> FleetConfig {
        let mut base = cfg(15_000.0);
        base.requests = 6000;
        FleetConfig::new(base.with_servers(1)).with_policy(policy)
    }

    #[test]
    fn conservation_holds_under_every_policy() {
        let m = linear_model();
        let policies = [
            FleetPolicy::default(),
            FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                ..FleetPolicy::default()
            },
            FleetPolicy {
                queue_cap: Some(32),
                ..FleetPolicy::default()
            },
            FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                queue_cap: Some(32),
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff_s: 0.002,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            },
        ];
        for policy in policies {
            let r = simulate_fleet(&m, &overloaded_fleet(policy)).unwrap();
            assert!(
                r.conservation_holds(),
                "arrivals {} != completed {} + shed {} + dropped {} for {policy:?}",
                r.arrivals,
                r.completed,
                r.shed,
                r.dropped
            );
            assert_eq!(r.completed as u64, r.metrics.completed.get());
            assert_eq!(r.shed as u64, r.metrics.shed_total());
            assert_eq!(r.dropped as u64, r.metrics.dropped_at_drain.get());
        }
    }

    #[test]
    fn deadline_shedding_sheds_and_protects_goodput() {
        let m = linear_model();
        let deadline = 0.02;
        let no_shed = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(deadline),
                shed_expired: false,
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        let shed = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(deadline),
                shed_expired: true,
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        // Without shedding everything completes, but mostly too late.
        assert_eq!(no_shed.completed, no_shed.arrivals);
        assert!(no_shed.metrics.completed_late.get() > 0);
        assert!(no_shed.goodput_rps < no_shed.throughput_rps);
        // With shedding, expired requests are lost instead of served.
        assert!(shed.shed > 0);
        assert!(shed.metrics.shed_deadline.get() > 0);
        // Shedding protects goodput: served requests meet the deadline.
        assert!(
            shed.goodput_rps > 1.5 * no_shed.goodput_rps,
            "shedding goodput {} vs head-of-line-blocked {}",
            shed.goodput_rps,
            no_shed.goodput_rps
        );
    }

    #[test]
    fn queue_cap_sheds_under_overload() {
        let m = linear_model();
        let r = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                queue_cap: Some(32),
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        assert!(r.shed > 0);
        assert!(r.metrics.shed_queue_full.get() > 0);
        // The queue never exceeded its cap, so waits stay bounded: every
        // admitted request waits at most cap/throughput plus service.
        assert!(
            r.p99_s < 0.05,
            "p99 {} should be bounded by the cap",
            r.p99_s
        );
        assert!(r.conservation_holds());
    }

    #[test]
    fn retries_recover_some_sheds() {
        let m = linear_model();
        let policy_no_retry = FleetPolicy {
            queue_cap: Some(32),
            ..FleetPolicy::default()
        };
        let policy_retry = FleetPolicy {
            queue_cap: Some(32),
            retry: RetryPolicy {
                max_retries: 3,
                backoff_s: 0.005,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        };
        let without = simulate_fleet(&m, &overloaded_fleet(policy_no_retry)).unwrap();
        let with = simulate_fleet(&m, &overloaded_fleet(policy_retry)).unwrap();
        assert!(with.metrics.retries.get() > 0);
        // Every permanent loss under retries burned its whole budget.
        assert_eq!(with.shed as u64, with.metrics.retries_exhausted.get());
        // Retries convert some sheds into completions.
        assert!(
            with.completed > without.completed,
            "retries should recover work: {} vs {}",
            with.completed,
            without.completed
        );
        assert!(with.conservation_holds());
    }

    #[test]
    fn queue_budget_reserves_room_for_service() {
        let m = linear_model();
        // Budget validation.
        let bad = FleetConfig::new(cfg(1000.0).with_servers(1)).with_policy(FleetPolicy {
            deadline_s: Some(0.02),
            shed_expired: true,
            queue_budget_s: Some(f64::NAN),
            ..FleetPolicy::default()
        });
        assert!(matches!(
            simulate_fleet(&m, &bad),
            Err(ConfigError::InvalidQueueBudget(_))
        ));
        // With the full deadline as queue budget, a request can launch
        // right at the wire and finish late; reserving service time in
        // the budget keeps completions on time.
        let deadline = 0.02;
        let run = |budget: Option<f64>| {
            simulate_fleet(
                &m,
                &overloaded_fleet(FleetPolicy {
                    deadline_s: Some(deadline),
                    shed_expired: true,
                    queue_budget_s: budget,
                    ..FleetPolicy::default()
                }),
            )
            .unwrap()
        };
        let full = run(None);
        let reserved = run(Some(deadline - m.latency(16)));
        assert!(full.metrics.completed_late.get() > 0);
        assert!(
            reserved.metrics.completed_late.get() < full.metrics.completed_late.get(),
            "reserving service headroom must cut late completions: {} vs {}",
            reserved.metrics.completed_late.get(),
            full.metrics.completed_late.get()
        );
    }

    #[test]
    fn deadline_sheds_do_not_retry() {
        // Retries are for admission rejections; a request whose SLO
        // already passed is permanently lost even with a retry budget.
        let m = linear_model();
        let r = simulate_fleet(
            &m,
            &overloaded_fleet(FleetPolicy {
                deadline_s: Some(0.01),
                shed_expired: true,
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff_s: 0.001,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            }),
        )
        .unwrap();
        assert!(r.metrics.shed_deadline.get() > 0);
        assert_eq!(r.metrics.retries.get(), 0);
        assert_eq!(r.shed as u64, r.metrics.shed_deadline.get());
        assert!(r.conservation_holds());
    }

    #[test]
    fn goodput_equals_throughput_without_deadline() {
        let r = simulate(&linear_model(), &cfg(2000.0)).unwrap();
        assert!((r.goodput_rps - r.throughput_rps).abs() < 1e-9);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let m = linear_model();
        let fleet = overloaded_fleet(FleetPolicy {
            deadline_s: Some(0.015),
            shed_expired: true,
            queue_cap: Some(64),
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.002,
                backoff_mult: 1.5,
            },
            ..FleetPolicy::default()
        })
        .with_stragglers(Stragglers {
            probability: 0.05,
            factor: 4.0,
        });
        let a = simulate_fleet(&m, &fleet).unwrap();
        let b = simulate_fleet(&m, &fleet).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn per_server_busy_time_is_tracked() {
        let m = linear_model();
        let mut c = cfg(12_000.0);
        c.requests = 6000;
        let r = simulate_pool(&m, &c.with_servers(3)).unwrap();
        assert_eq!(r.metrics.per_server_busy_s.len(), 3);
        // Under saturating load every server gets work.
        for (s, &busy) in r.metrics.per_server_busy_s.iter().enumerate() {
            assert!(busy > 0.0, "server {s} never worked");
        }
        let total: f64 = r.metrics.per_server_busy_s.iter().sum();
        assert!(r.server_utilization <= 1.0);
        assert!(total > 0.0);
    }

    // ---- fault injection, failover, availability ----

    use crate::faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};

    fn crash(server: usize, at_s: f64, mttr_s: f64) -> ScheduledFault {
        ScheduledFault {
            server,
            at_s,
            kind: FaultKind::Crash { mttr_s },
        }
    }

    #[test]
    fn no_fault_plan_matches_plain_fleet() {
        let fleet = FleetConfig::new(cfg(6000.0).with_servers(3)).with_policy(FleetPolicy {
            deadline_s: Some(0.02),
            shed_expired: true,
            queue_cap: Some(64),
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let plain = simulate_fleet(&linear_model(), &fleet).unwrap();
        let with_empty =
            simulate_fleet_with_faults(&linear_model(), &fleet, &FaultPlan::none()).unwrap();
        assert_eq!(plain, with_empty);
    }

    #[test]
    fn failover_keeps_goodput_at_least_2x_past_first_crash() {
        // 4 servers, 3 crash early and stay down for the whole run. With
        // failover the health checker routes everything to the survivor;
        // without it the router keeps feeding dead replicas round-robin
        // and 3/4 of traffic expires in dead queues.
        let base = ServingConfig {
            arrival_rate_rps: 12_000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 8000,
            seed: 42,
        };
        let fleet = FleetConfig::new(base.with_servers(4)).with_policy(FleetPolicy {
            deadline_s: Some(0.02),
            shed_expired: true,
            queue_budget_s: Some(0.015),
            queue_cap: None,
            retry: RetryPolicy::default(),
        });
        let plan = FaultPlan::scheduled(vec![
            crash(1, 0.02, 1e3),
            crash(2, 0.02, 1e3),
            crash(3, 0.02, 1e3),
        ])
        .with_failover(FailoverConfig {
            enabled: true,
            probe_interval_s: 0.002,
            probe_timeout_s: 0.001,
            recovery_warmup_s: 0.005,
        });
        let off_plan = plan.clone().without_failover();
        let on = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        let off = simulate_fleet_with_faults(&linear_model(), &fleet, &off_plan).unwrap();
        assert!(on.conservation_holds());
        assert!(off.conservation_holds());
        // The acceptance bar: failover retains >= 2x goodput under the
        // identical fault plan and seed.
        assert!(
            on.goodput_rps >= 2.0 * off.goodput_rps,
            "failover-on goodput {} not >= 2x failover-off {}",
            on.goodput_rps,
            off.goodput_rps
        );
        assert!(on.metrics.failures_detected.get() >= 3);
        assert_eq!(off.metrics.failures_detected.get(), 0);
        assert!(on.metrics.failover_redistributed.get() > 0);
    }

    #[test]
    fn crash_fails_in_flight_work() {
        let base = ServingConfig {
            arrival_rate_rps: 8000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 2000,
            seed: 7,
        };
        let fleet = FleetConfig::new(base.with_servers(1));
        let plan = FaultPlan::scheduled(vec![crash(0, 0.05, 0.01)]);
        let r = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert!(r.conservation_holds());
        assert!(r.failed >= 1, "the crash should kill the in-flight batch");
        assert!(r.metrics.in_flight_failures.get() >= 1);
        assert_eq!(r.metrics.failures_recovered.get(), 1);
    }

    #[test]
    fn failed_requests_retry_and_complete() {
        let base = ServingConfig {
            arrival_rate_rps: 8000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 2000,
            seed: 7,
        };
        let plan = FaultPlan::scheduled(vec![crash(0, 0.05, 0.01)]);
        let without = simulate_fleet_with_faults(
            &linear_model(),
            &FleetConfig::new(base.with_servers(1)),
            &plan,
        )
        .unwrap();
        let with = simulate_fleet_with_faults(
            &linear_model(),
            &FleetConfig::new(base.with_servers(1)).with_policy(FleetPolicy {
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff_s: 0.01,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            }),
            &plan,
        )
        .unwrap();
        assert!(with.conservation_holds());
        assert!(with.completed > without.completed);
        assert!(with.metrics.retries.get() > 0);
    }

    #[test]
    fn hang_pauses_but_loses_nothing() {
        // Failover off: with one server, pulling it from rotation would
        // shed everything; a pure hang should just pause.
        let base = ServingConfig {
            arrival_rate_rps: 2000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 1500,
            seed: 11,
        };
        let fleet = FleetConfig::new(base.with_servers(1));
        let clean = simulate_fleet(&linear_model(), &fleet).unwrap();
        let plan = FaultPlan::scheduled(vec![ScheduledFault {
            server: 0,
            at_s: 0.1,
            kind: FaultKind::Hang { duration_s: 0.05 },
        }])
        .without_failover();
        let r = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert_eq!(r.completed, r.arrivals, "a hang must not lose requests");
        assert!(r.stats.max_s >= 0.05, "someone waited out the freeze");
        assert!(r.p99_s > clean.p99_s);
        assert_eq!(r.metrics.failures_injected.get(), 1);
        assert_eq!(r.metrics.failures_recovered.get(), 1);
    }

    #[test]
    fn slow_degrade_slows_but_serves() {
        let base = ServingConfig {
            arrival_rate_rps: 1500.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 1500,
            seed: 13,
        };
        let fleet = FleetConfig::new(base.with_servers(1));
        let clean = simulate_fleet(&linear_model(), &fleet).unwrap();
        let plan = FaultPlan::scheduled(vec![ScheduledFault {
            server: 0,
            at_s: 0.0,
            kind: FaultKind::SlowDegrade {
                factor: 3.0,
                duration_s: 1e3,
            },
        }]);
        let r = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert_eq!(r.completed, r.arrivals, "degraded servers still serve");
        assert!(r.p99_s > clean.p99_s);
        // Degraded servers answer probes: never detected as down.
        assert_eq!(r.metrics.failures_detected.get(), 0);
        assert_eq!(r.metrics.degrades_injected.get(), 1);
    }

    #[test]
    fn recovery_readmits_and_availability_accounted() {
        let base = ServingConfig {
            arrival_rate_rps: 10_000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 6000,
            seed: 21,
        };
        let fleet = FleetConfig::new(base.with_servers(2));
        let failover = FailoverConfig {
            enabled: true,
            probe_interval_s: 0.002,
            probe_timeout_s: 0.001,
            recovery_warmup_s: 0.01,
        };
        let plan = FaultPlan::scheduled(vec![crash(1, 0.05, 0.05)]).with_failover(failover);
        let r = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert!(r.conservation_holds());
        assert_eq!(r.metrics.failures_detected.get(), 1);
        assert_eq!(r.metrics.failures_recovered.get(), 1);
        // Downtime covers MTTR + warmup, bounded well under 2x.
        assert!(r.metrics.per_server_down_s[1] > 0.05);
        assert!(r.metrics.per_server_down_s[1] < 0.1);
        assert_eq!(r.metrics.per_server_down_s[0], 0.0);
        // The recovered server takes traffic again.
        assert!(r.metrics.per_server_completed[1] > 0);
        let avail = r.metrics.per_server_availability(r.duration_s);
        assert!(avail[1] < 1.0);
        assert!((avail[0] - 1.0).abs() < 1e-12);
        // Detection lag bounded by the probe schedule.
        assert!(r.metrics.time_to_detect_s.max() <= failover.worst_case_detection_s() + 1e-9);
    }

    #[test]
    fn seed_recorded_and_fault_replay_bit_identical() {
        let fleet = FleetConfig::new(cfg(9000.0).with_servers(3))
            .with_stragglers(Stragglers {
                probability: 0.05,
                factor: 4.0,
            })
            .with_policy(FleetPolicy {
                deadline_s: Some(0.03),
                shed_expired: true,
                queue_cap: Some(128),
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff_s: 0.002,
                    backoff_mult: 2.0,
                },
                ..FleetPolicy::default()
            });
        let plan = FaultPlan {
            scheduled: Vec::new(),
            mtbf: Some(MtbfFaults {
                mtbf_s: 0.2,
                mttr_s: 0.02,
                horizon_s: 1.0,
            }),
            fault_seed: 99,
            failover: FailoverConfig::default(),
        };
        let a = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        let b = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert_eq!(
            a, b,
            "same config + plan + seed must replay bit-identically"
        );
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn fault_plan_validation_is_typed() {
        let fleet = FleetConfig::new(cfg(2000.0).with_servers(2));
        let m = linear_model();
        let bad_mtbf = FaultPlan {
            scheduled: Vec::new(),
            mtbf: Some(MtbfFaults {
                mtbf_s: f64::NAN,
                mttr_s: 0.1,
                horizon_s: 1.0,
            }),
            fault_seed: 0,
            failover: FailoverConfig::default(),
        };
        assert!(matches!(
            simulate_fleet_with_faults(&m, &fleet, &bad_mtbf),
            Err(ConfigError::InvalidMtbf(_))
        ));
        let bad_mttr = FaultPlan::scheduled(vec![crash(0, 0.1, -1.0)]);
        assert!(matches!(
            simulate_fleet_with_faults(&m, &fleet, &bad_mttr),
            Err(ConfigError::InvalidMttr(_))
        ));
        let bad_server = FaultPlan::scheduled(vec![crash(5, 0.1, 0.1)]);
        assert!(matches!(
            simulate_fleet_with_faults(&m, &fleet, &bad_server),
            Err(ConfigError::FaultServerOutOfRange {
                server: 5,
                servers: 2
            })
        ));
        let bad_probe =
            FaultPlan::scheduled(vec![crash(0, 0.1, 0.1)]).with_failover(FailoverConfig {
                probe_interval_s: 0.0,
                ..FailoverConfig::default()
            });
        assert!(matches!(
            simulate_fleet_with_faults(&m, &fleet, &bad_probe),
            Err(ConfigError::InvalidProbeInterval(_))
        ));
    }

    #[test]
    fn no_completions_attributed_to_dead_server() {
        let base = ServingConfig {
            arrival_rate_rps: 9000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 4000,
            seed: 17,
        };
        let fleet = FleetConfig::new(base.with_servers(4)).with_policy(FleetPolicy {
            deadline_s: Some(0.05),
            shed_expired: true,
            ..FleetPolicy::default()
        });
        // Server 2 dies before any work arrives and never comes back.
        let plan = FaultPlan::scheduled(vec![crash(2, 0.0, 1e6)]);
        let r = simulate_fleet_with_faults(&linear_model(), &fleet, &plan).unwrap();
        assert!(r.conservation_holds());
        assert_eq!(r.metrics.per_server_completed[2], 0);
        assert_eq!(r.metrics.per_server_busy_s[2], 0.0);
    }

    // ---- decode-loop scheduler ----------------------------------------

    use crate::genmodel::TokenDistribution;
    use crate::latency::GenLatencyModel;

    /// ~1 ms + 9 us/token prefill; ~3 ms decode step, nearly flat in
    /// batch (weight-streaming economics).
    fn gen_latency() -> GenLatencyModel {
        GenLatencyModel {
            prefill: LatencyModel::from_points(vec![(1, 0.001), (1000, 0.01)]).unwrap(),
            decode: LatencyModel::from_points(vec![(1, 0.003), (32, 0.004)]).unwrap(),
        }
    }

    fn gen_cfg(rate: f64, mode: BatchingMode) -> GenConfig {
        GenConfig {
            arrival_rate_rps: rate,
            requests: 400,
            seed: 7,
            mode,
            max_batch: 8,
            kv_capacity_bytes: 10_000_000,
            ttft_slo_s: Some(0.2),
            model: GenerationModel {
                prompt: TokenDistribution::Fixed(100),
                output: TokenDistribution::Uniform { min: 1, max: 64 },
                kv_bytes_per_token: 1000,
            },
        }
    }

    #[test]
    fn gen_light_load_ttft_is_prefill_plus_one_step() {
        let lat = gen_latency();
        let mut cfg = gen_cfg(1.0, BatchingMode::Continuous);
        cfg.requests = 50;
        let r = simulate_generation(&lat, &cfg).unwrap();
        assert!(r.conservation_holds());
        // A request arriving to an idle engine sees its own prefill plus
        // one batch-1 decode step before its first token.
        let expected = lat.prefill_s(100) + lat.decode_step_s(1);
        assert!(
            (r.p50_ttft_s - expected).abs() < 1e-3,
            "p50 TTFT {} vs expected {expected}",
            r.p50_ttft_s
        );
        assert!(r.e2e_stats.p50_s > r.p50_ttft_s);
        assert!(r.tokens_per_s > 0.0);
        assert_eq!(r.kv_peak_bytes, r.metrics.kv_peak_bytes);
        assert!(r.kv_peak_bytes <= cfg.kv_capacity_bytes);
    }

    #[test]
    fn gen_deterministic_given_seed() {
        let lat = gen_latency();
        let cfg = gen_cfg(40.0, BatchingMode::Continuous);
        let a = simulate_generation(&lat, &cfg).unwrap();
        let b = simulate_generation(&lat, &cfg).unwrap();
        assert_eq!(a, b);
        let mut c2 = cfg;
        c2.seed = 8;
        let c = simulate_generation(&lat, &c2).unwrap();
        assert_ne!(a.ttft_stats.mean_s, c.ttft_stats.mean_s);
    }

    #[test]
    fn gen_continuous_equals_static_at_output_one() {
        // With every output exactly one token, each batch member
        // finishes at its first step boundary, so the batch always
        // drains completely and both modes make identical admission
        // decisions — the reports must match bit for bit.
        let lat = gen_latency();
        for rate in [5.0, 60.0, 300.0] {
            let mut stat = gen_cfg(rate, BatchingMode::Static);
            stat.model.output = TokenDistribution::Fixed(1);
            let mut cont = stat;
            cont.mode = BatchingMode::Continuous;
            let a = simulate_generation(&lat, &stat).unwrap();
            let b = simulate_generation(&lat, &cont).unwrap();
            assert_eq!(a.metrics, b.metrics, "rate {rate}");
            assert_eq!(a, b, "rate {rate}");
        }
    }

    #[test]
    fn gen_continuous_beats_static_under_overload() {
        // Variable output lengths make static batches pad: every member
        // waits for the slowest draw. Continuous refills those slots, so
        // under overload it finishes sooner and keeps TTFT bounded.
        let lat = gen_latency();
        let stat = simulate_generation(&lat, &gen_cfg(60.0, BatchingMode::Static)).unwrap();
        let cont = simulate_generation(&lat, &gen_cfg(60.0, BatchingMode::Continuous)).unwrap();
        assert!(stat.conservation_holds());
        assert!(cont.conservation_holds());
        assert!(
            cont.goodput_rps > stat.goodput_rps,
            "continuous goodput {} vs static {}",
            cont.goodput_rps,
            stat.goodput_rps
        );
        assert!(
            cont.p99_ttft_s < stat.p99_ttft_s,
            "continuous p99 TTFT {} vs static {}",
            cont.p99_ttft_s,
            stat.p99_ttft_s
        );
        assert!(cont.tokens_per_s > stat.tokens_per_s);
    }

    #[test]
    fn gen_kv_pressure_defers_not_sheds() {
        // Capacity for ~2 worst-case requests while max_batch allows 8:
        // KV is the binding constraint, and the engine must defer (never
        // drop) yet still complete everything.
        let lat = gen_latency();
        let mut cfg = gen_cfg(100.0, BatchingMode::Continuous);
        cfg.model.output = TokenDistribution::Fixed(10);
        cfg.kv_capacity_bytes = 250_000; // need = 110_000 per request
        let r = simulate_generation(&lat, &cfg).unwrap();
        assert!(r.conservation_holds());
        assert_eq!(r.completed, cfg.requests);
        assert!(r.metrics.kv_deferrals.get() > 0, "KV never bound");
        assert!(r.kv_peak_bytes <= cfg.kv_capacity_bytes);
        // At most two concurrent reservations fit.
        assert!(r.metrics.decode_batch.max() <= 2.0);
    }

    #[test]
    fn gen_config_validation() {
        let lat = gen_latency();
        let ok = gen_cfg(40.0, BatchingMode::Continuous);
        assert!(simulate_generation(&lat, &ok).is_ok());

        let mut bad = ok;
        bad.arrival_rate_rps = 0.0;
        assert!(matches!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::NonPositiveArrivalRate(_))
        ));
        let mut bad = ok;
        bad.requests = 0;
        assert_eq!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::ZeroRequests)
        );
        let mut bad = ok;
        bad.max_batch = 0;
        assert_eq!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::ZeroMaxBatch)
        );
        let mut bad = ok;
        bad.ttft_slo_s = Some(-1.0);
        assert!(matches!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::InvalidTtftSlo(_))
        ));
        let mut bad = ok;
        bad.model.kv_bytes_per_token = 0;
        assert_eq!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::ZeroKvBytesPerToken)
        );
        // Worst-case request: (100 + 64) * 1000 = 164_000 bytes.
        let mut bad = ok;
        bad.kv_capacity_bytes = 163_999;
        assert_eq!(
            simulate_generation(&lat, &bad),
            Err(ConfigError::KvCapacityTooSmall {
                need: 164_000,
                capacity: 163_999
            })
        );
        // A zero-latency decode curve is rejected at the entry point.
        let degenerate = GenLatencyModel {
            prefill: gen_latency().prefill,
            decode: LatencyModel::from_points(vec![(1, 0.0)]).unwrap(),
        };
        assert!(matches!(
            simulate_generation(&degenerate, &ok),
            Err(ConfigError::NonPositiveGenLatency(_))
        ));
    }

    #[test]
    fn gen_config_error_displays() {
        for (err, needle) in [
            (ConfigError::ZeroTokens, "token counts"),
            (ConfigError::EmptyTokenRange { min: 9, max: 2 }, "[9, 2]"),
            (ConfigError::InvalidTokenMean(0.5), "token mean"),
            (ConfigError::ZeroKvBytesPerToken, "kv_bytes_per_token"),
            (
                ConfigError::KvCapacityTooSmall {
                    need: 10,
                    capacity: 5,
                },
                "worst-case request",
            ),
            (ConfigError::InvalidTtftSlo(-1.0), "ttft_slo_s"),
            (ConfigError::NonPositiveGenLatency(0.0), "prefill/decode"),
        ] {
            let msg = format!("{err}");
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }
}
