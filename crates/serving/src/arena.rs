//! Stamped slot arena for in-flight DES state.
//!
//! The serving engine keeps every in-service batch in a [`SlotArena`]:
//! a flat `Vec` of slots plus a free-list, addressed by [`Handle`]s
//! that pair the slot index with a reuse **stamp**. Freeing a slot
//! bumps its stamp, so a handle captured before the free (for example a
//! `Done` event scheduled for a batch that a crash later aborts) stops
//! resolving the moment the slot is recycled — the classic ABA hazard
//! of index-addressed free-lists, caught by construction instead of by
//! a liveness flag on the payload. Slot payloads are recycled in place
//! (`alloc` hands back the previous occupant's allocation), so steady
//! state runs without heap traffic.

/// Index + reuse stamp addressing one arena slot. A handle is live only
/// while its stamp matches the slot's current stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    /// Slot index.
    pub index: u32,
    /// Reuse stamp the slot carried when this handle was issued.
    pub stamp: u32,
}

#[derive(Debug)]
struct Slot<T> {
    /// Bumped on every free; `Handle`s with older stamps are stale.
    stamp: u32,
    live: bool,
    value: T,
}

/// Free-list slot arena with stamped handles. See the module docs.
#[derive(Debug, Default)]
pub struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T: Default> SlotArena<T> {
    /// An empty arena.
    pub fn new() -> SlotArena<T> {
        SlotArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Allocates a slot, reusing a freed one (and its payload's heap
    /// allocations) when available. The payload is whatever the slot
    /// last held — callers overwrite the fields they use.
    pub fn alloc(&mut self) -> Handle {
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.live = true;
            Handle {
                index,
                stamp: slot.stamp,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena capped at u32 slots");
            self.slots.push(Slot {
                stamp: 0,
                live: true,
                value: T::default(),
            });
            Handle { index, stamp: 0 }
        }
    }

    /// Whether `h` still addresses the allocation it was issued for.
    #[inline]
    pub fn is_live(&self, h: Handle) -> bool {
        let slot = &self.slots[h.index as usize];
        slot.live && slot.stamp == h.stamp
    }

    /// The payload behind a live handle; `None` if the handle is stale.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        self.is_live(h).then(|| &self.slots[h.index as usize].value)
    }

    /// Mutable payload behind a live handle; `None` if stale.
    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        self.is_live(h)
            .then(|| &mut self.slots[h.index as usize].value)
    }

    /// Mutable payload for a handle the caller knows is live (hot-path
    /// accessor; panics on a stale handle rather than returning junk).
    #[inline]
    pub fn slot_mut(&mut self, h: Handle) -> &mut T {
        let slot = &mut self.slots[h.index as usize];
        debug_assert!(slot.live && slot.stamp == h.stamp, "stale arena handle");
        &mut slot.value
    }

    /// Frees a live slot: bumps the stamp (invalidating every
    /// outstanding handle) and pushes it on the free-list. The payload
    /// stays in place for the next `alloc` to recycle.
    pub fn free(&mut self, h: Handle) {
        let slot = &mut self.slots[h.index as usize];
        assert!(
            slot.live && slot.stamp == h.stamp,
            "freeing a stale arena handle"
        );
        slot.live = false;
        slot.stamp = slot.stamp.wrapping_add(1);
        self.free.push(h.index);
    }

    /// Slots currently allocated.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created (high-water mark of concurrency).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles_slots_and_payloads() {
        let mut a: SlotArena<Vec<u32>> = SlotArena::new();
        let h0 = a.alloc();
        a.slot_mut(h0).extend([1, 2, 3]);
        let h1 = a.alloc();
        assert_eq!(a.live_count(), 2);
        assert_ne!(h0.index, h1.index);
        a.free(h0);
        let h2 = a.alloc();
        // Free-list reuse: same slot, payload allocation intact.
        assert_eq!(h2.index, h0.index);
        assert_eq!(a.capacity(), 2);
        let v = a.slot_mut(h2);
        assert_eq!(v.as_slice(), &[1, 2, 3], "payload recycled in place");
        v.clear();
        assert_eq!(a.live_count(), 2);
        let _ = h1;
    }

    #[test]
    fn stale_handles_stop_resolving_after_reuse() {
        // The ABA regression the attempt stamps exist for: an event
        // holding a handle to batch A must not resolve to unrelated
        // batch B after A's slot is freed and reallocated.
        let mut a: SlotArena<u64> = SlotArena::new();
        let ha = a.alloc();
        *a.slot_mut(ha) = 111;
        a.free(ha);
        let hb = a.alloc();
        *a.slot_mut(hb) = 222;
        assert_eq!(hb.index, ha.index, "same slot reused");
        assert_ne!(hb.stamp, ha.stamp, "stamp must advance on free");
        assert!(!a.is_live(ha));
        assert!(a.get(ha).is_none(), "stale handle must not alias");
        assert_eq!(a.get(hb), Some(&222));
    }

    #[test]
    fn freed_but_unreused_handles_are_also_dead() {
        let mut a: SlotArena<u64> = SlotArena::new();
        let h = a.alloc();
        a.free(h);
        assert!(!a.is_live(h));
        assert!(a.get(h).is_none());
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn double_free_panics() {
        let mut a: SlotArena<u64> = SlotArena::new();
        let h = a.alloc();
        a.free(h);
        a.free(h);
    }

    #[test]
    fn stamps_survive_many_reuse_cycles() {
        let mut a: SlotArena<u32> = SlotArena::new();
        let mut old = Vec::new();
        for i in 0..100 {
            let h = a.alloc();
            *a.slot_mut(h) = i;
            old.push(h);
            a.free(h);
        }
        let live = a.alloc();
        for h in old {
            assert!(!a.is_live(h));
        }
        assert!(a.is_live(live));
        assert_eq!(a.capacity(), 1, "single slot cycled throughout");
    }
}
