//! Planet-scale serving: a two-level hierarchy of cells behind a geo
//! load-balancer, with diurnal + flash-crowd traffic, correlated
//! cell-level failure domains, and an autoscaling control loop.
//!
//! TPUv4i's Lesson 5 is that inference accelerators deploy globally
//! across air-cooled datacenters: availability is a property of the
//! *fleet*, and at that scale failures are correlated — a power feed, a
//! cooling plant, or a network spine takes out a whole cell, not one
//! replica. This module composes the existing per-cell machinery
//! ([`crate::des`] fleets with [`crate::faults`] fault plans and
//! failover routers) under a global control plane:
//!
//! - a validated [`TrafficModel`]: diurnal sinusoid × tenant mix (e.g.
//!   the `workloads/zoo` fleet shares) + scheduled [`FlashCrowd`]
//!   spikes, all a pure function of (config, seed);
//! - a [`GlobalConfig`] of N [`Cell`]s, each an existing
//!   [`FleetConfig`] with its own per-server [`FaultPlan`] and failover
//!   router;
//! - a geo load-balancer: weighted-by-believed-capacity routing,
//!   redirect away from detected-down cells and redirect-on-overload,
//!   with a constant cross-cell [`GeoPolicy::redirect_latency_s`]
//!   penalty on redirected requests;
//! - correlated [`CellFault`] domains — whole-cell outage, partial
//!   brownout, network partition — composing with per-server faults so
//!   PR-2 chaos still fires inside healthy cells;
//! - an autoscaler driven by the per-cell [`ServingMetrics`]
//!   utilization signal, with provisioning lag and churn accounting.
//!
//! # Simulation structure
//!
//! Time is divided into control epochs of [`GlobalConfig::epoch_s`]
//! seconds — the cadence at which a real geo load-balancer re-weights
//! and an autoscaler decides. Per epoch the orchestrator (1) draws the
//! epoch's Poisson arrival count from the traffic model, (2) splits it
//! across cells by believed capacity (exact largest-remainder integer
//! split), (3) moves traffic off detected-down or overloaded cells
//! when geo-failover is on, (4) runs one full per-cell DES
//! ([`crate::des::simulate_fleet_samples`]) per cell with that epoch's
//! slice of the cell's materialized fault plan, and (5) feeds the
//! measured utilization into the autoscaler. Queue state does not
//! carry across epochs: requests still queued at an epoch boundary are
//! accounted as `dropped` (conservation over silent loss), and health
//! beliefs inside a cell reset each epoch — a deliberate modeling
//! choice that keeps every epoch an independent, deterministic DES run
//! while the *global* control loop carries the persistent state
//! (server counts, pending scale-ups, cell-down beliefs).
//!
//! Redirected requests merge into the destination cell's Poisson
//! stream; the redirect latency penalty is applied to a
//! deterministically interleaved subset of the destination's
//! completion samples matching the redirected share (exchangeability
//! of Poisson superposition makes the subset choice unbiased).
//!
//! # Invariants
//!
//! Conservation extends across redirects and is debug-asserted and
//! property-tested: globally `arrivals == completed + shed + dropped +
//! failed` (shed includes geo-level no-capacity sheds), and per cell
//! `offered + redirected_in == assigned + redirected_out + lb_shed`
//! with `assigned == completed + shed + dropped + failed`. The whole
//! simulation is a pure function of (config, seed): replicated runs
//! fold under `MultiSeedRunner`, `--jobs` stays byte-identical, and
//! [`simulate_global_recorded`] returns a bit-identical report
//! (telemetry is derived from, never an input to, simulation state).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::des::{
    simulate_fleet_samples, simulate_fleet_samples_reference, ConfigError, FleetConfig,
    ServingReport,
};
use crate::faults::{FaultKind, FaultPlan, ScheduledFault};
use crate::latency::LatencyModel;
use crate::metrics::ServingMetrics;
use crate::stats::LatencyStats;
use tpu_telemetry::{Recorder, SpanPhase, TelemetryEvent, Track};

// ---------------------------------------------------------------------------
// Traffic model
// ---------------------------------------------------------------------------

/// One tenant's contribution to the global traffic mix (e.g. a
/// `workloads/zoo` production app with its fleet share).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStream {
    /// Tenant label (e.g. the zoo app name); reporting only.
    pub name: String,
    /// Relative share of the base rate (> 0; shares are normalized, so
    /// they need not sum to 1).
    pub share: f64,
    /// Phase offset of this tenant's diurnal cycle, seconds — regional
    /// user bases peak at different times of the global day.
    pub phase_s: f64,
}

/// A scheduled flash-crowd spike: the global rate multiplies by
/// `multiplier` over `[at_s, at_s + duration_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Spike start, seconds.
    pub at_s: f64,
    /// Spike duration, seconds.
    pub duration_s: f64,
    /// Rate multiplier while the spike is active (> 0; overlapping
    /// spikes take the largest multiplier, they do not stack).
    pub multiplier: f64,
}

/// Open-loop user-population traffic: a diurnal sinusoid per tenant
/// plus scheduled flash crowds.
///
/// The instantaneous rate at time `t` is
/// `base_rps * Σ_i share_i/Σshare * (1 + A*sin(2π(t+phase_i)/period))
/// * flash(t)`; with no tenants the mix collapses to a single
/// zero-phase sinusoid. `A < 1` keeps the rate strictly positive.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Mean global arrival rate, requests/second.
    pub base_rps: f64,
    /// Diurnal amplitude `A` in [0, 1): peak-to-mean rate swing.
    pub diurnal_amplitude: f64,
    /// Diurnal period (one simulated "day"), seconds.
    pub period_s: f64,
    /// Tenant mix; empty means one anonymous tenant at phase 0.
    pub tenants: Vec<TenantStream>,
    /// Scheduled flash-crowd spikes.
    pub flashes: Vec<FlashCrowd>,
}

impl TrafficModel {
    /// A single-tenant diurnal model with no flash crowds.
    pub fn diurnal(base_rps: f64, amplitude: f64, period_s: f64) -> TrafficModel {
        TrafficModel {
            base_rps,
            diurnal_amplitude: amplitude,
            period_s,
            tenants: Vec::new(),
            flashes: Vec::new(),
        }
    }

    /// Adds a tenant stream (builder style).
    pub fn with_tenant(mut self, name: &str, share: f64, phase_s: f64) -> TrafficModel {
        self.tenants.push(TenantStream {
            name: name.to_owned(),
            share,
            phase_s,
        });
        self
    }

    /// Adds a flash-crowd spike (builder style).
    pub fn with_flash(mut self, at_s: f64, duration_s: f64, multiplier: f64) -> TrafficModel {
        self.flashes.push(FlashCrowd {
            at_s,
            duration_s,
            multiplier,
        });
        self
    }

    /// Checks every knob.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a degenerate base rate, amplitude, period,
    /// tenant share/phase, or flash window/multiplier.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.base_rps.is_finite() || self.base_rps <= 0.0 {
            return Err(ConfigError::InvalidTrafficRate(self.base_rps));
        }
        if !self.diurnal_amplitude.is_finite() || !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(ConfigError::InvalidDiurnalAmplitude(self.diurnal_amplitude));
        }
        if !self.period_s.is_finite() || self.period_s <= 0.0 {
            return Err(ConfigError::InvalidTrafficPeriod(self.period_s));
        }
        for t in &self.tenants {
            if !t.share.is_finite() || t.share <= 0.0 {
                return Err(ConfigError::InvalidTenantShare(t.share));
            }
            if !t.phase_s.is_finite() {
                return Err(ConfigError::InvalidTenantPhase(t.phase_s));
            }
        }
        for fc in &self.flashes {
            if !fc.at_s.is_finite() || fc.at_s < 0.0 {
                return Err(ConfigError::InvalidFlashWindow(fc.at_s));
            }
            if !fc.duration_s.is_finite() || fc.duration_s <= 0.0 {
                return Err(ConfigError::InvalidFlashWindow(fc.duration_s));
            }
            if !fc.multiplier.is_finite() || fc.multiplier <= 0.0 {
                return Err(ConfigError::InvalidFlashMultiplier(fc.multiplier));
            }
        }
        Ok(())
    }

    /// Instantaneous global arrival rate at simulated time `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let two_pi = 2.0 * std::f64::consts::PI;
        let diurnal = |phase: f64| {
            1.0 + self.diurnal_amplitude * (two_pi * (t_s + phase) / self.period_s).sin()
        };
        let shape = if self.tenants.is_empty() {
            diurnal(0.0)
        } else {
            let total: f64 = self.tenants.iter().map(|t| t.share).sum();
            self.tenants
                .iter()
                .map(|t| t.share / total * diurnal(t.phase_s))
                .sum()
        };
        let flash = self
            .flashes
            .iter()
            .filter(|f| t_s >= f.at_s && t_s < f.at_s + f.duration_s)
            .map(|f| f.multiplier)
            .fold(1.0f64, f64::max);
        self.base_rps * shape * flash
    }
}

// ---------------------------------------------------------------------------
// Cells and correlated cell faults
// ---------------------------------------------------------------------------

/// One serving cell: an existing per-cell fleet (with its failover
/// router) plus its fault plan and autoscaler bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Template for this cell's per-epoch DES runs. The orchestrator
    /// overwrites `pool.servers` (autoscaler), and
    /// `pool.base.{arrival_rate_rps, requests, seed}` (traffic split)
    /// every control epoch; every other knob — batching, stragglers,
    /// deadline/shedding/retry policy — applies as configured.
    pub fleet: FleetConfig,
    /// Per-server fault plan over the full horizon (absolute times).
    /// Materialized once against `max_servers` and sliced per epoch, so
    /// PR-2 chaos keeps firing inside the cell while cell-level faults
    /// play out around it.
    pub faults: FaultPlan,
    /// One server's sustainable capacity, rps (e.g. a profiled
    /// operating point) — the geo load-balancer's believed capacity is
    /// `active_servers * capacity_per_server_rps`.
    pub capacity_per_server_rps: f64,
    /// Autoscaler floor (>= 1).
    pub min_servers: usize,
    /// Autoscaler ceiling.
    pub max_servers: usize,
    /// Servers active at t = 0.
    pub initial_servers: usize,
}

impl Cell {
    /// A cell whose initial/min size is the template's pool size and
    /// whose autoscaler may grow it to `max_servers`.
    pub fn new(fleet: FleetConfig, capacity_per_server_rps: f64, max_servers: usize) -> Cell {
        let initial = fleet.pool.servers;
        Cell {
            fleet,
            faults: FaultPlan::none(),
            capacity_per_server_rps,
            min_servers: initial.min(max_servers).max(1),
            max_servers: max_servers.max(initial),
            initial_servers: initial,
        }
    }

    /// Replaces the fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Cell {
        self.faults = faults;
        self
    }

    /// Replaces the autoscaler bounds (builder style).
    pub fn with_bounds(mut self, min: usize, max: usize) -> Cell {
        self.min_servers = min;
        self.max_servers = max;
        self
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.min_servers < 1
            || self.min_servers > self.initial_servers
            || self.initial_servers > self.max_servers
        {
            return Err(ConfigError::InvalidCellServers {
                min: self.min_servers,
                max: self.max_servers,
            });
        }
        if !self.capacity_per_server_rps.is_finite() || self.capacity_per_server_rps <= 0.0 {
            return Err(ConfigError::InvalidCellCapacity(
                self.capacity_per_server_rps,
            ));
        }
        // The orchestrator substitutes rate/requests/servers per epoch;
        // validate the template with benign placeholders so a cell is
        // rejected for its *own* bad knobs, not the placeholders'.
        let mut probe = self.fleet;
        probe.pool.servers = self.max_servers;
        probe.pool.base.arrival_rate_rps = 1.0;
        probe.pool.base.requests = 1;
        probe.validate()?;
        self.faults.validate(self.max_servers)
    }
}

/// What goes wrong with a whole cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFaultKind {
    /// Whole-cell outage (power/cooling): requests routed to the cell
    /// during the window are lost, and the window counts as cell
    /// downtime.
    Outage,
    /// Partial brownout: `fraction` of the cell's active servers crash
    /// for the window (synthesized as per-server crash faults, so the
    /// cell's own failover router reacts to them). The geo balancer
    /// keeps routing — the cell still believes it can serve.
    Brownout {
        /// Fraction of active servers taken down, in (0, 1].
        fraction: f64,
    },
    /// Network partition: the cell is healthy but unreachable —
    /// requests routed to it are lost, yet its hardware counts as up.
    Partition,
}

impl CellFaultKind {
    /// Stable telemetry/display name.
    pub fn name(&self) -> &'static str {
        match self {
            CellFaultKind::Outage => "cell_outage",
            CellFaultKind::Brownout { .. } => "cell_brownout",
            CellFaultKind::Partition => "cell_partition",
        }
    }
}

/// One correlated fault against one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFault {
    /// Index into [`GlobalConfig::cells`].
    pub cell: usize,
    /// Fault start, absolute seconds.
    pub at_s: f64,
    /// Fault duration, seconds.
    pub duration_s: f64,
    /// What happens.
    pub kind: CellFaultKind,
}

// ---------------------------------------------------------------------------
// Control plane: geo policy and autoscaler
// ---------------------------------------------------------------------------

/// Geo load-balancer policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPolicy {
    /// Geo failover on: traffic moves off detected-down cells and
    /// overloaded cells redirect their excess. Off = serve-through:
    /// static capacity-weighted routing that ignores cell health (the
    /// baseline arm of E27, like E22's failover-off arm).
    pub failover: bool,
    /// Constant extra latency paid by a cross-cell redirected request
    /// (WAN round trip), seconds.
    pub redirect_latency_s: f64,
    /// A cell redirects arrivals beyond `overload_threshold ×` its
    /// believed epoch capacity (`active × capacity_per_server × epoch`).
    pub overload_threshold: f64,
    /// Control epochs between a cell fault starting and the geo
    /// balancer believing the cell down (0 = omniscient detection in
    /// the same epoch).
    pub detect_epochs: usize,
}

impl Default for GeoPolicy {
    fn default() -> GeoPolicy {
        GeoPolicy {
            failover: true,
            redirect_latency_s: 0.05,
            overload_threshold: 1.0,
            detect_epochs: 1,
        }
    }
}

impl GeoPolicy {
    fn validate(&self) -> Result<(), ConfigError> {
        if !self.redirect_latency_s.is_finite() || self.redirect_latency_s < 0.0 {
            return Err(ConfigError::InvalidRedirectLatency(self.redirect_latency_s));
        }
        if !self.overload_threshold.is_finite() || self.overload_threshold <= 0.0 {
            return Err(ConfigError::InvalidRedirectThreshold(
                self.overload_threshold,
            ));
        }
        Ok(())
    }
}

/// Target-utilization autoscaler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Master switch; off freezes every cell at its initial size.
    pub enabled: bool,
    /// Utilization the controller steers each cell toward, in (0, 1].
    pub target_utilization: f64,
    /// Aggressiveness: the most servers one decision may add or remove
    /// (0 also freezes the fleet).
    pub step_servers: usize,
    /// Control epochs between a scale-up decision and the capacity
    /// landing (machine allocation + weight loading). Scale-downs apply
    /// at the next epoch — turning capacity off is fast.
    pub provisioning_lag_epochs: usize,
}

impl Default for AutoscalerConfig {
    fn default() -> AutoscalerConfig {
        AutoscalerConfig {
            enabled: true,
            target_utilization: 0.6,
            step_servers: 1,
            provisioning_lag_epochs: 1,
        }
    }
}

impl AutoscalerConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !self.target_utilization.is_finite()
            || self.target_utilization <= 0.0
            || self.target_utilization > 1.0
        {
            return Err(ConfigError::InvalidUtilizationTarget(
                self.target_utilization,
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Global config
// ---------------------------------------------------------------------------

/// The full planet-scale run description.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalConfig {
    /// The serving cells.
    pub cells: Vec<Cell>,
    /// Open-loop global traffic.
    pub traffic: TrafficModel,
    /// Correlated cell-level faults.
    pub cell_faults: Vec<CellFault>,
    /// The autoscaler control loop.
    pub autoscaler: AutoscalerConfig,
    /// The geo load-balancer policy.
    pub geo: GeoPolicy,
    /// Control epoch (load-balancer re-weight + autoscaler decision
    /// cadence), seconds.
    pub epoch_s: f64,
    /// Total simulated time, seconds.
    pub horizon_s: f64,
    /// RNG seed: arrival counts and every per-cell DES derive from it.
    pub seed: u64,
}

impl GlobalConfig {
    /// Checks every knob of every component.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cells.is_empty() {
            return Err(ConfigError::NoCells);
        }
        if !self.epoch_s.is_finite() || self.epoch_s <= 0.0 {
            return Err(ConfigError::InvalidEpoch(self.epoch_s));
        }
        if !self.horizon_s.is_finite() || self.horizon_s <= 0.0 {
            return Err(ConfigError::InvalidHorizon(self.horizon_s));
        }
        self.traffic.validate()?;
        self.autoscaler.validate()?;
        self.geo.validate()?;
        for cell in &self.cells {
            cell.validate()?;
        }
        for f in &self.cell_faults {
            if f.cell >= self.cells.len() {
                return Err(ConfigError::CellFaultOutOfRange {
                    cell: f.cell,
                    cells: self.cells.len(),
                });
            }
            if !f.at_s.is_finite() || f.at_s < 0.0 {
                return Err(ConfigError::InvalidCellFaultWindow(f.at_s));
            }
            if !f.duration_s.is_finite() || f.duration_s <= 0.0 {
                return Err(ConfigError::InvalidCellFaultWindow(f.duration_s));
            }
            if let CellFaultKind::Brownout { fraction } = f.kind {
                if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
                    return Err(ConfigError::InvalidBrownoutFraction(fraction));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One cell's accounting over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Requests the static capacity-weighted split attributed to this
    /// cell.
    pub offered: u64,
    /// Requests redirected *into* this cell from others.
    pub redirected_in: u64,
    /// Requests this cell's traffic redirected *out* (placed elsewhere).
    pub redirected_out: u64,
    /// This cell's traffic the geo balancer could place nowhere
    /// (no global headroom); counted as shed at the geo level.
    pub lb_shed: u64,
    /// Requests actually handed to this cell
    /// (`offered - redirected_out - lb_shed + redirected_in`).
    pub assigned: u64,
    /// Requests that finished service here.
    pub completed: u64,
    /// Completions within the cell's deadline (redirect penalty
    /// included for redirected requests).
    pub good: u64,
    /// Requests permanently shed by the cell's own admission control.
    pub shed: u64,
    /// Requests dropped at epoch-boundary queue drains.
    pub dropped: u64,
    /// Requests permanently lost (in-cell server crashes plus
    /// cell-level outage/partition losses).
    pub failed: u64,
    /// Subset of `failed` destroyed by cell-level faults (the
    /// correlated-failure loss, as opposed to per-server chaos).
    pub infra_lost: u64,
    /// End-to-end latency stats over this cell's completions (redirect
    /// penalty included).
    pub stats: LatencyStats,
    /// Fold of every epoch's DES metrics ([`ServingMetrics::merge_from`]).
    pub metrics: ServingMetrics,
    /// Most servers ever active.
    pub peak_servers: usize,
    /// Servers active in the final epoch.
    pub final_servers: usize,
    /// Autoscaler scale-up decisions taken for this cell.
    pub scale_ups: u64,
    /// Autoscaler scale-down decisions taken for this cell.
    pub scale_downs: u64,
    /// Σ active servers over epochs (capacity-churn integral; divide by
    /// the epoch count for mean fleet size).
    pub server_epochs: u64,
    /// Simulated seconds this cell was in a (whole-cell) outage.
    pub cell_down_s: f64,
}

impl CellReport {
    /// Per-cell conservation: the DES identity over assigned requests,
    /// and the geo identity reconciling redirects in/out.
    pub fn conservation_holds(&self) -> bool {
        self.assigned == self.completed + self.shed + self.dropped + self.failed
            && self.offered + self.redirected_in
                == self.assigned + self.redirected_out + self.lb_shed
    }
}

/// Autoscaler activity folded over cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutoscalerReport {
    /// Scale-up decisions across all cells.
    pub scale_ups: u64,
    /// Scale-down decisions across all cells.
    pub scale_downs: u64,
    /// Servers added by scale-ups (capacity churn, up direction).
    pub servers_added: u64,
    /// Servers removed by scale-downs (capacity churn, down direction).
    pub servers_removed: u64,
    /// Most servers ever active globally (in any single epoch).
    pub peak_servers: usize,
    /// Σ active servers over (cell, epoch) pairs.
    pub server_epochs: u64,
}

/// The result of one planet-scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalReport {
    /// Requests the traffic model offered globally.
    pub arrivals: u64,
    /// Requests that finished service somewhere.
    pub completed: u64,
    /// Completions within deadline (redirect penalty included).
    pub good: u64,
    /// Permanently shed: per-cell admission sheds plus geo-level
    /// no-capacity sheds (`lb_shed`).
    pub shed: u64,
    /// Dropped at epoch-boundary queue drains.
    pub dropped: u64,
    /// Permanently lost to server crashes and cell-level faults.
    pub failed: u64,
    /// Cross-cell redirected requests (`Σ redirected_in == Σ
    /// redirected_out`).
    pub redirected: u64,
    /// Geo-level no-capacity sheds (subset of `shed`).
    pub lb_shed: u64,
    /// p50 shorthand over all completions, seconds.
    pub p50_s: f64,
    /// p99 shorthand over all completions, seconds (the global SLO
    /// metric).
    pub p99_s: f64,
    /// Exact global latency stats (concatenated per-cell samples,
    /// redirect penalties included).
    pub stats: LatencyStats,
    /// Completions per second of horizon.
    pub throughput_rps: f64,
    /// In-deadline completions per second of horizon.
    pub goodput_rps: f64,
    /// Fraction of offered requests served within deadline
    /// (`good / arrivals`; 1.0 for an idle run) — the availability
    /// number a serving SLA is written against.
    pub availability: f64,
    /// The simulated horizon, seconds.
    pub duration_s: f64,
    /// The seed the run used.
    pub seed: u64,
    /// Fold of every cell's metrics (exact counter/histogram merge; the
    /// per-server vectors fold by index across cells).
    pub metrics: ServingMetrics,
    /// Per-cell accounting.
    pub cells: Vec<CellReport>,
    /// Autoscaler activity.
    pub autoscaler: AutoscalerReport,
}

impl GlobalReport {
    /// Global conservation including redirects: the global identity,
    /// the redirect reconciliation, and every per-cell identity.
    pub fn conservation_holds(&self) -> bool {
        let global = self.arrivals == self.completed + self.shed + self.dropped + self.failed;
        let out: u64 = self.cells.iter().map(|c| c.redirected_out).sum();
        let inn: u64 = self.cells.iter().map(|c| c.redirected_in).sum();
        let lb: u64 = self.cells.iter().map(|c| c.lb_shed).sum();
        global
            && out == inn
            && inn == self.redirected
            && lb == self.lb_shed
            && self.good <= self.completed
            && self.cells.iter().all(CellReport::conservation_holds)
    }
}

// ---------------------------------------------------------------------------
// Deterministic helpers
// ---------------------------------------------------------------------------

/// splitmix64: derives statistically independent sub-seeds from the run
/// seed and a stream index (same expander the multi-seed runner uses).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sub-seed for stream `(a, b)` of the run seed.
fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ a.wrapping_mul(0xA076_1D64_78BD_642F) ^ b.wrapping_mul(0xE703_7ED1_A0B4_28DB))
}

/// One Poisson draw. Knuth inversion below mean 30; above that, the
/// normal approximation (error < 1% of σ there, and the epoch counts
/// it feeds are thousands) — both pure functions of the RNG stream.
fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen_range(f64::EPSILON..1.0);
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(f64::EPSILON..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = mean + mean.sqrt() * z;
    if v <= 0.0 {
        0
    } else {
        v.round() as u64
    }
}

/// Exact integer split of `total` proportional to `weights` (largest
/// remainder; ties to the lower index). Returns all zeros when the
/// weights sum to zero — the caller handles the unplaced remainder.
fn split_by_weight(total: u64, weights: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; weights.len()];
    let wsum: f64 = weights.iter().sum();
    if total == 0 || wsum <= 0.0 || !wsum.is_finite() {
        return out;
    }
    let mut rem: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let quota = total as f64 * (w.max(0.0) / wsum);
        let base = quota.floor() as u64;
        out[i] = base;
        assigned += base;
        rem.push((quota - base as f64, i));
    }
    // Largest fractional remainder first; index breaks ties
    // deterministically.
    rem.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = total - assigned;
    for &(_, i) in &rem {
        if left == 0 {
            break;
        }
        out[i] += 1;
        left -= 1;
    }
    out
}

/// Overlap length of `[a0, a1)` and `[b0, b1)`.
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Merges possibly-overlapping `(start, end)` intervals into a sorted
/// disjoint union.
fn interval_union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Bresenham-interleaved membership: of `n` items, `r` are special;
/// item `i` is special iff the running quota `(i+1)*r/n` advances.
/// Spreads the `r` marks uniformly and deterministically.
fn interleaved(i: u64, r: u64, n: u64) -> bool {
    if n == 0 || r == 0 {
        return false;
    }
    ((i + 1) as u128 * r as u128) / n as u128 > (i as u128 * r as u128) / n as u128
}

// ---------------------------------------------------------------------------
// The orchestrator
// ---------------------------------------------------------------------------

/// Per-cell mutable control-plane state.
struct CellState {
    active: usize,
    /// Scale-ups in flight: `(due_epoch, servers)`.
    pending_up: Vec<(usize, usize)>,
    offered: u64,
    red_in: u64,
    red_out: u64,
    lb_shed: u64,
    assigned: u64,
    completed: u64,
    good: u64,
    shed: u64,
    dropped: u64,
    failed: u64,
    infra_lost: u64,
    scale_ups: u64,
    scale_downs: u64,
    servers_added: u64,
    servers_removed: u64,
    peak: usize,
    server_epochs: u64,
    samples: Vec<f64>,
    metrics: ServingMetrics,
}

/// The per-cell telemetry track.
fn cell_track(c: usize) -> Track {
    Track {
        name: "cell",
        index: c as u32,
    }
}

/// The geo load-balancer telemetry track.
const GEO: Track = Track {
    name: "geo",
    index: 0,
};

/// Emits one instant event if a recorder is attached.
fn emit_instant(
    rec: &mut Option<&mut Recorder>,
    t_s: f64,
    track: Track,
    name: &'static str,
    arg: i64,
) {
    if let Some(r) = rec.as_deref_mut() {
        r.record(TelemetryEvent {
            t_s,
            track,
            phase: SpanPhase::Instant,
            name: name.into(),
            id: 0,
            arg,
        });
    }
}

/// Simulates the global fleet: the geo load-balancer, cell faults, and
/// the autoscaler around per-cell DES runs.
///
/// Pure in `(latency, cfg)` — the same inputs reproduce a bit-identical
/// [`GlobalReport`], which is what makes `MultiSeedRunner` envelopes
/// and `--jobs` parallelism sound on top of it.
///
/// # Errors
///
/// [`ConfigError`] for any degenerate knob (see
/// [`GlobalConfig::validate`]).
pub fn simulate_global(
    latency: &LatencyModel,
    cfg: &GlobalConfig,
) -> Result<GlobalReport, ConfigError> {
    cfg.validate()?;
    Ok(run_global(latency, cfg, None, simulate_fleet_samples))
}

/// [`simulate_global`] with every per-cell DES run driven through the
/// reference binary-heap event queue
/// ([`crate::des::simulate_fleet_samples_reference`]) instead of the
/// calendar queue. Differential anchor: byte-identical to
/// [`simulate_global`] for every valid config.
///
/// # Errors
///
/// [`ConfigError`] for any degenerate knob.
pub fn simulate_global_reference(
    latency: &LatencyModel,
    cfg: &GlobalConfig,
) -> Result<GlobalReport, ConfigError> {
    cfg.validate()?;
    Ok(run_global(
        latency,
        cfg,
        None,
        simulate_fleet_samples_reference,
    ))
}

/// [`simulate_global`] with cell-scoped telemetry recorded: cell-down
/// spans (`cell_outage` / `cell_brownout` / `cell_partition`) on each
/// cell's track, per-epoch redirect and geo-shed instants, autoscaler
/// decision instants, and summary counters.
///
/// Telemetry is derived-only: the returned report is bit-identical to
/// [`simulate_global`]'s for the same inputs. Per-request lifecycle
/// tracing stays at the per-cell level
/// ([`crate::des::simulate_fleet_recorded`]); recording every request
/// of a planet-scale run would swamp the flight recorder.
///
/// # Errors
///
/// [`ConfigError`] for any degenerate knob.
pub fn simulate_global_recorded(
    latency: &LatencyModel,
    cfg: &GlobalConfig,
    recorder: &mut Recorder,
) -> Result<GlobalReport, ConfigError> {
    cfg.validate()?;
    let report = run_global(latency, cfg, Some(recorder), simulate_fleet_samples);
    recorder.add_counter("global_arrivals", report.arrivals);
    recorder.add_counter("global_completed", report.completed);
    recorder.add_counter("global_redirected", report.redirected);
    recorder.add_counter("global_lb_shed", report.lb_shed);
    recorder.add_counter("autoscaler_scale_ups", report.autoscaler.scale_ups);
    recorder.add_counter("autoscaler_scale_downs", report.autoscaler.scale_downs);
    Ok(report)
}

/// The per-cell DES entry point [`run_global`] drives: production
/// (calendar queue) or the heap reference, same signature.
type CellSim = fn(
    &LatencyModel,
    &FleetConfig,
    &crate::faults::FaultPlan,
) -> Result<(ServingReport, Vec<f64>), ConfigError>;

fn run_global(
    latency: &LatencyModel,
    cfg: &GlobalConfig,
    mut rec: Option<&mut Recorder>,
    cell_sim: CellSim,
) -> GlobalReport {
    let n_cells = cfg.cells.len();
    let epochs = (cfg.horizon_s / cfg.epoch_s).ceil().max(1.0) as usize;

    // --- Setup: per-cell fault geometry --------------------------------
    // Materialize each cell's own per-server plan once over the whole
    // horizon at max size; epochs slice it.
    let materialized: Vec<Vec<ScheduledFault>> = cfg
        .cells
        .iter()
        .map(|c| c.faults.materialize(c.max_servers))
        .collect();
    // Dark windows (requests destroyed): outage ∪ partition per cell.
    let mut dark: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_cells];
    // Outage-only windows (hardware downtime accounting).
    let mut outage: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_cells];
    // Brownouts stay as raw windows (they synthesize per-server faults).
    let mut brownouts: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); n_cells];
    // Geo belief, epoch-major: believed[e][c] = cell believed down.
    let mut believed = vec![vec![false; n_cells]; epochs];
    for (fi, f) in cfg.cell_faults.iter().enumerate() {
        let end = f.at_s + f.duration_s;
        if let Some(r) = rec.as_deref_mut() {
            // Begin/End pair per fault on the victim cell's track; the
            // stream is balanced by construction.
            for (phase, t_s) in [(SpanPhase::Begin, f.at_s), (SpanPhase::End, end)] {
                r.record(TelemetryEvent {
                    t_s,
                    track: cell_track(f.cell),
                    phase,
                    name: f.kind.name().into(),
                    id: fi as u64,
                    arg: 0,
                });
            }
        }
        match f.kind {
            CellFaultKind::Brownout { fraction } => {
                brownouts[f.cell].push((f.at_s, end, fraction));
                continue;
            }
            CellFaultKind::Outage => {
                outage[f.cell].push((f.at_s, end));
                dark[f.cell].push((f.at_s, end));
            }
            CellFaultKind::Partition => dark[f.cell].push((f.at_s, end)),
        }
        // The balancer believes the cell down `detect_epochs` after the
        // first epoch the fault touches, through the last it touches.
        if f.at_s < cfg.horizon_s {
            let first = (f.at_s / cfg.epoch_s).floor() as usize;
            let last = ((end / cfg.epoch_s).ceil() as usize).saturating_sub(1);
            let from = (first + cfg.geo.detect_epochs).min(epochs);
            for row in believed.iter_mut().take(last + 1).skip(from) {
                row[f.cell] = true;
            }
        }
    }
    let dark: Vec<Vec<(f64, f64)>> = dark.into_iter().map(interval_union).collect();
    let outage: Vec<Vec<(f64, f64)>> = outage.into_iter().map(interval_union).collect();

    // --- Setup: per-cell control-plane state ---------------------------
    let mut st: Vec<CellState> = cfg
        .cells
        .iter()
        .map(|c| CellState {
            active: c.initial_servers,
            pending_up: Vec::new(),
            offered: 0,
            red_in: 0,
            red_out: 0,
            lb_shed: 0,
            assigned: 0,
            completed: 0,
            good: 0,
            shed: 0,
            dropped: 0,
            failed: 0,
            infra_lost: 0,
            scale_ups: 0,
            scale_downs: 0,
            servers_added: 0,
            servers_removed: 0,
            peak: c.initial_servers,
            server_epochs: 0,
            samples: Vec::new(),
            metrics: ServingMetrics::new(c.max_servers),
        })
        .collect();

    let mut arrival_rng = StdRng::seed_from_u64(mix_seed(cfg.seed, 0x7F1E, 0));
    let mut global_samples: Vec<f64> = Vec::new();
    let mut arrivals_total = 0u64;
    let mut peak_global = 0usize;

    // --- The control loop ----------------------------------------------
    for (e, believed_e) in believed.iter().enumerate() {
        let t0 = e as f64 * cfg.epoch_s;
        let t1 = (t0 + cfg.epoch_s).min(cfg.horizon_s);
        let dt = t1 - t0;
        if dt <= 0.0 {
            break;
        }

        // Land scale-ups that are due, then account this epoch's size.
        let mut active_sum = 0usize;
        for (c, s) in st.iter_mut().enumerate() {
            let max = cfg.cells[c].max_servers;
            let mut landed = 0usize;
            s.pending_up.retain(|&(due, k)| {
                if due <= e {
                    landed += k;
                    false
                } else {
                    true
                }
            });
            s.active = (s.active + landed).min(max);
            s.peak = s.peak.max(s.active);
            s.server_epochs += s.active as u64;
            active_sum += s.active;
        }
        peak_global = peak_global.max(active_sum);

        // Offered load this epoch: one Poisson draw at the midpoint
        // rate, split by believed capacity.
        let mean = cfg.traffic.rate_at(t0 + dt / 2.0) * dt;
        let count = poisson(&mut arrival_rng, mean);
        arrivals_total += count;
        let weights: Vec<f64> = st
            .iter()
            .enumerate()
            .map(|(c, s)| s.active as f64 * cfg.cells[c].capacity_per_server_rps)
            .collect();
        let offered = split_by_weight(count, &weights);

        // Geo failover pass: move traffic off believed-down cells and
        // overloaded cells, place the pool into surviving headroom.
        let quota: Vec<u64> = st
            .iter()
            .enumerate()
            .map(|(c, s)| {
                (cfg.geo.overload_threshold
                    * s.active as f64
                    * cfg.cells[c].capacity_per_server_rps
                    * dt)
                    .floor() as u64
            })
            .collect();
        let mut kept = offered.clone();
        let mut moved = vec![0u64; n_cells];
        if cfg.geo.failover {
            for c in 0..n_cells {
                if believed_e[c] {
                    moved[c] = offered[c];
                    kept[c] = 0;
                } else if offered[c] > quota[c] {
                    moved[c] = offered[c] - quota[c];
                    kept[c] = quota[c];
                }
            }
        }
        let pool: u64 = moved.iter().sum();
        let (red_in, red_out, lb_shed) = if pool > 0 {
            let headroom: Vec<u64> = (0..n_cells)
                .map(|c| {
                    if believed_e[c] {
                        0
                    } else {
                        quota[c].saturating_sub(kept[c])
                    }
                })
                .collect();
            let total_headroom: u64 = headroom.iter().sum();
            let placeable = pool.min(total_headroom);
            let head_w: Vec<f64> = headroom.iter().map(|&h| h as f64).collect();
            let red_in = split_by_weight(placeable, &head_w);
            let moved_w: Vec<f64> = moved.iter().map(|&m| m as f64).collect();
            let red_out = split_by_weight(placeable, &moved_w);
            let lb_shed: Vec<u64> = (0..n_cells).map(|c| moved[c] - red_out[c]).collect();
            (red_in, red_out, lb_shed)
        } else {
            (vec![0; n_cells], vec![0; n_cells], vec![0; n_cells])
        };

        // Per-cell epoch: destroy the dark share, run the DES slice,
        // apply redirect penalties, account, autoscale.
        for c in 0..n_cells {
            let cell = &cfg.cells[c];
            let s = &mut st[c];
            let assigned = kept[c] + red_in[c];
            s.offered += offered[c];
            s.red_in += red_in[c];
            s.red_out += red_out[c];
            s.lb_shed += lb_shed[c];
            s.assigned += assigned;
            if red_in[c] > 0 {
                emit_instant(&mut rec, t0, cell_track(c), "redirect_in", red_in[c] as i64);
            }
            if red_out[c] > 0 {
                emit_instant(
                    &mut rec,
                    t0,
                    cell_track(c),
                    "redirect_out",
                    red_out[c] as i64,
                );
            }
            if lb_shed[c] > 0 {
                emit_instant(&mut rec, t0, GEO, "lb_shed", lb_shed[c] as i64);
            }

            // Correlated loss: the fraction of the epoch the cell is
            // dark destroys that share of its assigned requests.
            let dark_s: f64 = dark[c].iter().map(|&(a, b)| overlap(a, b, t0, t1)).sum();
            let dark_frac = (dark_s / dt).clamp(0.0, 1.0);
            let lost = ((assigned as f64 * dark_frac).round() as u64).min(assigned);
            if lost > 0 {
                s.infra_lost += lost;
                s.failed += lost;
                emit_instant(&mut rec, t0, cell_track(c), "infra_lost", lost as i64);
            }
            let n_run = assigned - lost;

            let mut util = 0.0f64;
            if n_run > 0 {
                // This epoch's slice of the cell's fault plan, plus
                // synthesized brownout crashes on the top servers.
                let mut sliced: Vec<ScheduledFault> = Vec::new();
                for f in &materialized[c] {
                    if f.server >= s.active {
                        continue;
                    }
                    let end = f.at_s + f.kind.impaired_s();
                    if f.at_s >= t1 || end <= t0 {
                        continue;
                    }
                    let start = f.at_s.max(t0);
                    let remaining = end - start;
                    if remaining <= 1e-9 {
                        continue;
                    }
                    let kind = match f.kind {
                        FaultKind::Crash { .. } => FaultKind::Crash { mttr_s: remaining },
                        FaultKind::Hang { .. } => FaultKind::Hang {
                            duration_s: remaining,
                        },
                        FaultKind::SlowDegrade { factor, .. } => FaultKind::SlowDegrade {
                            factor,
                            duration_s: remaining,
                        },
                    };
                    sliced.push(ScheduledFault {
                        server: f.server,
                        at_s: start - t0,
                        kind,
                    });
                }
                for &(b0, b1, fraction) in &brownouts[c] {
                    let o = overlap(b0, b1, t0, t1);
                    if o <= 1e-9 {
                        continue;
                    }
                    let k = ((fraction * s.active as f64).ceil() as usize).min(s.active);
                    let start = (b0.max(t0)) - t0;
                    for victim in (s.active - k)..s.active {
                        sliced.push(ScheduledFault {
                            server: victim,
                            at_s: start,
                            kind: FaultKind::Crash { mttr_s: o },
                        });
                    }
                }
                let plan = FaultPlan::scheduled(sliced).with_failover(cell.faults.failover);

                let mut fc = cell.fleet;
                fc.pool.servers = s.active;
                fc.pool.base.requests = n_run as usize;
                fc.pool.base.arrival_rate_rps = n_run as f64 / dt;
                fc.pool.base.seed = mix_seed(cfg.seed, (e as u64) << 16 | 0xCE11, c as u64);
                // The template, slice, and substitutions were validated
                // up front; a failure here is a bug, not bad input.
                let (r, samples) =
                    cell_sim(latency, &fc, &plan).expect("validated per-cell config");
                debug_assert!(r.conservation_holds(), "per-cell DES conservation");

                // Redirected requests pay the WAN penalty: mark a
                // uniformly interleaved subset of completions matching
                // the redirected share of this epoch's run.
                let r_eff = if assigned > 0 {
                    ((red_in[c] as u128 * n_run as u128 + assigned as u128 / 2) / assigned as u128)
                        as u64
                } else {
                    0
                };
                let deadline = cell.fleet.policy.deadline_s;
                for (i, lat) in samples.iter().enumerate() {
                    let adj = if interleaved(i as u64, r_eff, n_run) {
                        lat + cfg.geo.redirect_latency_s
                    } else {
                        *lat
                    };
                    if deadline.is_none_or(|d| adj <= d) {
                        s.good += 1;
                    }
                    s.samples.push(adj);
                    global_samples.push(adj);
                }
                s.completed += r.completed as u64;
                s.shed += r.shed as u64;
                s.dropped += r.dropped as u64;
                s.failed += r.failed as u64;
                s.metrics.merge_from(&r.metrics);
                util = r.server_utilization;
            }

            // Autoscaler: steer toward the utilization target using
            // this epoch's measurement. Decisions count capacity
            // already in flight, scale-ups land after the provisioning
            // lag, scale-downs next epoch.
            let a = &cfg.autoscaler;
            if a.enabled && a.step_servers > 0 && !believed_e[c] {
                let committed = s.active + s.pending_up.iter().map(|&(_, k)| k).sum::<usize>();
                let desired = ((s.active as f64 * util) / a.target_utilization).ceil() as i64;
                let desired = desired.clamp(cell.min_servers as i64, cell.max_servers as i64);
                let step = a.step_servers as i64;
                let delta = (desired - committed as i64).clamp(-step, step);
                if delta > 0 {
                    s.pending_up
                        .push((e + 1 + a.provisioning_lag_epochs, delta as usize));
                    s.scale_ups += 1;
                    s.servers_added += delta as u64;
                    emit_instant(&mut rec, t1, cell_track(c), "autoscale", delta);
                } else if delta < 0 && s.active > cell.min_servers {
                    let down = (-delta as usize).min(s.active - cell.min_servers);
                    if down > 0 {
                        s.active -= down;
                        s.scale_downs += 1;
                        s.servers_removed += down as u64;
                        emit_instant(&mut rec, t1, cell_track(c), "autoscale", -(down as i64));
                    }
                }
            }
        }
    }

    // --- Fold ----------------------------------------------------------
    let mut metrics = ServingMetrics::new(0);
    let mut auto = AutoscalerReport {
        peak_servers: peak_global,
        ..AutoscalerReport::default()
    };
    let mut cells_out: Vec<CellReport> = Vec::with_capacity(n_cells);
    let (mut completed, mut good, mut shed, mut dropped, mut failed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut redirected, mut lb_shed_total) = (0u64, 0u64);
    for (c, s) in st.into_iter().enumerate() {
        metrics.merge_from(&s.metrics);
        completed += s.completed;
        good += s.good;
        shed += s.shed + s.lb_shed;
        dropped += s.dropped;
        failed += s.failed;
        redirected += s.red_in;
        lb_shed_total += s.lb_shed;
        auto.scale_ups += s.scale_ups;
        auto.scale_downs += s.scale_downs;
        auto.servers_added += s.servers_added;
        auto.servers_removed += s.servers_removed;
        auto.server_epochs += s.server_epochs;
        let down_s: f64 = outage[c]
            .iter()
            .map(|&(a, b)| overlap(a, b, 0.0, cfg.horizon_s))
            .sum();
        cells_out.push(CellReport {
            offered: s.offered,
            redirected_in: s.red_in,
            redirected_out: s.red_out,
            lb_shed: s.lb_shed,
            assigned: s.assigned,
            completed: s.completed,
            good: s.good,
            shed: s.shed,
            dropped: s.dropped,
            failed: s.failed,
            infra_lost: s.infra_lost,
            stats: LatencyStats::from_samples(&s.samples),
            metrics: s.metrics,
            peak_servers: s.peak,
            final_servers: s.active,
            scale_ups: s.scale_ups,
            scale_downs: s.scale_downs,
            server_epochs: s.server_epochs,
            cell_down_s: down_s,
        });
    }
    let stats = LatencyStats::from_samples(&global_samples);
    let horizon = cfg.horizon_s.max(1e-12);
    let report = GlobalReport {
        arrivals: arrivals_total,
        completed,
        good,
        shed,
        dropped,
        failed,
        redirected,
        lb_shed: lb_shed_total,
        p50_s: stats.p50_s,
        p99_s: stats.p99_s,
        stats,
        throughput_rps: completed as f64 / horizon,
        goodput_rps: good as f64 / horizon,
        availability: if arrivals_total > 0 {
            good as f64 / arrivals_total as f64
        } else {
            1.0
        },
        duration_s: cfg.horizon_s,
        seed: cfg.seed,
        metrics,
        cells: cells_out,
        autoscaler: auto,
    };
    debug_assert!(
        report.conservation_holds(),
        "global request conservation violated"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{FleetPolicy, PoolConfig, RetryPolicy, ServingConfig};
    use crate::faults::FailoverConfig;

    fn model() -> LatencyModel {
        LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid model")
    }

    fn cell_template(servers: usize) -> FleetConfig {
        let base = ServingConfig {
            arrival_rate_rps: 1.0, // overwritten per epoch
            max_batch: 16,
            batch_timeout_s: 0.002,
            requests: 1, // overwritten per epoch
            seed: 0,     // overwritten per epoch
        };
        FleetConfig::new(PoolConfig { base, servers }).with_policy(FleetPolicy {
            deadline_s: Some(0.05),
            shed_expired: true,
            queue_budget_s: Some(0.04),
            queue_cap: Some(256),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
        })
    }

    fn small_config(seed: u64) -> GlobalConfig {
        let cell = |servers: usize| {
            Cell::new(cell_template(servers), 2500.0, servers * 2)
                .with_faults(FaultPlan::none().with_failover(FailoverConfig::default()))
        };
        GlobalConfig {
            cells: vec![cell(2), cell(3), cell(2)],
            traffic: TrafficModel::diurnal(9000.0, 0.3, 1.0).with_flash(0.4, 0.2, 1.8),
            cell_faults: vec![CellFault {
                cell: 0,
                // Mid-epoch start: part of the epoch goes dark before
                // the balancer's detection lag elapses.
                at_s: 0.33,
                duration_s: 0.32,
                kind: CellFaultKind::Outage,
            }],
            autoscaler: AutoscalerConfig::default(),
            geo: GeoPolicy {
                // WAN redirect penalty well inside the 50 ms deadline.
                redirect_latency_s: 0.01,
                ..GeoPolicy::default()
            },
            epoch_s: 0.1,
            horizon_s: 1.0,
            seed,
        }
    }

    #[test]
    fn traffic_validation_rejects_bad_knobs() {
        let ok = TrafficModel::diurnal(100.0, 0.4, 10.0);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.base_rps = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidTrafficRate(_))
        ));
        let mut bad = ok.clone();
        bad.diurnal_amplitude = 1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidDiurnalAmplitude(_))
        ));
        let mut bad = ok.clone();
        bad.period_s = -1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidTrafficPeriod(_))
        ));
        let bad = ok.clone().with_tenant("t", 0.0, 0.0);
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidTenantShare(_))
        ));
        let bad = ok.clone().with_flash(0.0, 1.0, 0.0);
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidFlashMultiplier(_))
        ));
        let bad = ok.with_flash(-1.0, 1.0, 2.0);
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidFlashWindow(_))
        ));
    }

    #[test]
    fn traffic_rate_shape() {
        let tm = TrafficModel::diurnal(1000.0, 0.5, 100.0).with_flash(200.0, 10.0, 3.0);
        // Peak of the sinusoid: t + 0 at quarter period.
        assert!((tm.rate_at(25.0) - 1500.0).abs() < 1e-6);
        // Trough at three quarters.
        assert!((tm.rate_at(75.0) - 500.0).abs() < 1e-6);
        // Flash multiplies the diurnal rate inside its window only.
        assert!((tm.rate_at(205.0) - 3.0 * tm.rate_at(105.0)).abs() < 1e-6);
        assert!(tm.rate_at(211.0) < 1500.0);
        // Tenant phases shift, never negate: rate stays positive.
        let mix = TrafficModel::diurnal(1000.0, 0.9, 100.0)
            .with_tenant("a", 2.0, 0.0)
            .with_tenant("b", 1.0, 50.0);
        for i in 0..200 {
            assert!(mix.rate_at(i as f64) > 0.0);
        }
    }

    #[test]
    fn split_by_weight_is_exact() {
        for total in [0u64, 1, 7, 100, 12345] {
            let w = [3.0, 1.0, 0.0, 2.5];
            let parts = split_by_weight(total, &w);
            assert_eq!(parts.iter().sum::<u64>(), total, "total {total}");
            assert_eq!(parts[2], 0, "zero weight gets nothing");
        }
        // Zero weights: nothing placed (caller sheds the remainder).
        assert_eq!(split_by_weight(10, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn interleave_marks_exactly_r_of_n() {
        for (r, n) in [(0u64, 10u64), (3, 10), (10, 10), (7, 23)] {
            let marked = (0..n).filter(|&i| interleaved(i, r, n)).count() as u64;
            assert_eq!(marked, r, "r={r} n={n}");
        }
    }

    #[test]
    fn global_run_conserves_and_reconciles_redirects() {
        let r = simulate_global(&model(), &small_config(11)).expect("valid config");
        assert!(r.conservation_holds());
        assert!(r.arrivals > 0);
        assert!(r.completed > 0);
        // The outage destroyed traffic before detection.
        assert!(r.cells[0].infra_lost > 0);
        // Detection moved traffic: someone received redirects.
        assert!(r.redirected > 0);
        assert_eq!(
            r.redirected,
            r.cells.iter().map(|c| c.redirected_out).sum::<u64>()
        );
        // Good never exceeds completed; availability in [0, 1].
        assert!(r.good <= r.completed);
        assert!((0.0..=1.0).contains(&r.availability));
    }

    #[test]
    fn determinism_pure_in_config_and_seed() {
        let a = simulate_global(&model(), &small_config(7)).expect("valid");
        let b = simulate_global(&model(), &small_config(7)).expect("valid");
        assert_eq!(a, b);
        let c = simulate_global(&model(), &small_config(8)).expect("valid");
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn recorded_report_is_bit_identical_and_balanced() {
        let cfg = small_config(13);
        let plain = simulate_global(&model(), &cfg).expect("valid");
        let mut rec = Recorder::new();
        let traced = simulate_global_recorded(&model(), &cfg, &mut rec).expect("valid");
        assert_eq!(plain, traced);
        assert!(rec.counter("global_arrivals") == plain.arrivals);
        let events: Vec<_> = rec.events().cloned().collect();
        tpu_telemetry::span_balance(&events).expect("balanced cell spans");
        // Cell-down span present on the faulted cell's track.
        assert!(events
            .iter()
            .any(|ev| ev.track == cell_track(0) && ev.name == "cell_outage"));
    }

    #[test]
    fn failover_beats_serve_through_across_cell_loss() {
        let mut on = small_config(21);
        on.geo.failover = true;
        let mut off = on.clone();
        off.geo.failover = false;
        let r_on = simulate_global(&model(), &on).expect("valid");
        let r_off = simulate_global(&model(), &off).expect("valid");
        assert!(r_on.conservation_holds() && r_off.conservation_holds());
        // Geo failover routes around the detected outage: strictly
        // fewer correlated losses and higher goodput.
        assert!(r_on.cells[0].infra_lost < r_off.cells[0].infra_lost);
        assert!(r_on.good > r_off.good);
        // Serve-through never redirects.
        assert_eq!(r_off.redirected, 0);
    }

    #[test]
    fn autoscaler_tracks_load_within_bounds() {
        let mut cfg = small_config(5);
        cfg.cell_faults.clear();
        cfg.autoscaler = AutoscalerConfig {
            enabled: true,
            target_utilization: 0.5,
            step_servers: 2,
            provisioning_lag_epochs: 1,
        };
        // Overload hard so the autoscaler must grow.
        cfg.traffic.base_rps = 30_000.0;
        let r = simulate_global(&model(), &cfg).expect("valid");
        assert!(r.conservation_holds());
        assert!(r.autoscaler.scale_ups > 0);
        for (c, cr) in r.cells.iter().enumerate() {
            assert!(
                cr.peak_servers <= cfg.cells[c].max_servers,
                "cell {c} peaked at {} > max {}",
                cr.peak_servers,
                cfg.cells[c].max_servers
            );
            assert!(cr.final_servers >= cfg.cells[c].min_servers);
        }
        // Frozen autoscaler never moves.
        cfg.autoscaler.enabled = false;
        let frozen = simulate_global(&model(), &cfg).expect("valid");
        assert_eq!(frozen.autoscaler.scale_ups, 0);
        assert_eq!(frozen.autoscaler.scale_downs, 0);
        for (c, cr) in frozen.cells.iter().enumerate() {
            assert_eq!(cr.peak_servers, cfg.cells[c].initial_servers);
        }
    }

    #[test]
    fn brownout_composes_with_per_server_chaos() {
        let mut cfg = small_config(3);
        cfg.cell_faults = vec![CellFault {
            cell: 1,
            at_s: 0.2,
            duration_s: 0.3,
            kind: CellFaultKind::Brownout { fraction: 0.5 },
        }];
        let r = simulate_global(&model(), &cfg).expect("valid");
        assert!(r.conservation_holds());
        // Brownout synthesizes real crashes inside the cell: its DES
        // metrics saw injected failures, and the geo level lost nothing
        // (the cell stayed reachable).
        assert!(r.cells[1].metrics.failures_injected.get() > 0);
        assert_eq!(r.cells[1].infra_lost, 0);
        assert_eq!(r.cells[1].cell_down_s, 0.0);
    }

    #[test]
    fn global_metrics_are_exact_cell_folds() {
        let r = simulate_global(&model(), &small_config(17)).expect("valid");
        let mut folded = ServingMetrics::new(0);
        for c in &r.cells {
            folded.merge_from(&c.metrics);
        }
        assert_eq!(folded, r.metrics);
        // DES-level arrivals equal the globally assigned-and-run share.
        let run_total: u64 = r.cells.iter().map(|c| c.assigned - c.infra_lost).sum();
        assert_eq!(folded.arrivals.get(), run_total);
    }

    #[test]
    fn config_validation_rejects_degenerates() {
        let ok = small_config(1);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.cells.clear();
        assert!(matches!(bad.validate(), Err(ConfigError::NoCells)));
        let mut bad = ok.clone();
        bad.epoch_s = 0.0;
        assert!(matches!(bad.validate(), Err(ConfigError::InvalidEpoch(_))));
        let mut bad = ok.clone();
        bad.horizon_s = f64::NAN;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidHorizon(_))
        ));
        let mut bad = ok.clone();
        bad.cell_faults[0].cell = 99;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::CellFaultOutOfRange { cell: 99, cells: 3 })
        ));
        let mut bad = ok.clone();
        bad.cell_faults[0].duration_s = -1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidCellFaultWindow(_))
        ));
        let mut bad = ok.clone();
        bad.cell_faults[0].kind = CellFaultKind::Brownout { fraction: 1.5 };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidBrownoutFraction(_))
        ));
        let mut bad = ok.clone();
        bad.cells[0].min_servers = 0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidCellServers { .. })
        ));
        let mut bad = ok.clone();
        bad.cells[0].capacity_per_server_rps = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidCellCapacity(_))
        ));
        let mut bad = ok.clone();
        bad.autoscaler.target_utilization = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidUtilizationTarget(_))
        ));
        let mut bad = ok;
        bad.geo.overload_threshold = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidRedirectThreshold(_))
        ));
    }

    #[test]
    fn partition_loses_requests_but_not_uptime() {
        let mut cfg = small_config(9);
        cfg.cell_faults = vec![CellFault {
            cell: 2,
            at_s: 0.2,
            duration_s: 0.3,
            kind: CellFaultKind::Partition,
        }];
        let r = simulate_global(&model(), &cfg).expect("valid");
        assert!(r.conservation_holds());
        assert!(r.cells[2].infra_lost > 0);
        // Partition is reachability, not hardware downtime.
        assert_eq!(r.cells[2].cell_down_s, 0.0);
    }
}
