//! Exact latency statistics.

/// Summary statistics over a set of request latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes exact percentiles with the nearest-rank method, using
    /// O(n) selection instead of a full sort (this runs once per DES
    /// replication, and a 20k-sample sort was the single hottest spot
    /// in sweep profiles). Each percentile is the exact element a sorted
    /// array would hold at that rank.
    ///
    /// Returns all-zero stats for an empty input.
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                n: 0,
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut scratch = samples.to_vec();
        let n = scratch.len();
        let mut pick = |q: f64| {
            let idx = tpu_numerics::stats::nearest_rank_index(q, n);
            let (_, v, _) = scratch.select_nth_unstable_by(idx, |a, b| a.total_cmp(b));
            *v
        };
        // Ascending quantile order: each selection partitions the
        // scratch, so later (higher) selections scan a shrinking tail.
        let p50_s = pick(0.50);
        let p95_s = pick(0.95);
        let p99_s = pick(0.99);
        LatencyStats {
            n,
            mean_s: samples.iter().sum::<f64>() / n as f64,
            p50_s,
            p95_s,
            p99_s,
            max_s: samples
                .iter()
                .copied()
                .max_by(|a, b| a.total_cmp(b))
                .expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn known_percentiles() {
        // 1..=100 in some order.
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        v.reverse();
        let s = LatencyStats::from_samples(&v);
        assert_eq!(s.n, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[0.42]);
        assert_eq!(s.p50_s, 0.42);
        assert_eq!(s.p99_s, 0.42);
        assert_eq!(s.max_s, 0.42);
    }

    #[test]
    fn percentiles_are_monotone() {
        let v: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let s = LatencyStats::from_samples(&v);
        assert!(s.p50_s <= s.p95_s);
        assert!(s.p95_s <= s.p99_s);
        assert!(s.p99_s <= s.max_s);
    }
}
