//! Exact latency statistics.

/// Summary statistics over a set of request latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes exact percentiles with the nearest-rank method, using
    /// O(n) selection instead of a full sort (this runs once per DES
    /// replication, and a 20k-sample sort was the single hottest spot
    /// in sweep profiles). Each percentile is the exact element a sorted
    /// array would hold at that rank.
    ///
    /// Returns all-zero stats for an empty input.
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                n: 0,
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        let n = samples.len();
        // One fused pass for sign check, mean accumulation, and max:
        // the sum accumulates in slice order (bit-identical to a
        // separate `iter().sum()`), and `total_cmp == Greater` keeps
        // the first maximal element — equal under `total_cmp` means
        // identical bits, so the result matches `max_by` exactly.
        let mut sum = 0.0f64;
        let mut max_s = f64::NEG_INFINITY;
        let mut all_nonneg = true;
        for s in samples {
            sum += s;
            if s.total_cmp(&max_s) == std::cmp::Ordering::Greater {
                max_s = *s;
            }
            all_nonneg &= s.to_bits() >> 63 == 0;
        }
        // For non-negative samples (every latency the engines record),
        // `total_cmp` coincides exactly with the unsigned order of the
        // IEEE-754 bit patterns, so selection can run on `u64` keys —
        // no comparator closure, branch-cheap integer partitioning.
        // The percentiles picked are bit-identical to the f64 path's.
        let (p50_s, p95_s, p99_s) = if all_nonneg {
            let mut scratch: Vec<u64> = samples.iter().map(|s| s.to_bits()).collect();
            let mut pick = |q: f64| {
                let idx = tpu_numerics::stats::nearest_rank_index(q, n);
                let (_, v, _) = scratch.select_nth_unstable(idx);
                f64::from_bits(*v)
            };
            // Ascending quantile order: each selection partitions the
            // scratch, so later (higher) selections scan a shrinking
            // tail.
            (pick(0.50), pick(0.95), pick(0.99))
        } else {
            let mut scratch = samples.to_vec();
            let mut pick = |q: f64| {
                let idx = tpu_numerics::stats::nearest_rank_index(q, n);
                let (_, v, _) = scratch.select_nth_unstable_by(idx, |a, b| a.total_cmp(b));
                *v
            };
            (pick(0.50), pick(0.95), pick(0.99))
        };
        LatencyStats {
            n,
            mean_s: sum / n as f64,
            p50_s,
            p95_s,
            p99_s,
            max_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn known_percentiles() {
        // 1..=100 in some order.
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        v.reverse();
        let s = LatencyStats::from_samples(&v);
        assert_eq!(s.n, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[0.42]);
        assert_eq!(s.p50_s, 0.42);
        assert_eq!(s.p99_s, 0.42);
        assert_eq!(s.max_s, 0.42);
    }

    #[test]
    fn negative_samples_use_the_comparator_path() {
        // Mixed-sign inputs must fall back to `total_cmp` selection;
        // both paths agree on the all-positive suffix.
        let v = [-3.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let s = LatencyStats::from_samples(&v);
        assert_eq!(s.p50_s, 2.0);
        assert_eq!(s.max_s, 7.0);
        let pos: Vec<f64> = v.iter().map(|x| x + 3.0).collect();
        let sp = LatencyStats::from_samples(&pos);
        assert_eq!(sp.p50_s, 5.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let v: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let s = LatencyStats::from_samples(&v);
        assert!(s.p50_s <= s.p95_s);
        assert!(s.p95_s <= s.p99_s);
        assert!(s.p99_s <= s.max_s);
    }
}
