//! Property and trace tests for the autoregressive decode loop: per-token
//! conservation, KV-residency capacity, the continuous ≡ static
//! equivalence at single-token outputs, and the derived-only telemetry
//! contract (recorded ≡ unrecorded, bit for bit).

use proptest::prelude::*;

use tpu_serving::des::{
    simulate_generation, simulate_generation_recorded, BatchingMode, GenConfig,
};
use tpu_serving::genmodel::{GenerationModel, TokenDistribution};
use tpu_serving::latency::{GenLatencyModel, LatencyModel};
use tpu_telemetry::{span_balance, Recorder};

fn gen_latency() -> GenLatencyModel {
    GenLatencyModel {
        // ~1 ms + 9 us/token prefill (compute-bound).
        prefill: LatencyModel::from_points(vec![(1, 0.001), (1000, 0.01)]).unwrap(),
        // ~3 ms decode step, nearly flat in batch (weight-streaming).
        decode: LatencyModel::from_points(vec![(1, 0.003), (32, 0.004)]).unwrap(),
    }
}

/// A random-but-valid generation config. `kv_mult` scales the capacity
/// in units of the worst-case request footprint, so small values force
/// KV-deferral pressure while staying admissible.
#[allow(clippy::too_many_arguments)]
fn build_cfg(
    rate: f64,
    requests: usize,
    seed: u64,
    mode: BatchingMode,
    max_batch: u64,
    prompt_max: u64,
    output_mean: f64,
    output_max: u64,
    kv_mult: u64,
) -> GenConfig {
    let model = GenerationModel {
        prompt: TokenDistribution::Uniform {
            min: 1,
            max: prompt_max,
        },
        output: TokenDistribution::Geometric {
            mean: output_mean,
            max: output_max,
        },
        kv_bytes_per_token: 4096,
    };
    GenConfig {
        arrival_rate_rps: rate,
        requests,
        seed,
        mode,
        max_batch,
        kv_capacity_bytes: model.peak_request_kv_bytes() * kv_mult,
        ttft_slo_s: Some(0.25),
        model,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-token conservation, KV capacity, and report sanity hold for
    /// any valid configuration in either batching mode.
    #[test]
    fn decode_loop_invariants(
        rate in 5.0f64..400.0,
        requests in 100usize..400,
        seed in any::<u64>(),
        continuous in any::<bool>(),
        max_batch in 1u64..24,
        prompt_max in 8u64..512,
        output_mean in 1.0f64..48.0,
        output_max in 16u64..128,
        kv_mult in 1u64..6,
    ) {
        let mode = if continuous { BatchingMode::Continuous } else { BatchingMode::Static };
        let cfg = build_cfg(
            rate, requests, seed, mode, max_batch, prompt_max, output_mean, output_max, kv_mult,
        );
        let r = simulate_generation(&gen_latency(), &cfg).expect("generated config is valid");
        // The decode loop defers, never sheds: everything completes and
        // every token is accounted on both sides.
        prop_assert_eq!(r.completed, requests);
        prop_assert!(r.conservation_holds());
        prop_assert_eq!(r.metrics.decode_steps.get(), r.metrics.decode_batch.count());
        // KV residency never exceeds the configured capacity.
        prop_assert!(r.kv_peak_bytes <= cfg.kv_capacity_bytes);
        prop_assert!(r.kv_peak_bytes > 0);
        // The batch cap is respected at every observed step.
        prop_assert!(r.metrics.decode_batch.max() <= max_batch as f64 + 1e-9);
        // Percentile ordering and rate sanity.
        prop_assert!(r.p50_ttft_s <= r.p99_ttft_s + 1e-12);
        prop_assert!(r.p99_ttft_s <= r.ttft_stats.max_s + 1e-12);
        prop_assert!(r.goodput_rps <= r.throughput_rps + 1e-9);
        prop_assert!(r.tokens_per_s > 0.0);
        // TTFT can never beat one prefill + one decode step.
        let floor = gen_latency().prefill_s(1) + gen_latency().decode_step_s(1);
        prop_assert!(r.ttft_stats.p50_s >= floor - 1e-12);
    }

    /// With every output fixed at a single token, each batch member
    /// retires at its first step boundary, so static and continuous
    /// batching make identical decisions: the reports must be equal.
    #[test]
    fn continuous_equals_static_at_single_token_outputs(
        rate in 5.0f64..400.0,
        requests in 100usize..300,
        seed in any::<u64>(),
        max_batch in 1u64..24,
        prompt_max in 8u64..512,
    ) {
        let mut stat = build_cfg(
            rate, requests, seed, BatchingMode::Static, max_batch, prompt_max, 8.0, 64, 4,
        );
        stat.model.output = TokenDistribution::Fixed(1);
        stat.kv_capacity_bytes = stat.model.peak_request_kv_bytes() * 4;
        let mut cont = stat;
        cont.mode = BatchingMode::Continuous;
        let a = simulate_generation(&gen_latency(), &stat).expect("valid");
        let b = simulate_generation(&gen_latency(), &cont).expect("valid");
        prop_assert_eq!(a, b);
    }

    /// Recording telemetry never perturbs the simulation: the recorded
    /// report is bit-identical to the unrecorded one, and the event
    /// stream itself reconciles exactly with the metrics.
    #[test]
    fn recorded_run_is_bit_identical_and_reconciles(
        rate in 20.0f64..300.0,
        requests in 100usize..300,
        seed in any::<u64>(),
        continuous in any::<bool>(),
        kv_mult in 1u64..4,
    ) {
        let mode = if continuous { BatchingMode::Continuous } else { BatchingMode::Static };
        let cfg = build_cfg(rate, requests, seed, mode, 12, 256, 24.0, 96, kv_mult);
        let lat = gen_latency();
        let plain = simulate_generation(&lat, &cfg).expect("valid");
        let mut rec = Recorder::with_capacity(1 << 20);
        let recorded = simulate_generation_recorded(&lat, &cfg, &mut rec).expect("valid");
        prop_assert_eq!(&plain, &recorded);
        prop_assert_eq!(rec.dropped(), 0);
        // Instants reconcile with the metrics, one for one.
        prop_assert_eq!(rec.counter("arrive"), requests as u64);
        prop_assert_eq!(rec.counter("complete"), recorded.completed as u64);
        prop_assert_eq!(rec.counter("first_token"), recorded.completed as u64);
        prop_assert_eq!(rec.counter("kv_defer"), recorded.metrics.kv_deferrals.get());
        prop_assert_eq!(rec.counter("decode_step"), recorded.metrics.decode_steps.get());
        prop_assert_eq!(
            rec.counter("events_processed"),
            recorded.metrics.events_processed.get()
        );
        // Every KV residency span opened exactly once and closed.
        prop_assert_eq!(rec.counter("resident.begin"), requests as u64);
        prop_assert_eq!(rec.counter("resident.end"), requests as u64);
        let events: Vec<_> = rec.events().cloned().collect();
        let balanced = span_balance(&events).expect("resident spans balance");
        prop_assert_eq!(balanced, requests);
        // Timestamps are monotone non-decreasing.
        prop_assert!(events.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    }
}

/// Under sustained overload with variable-length outputs, continuous
/// batching strictly dominates static on goodput and p99 TTFT (the
/// deterministic seed pins the comparison; E25 sweeps it with CIs).
#[test]
fn continuous_dominates_static_under_overload() {
    let lat = gen_latency();
    let stat = build_cfg(80.0, 500, 17, BatchingMode::Static, 12, 256, 24.0, 96, 4);
    let mut cont = stat;
    cont.mode = BatchingMode::Continuous;
    let a = simulate_generation(&lat, &stat).expect("valid");
    let b = simulate_generation(&lat, &cont).expect("valid");
    assert!(a.conservation_holds() && b.conservation_holds());
    assert!(
        b.goodput_rps > a.goodput_rps,
        "continuous {} vs static {}",
        b.goodput_rps,
        a.goodput_rps
    );
    assert!(
        b.p99_ttft_s < a.p99_ttft_s,
        "continuous {} vs static {}",
        b.p99_ttft_s,
        a.p99_ttft_s
    );
}
