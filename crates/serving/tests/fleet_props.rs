//! Property tests for the planet-scale fleet layer: conservation
//! across redirects under random correlated cell faults, autoscaler
//! bounds, and the derived-only telemetry contract — for *any* valid
//! global configuration.

use proptest::prelude::*;

use tpu_serving::des::{FleetConfig, FleetPolicy, PoolConfig, RetryPolicy, ServingConfig};
use tpu_serving::fleet::{
    simulate_global, simulate_global_recorded, AutoscalerConfig, Cell, CellFault, CellFaultKind,
    GeoPolicy, GlobalConfig, TrafficModel,
};
use tpu_serving::latency::LatencyModel;
use tpu_telemetry::Recorder;

fn model() -> LatencyModel {
    LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).unwrap()
}

fn cell_template(servers: usize) -> FleetConfig {
    let base = ServingConfig {
        arrival_rate_rps: 1.0,
        max_batch: 16,
        batch_timeout_s: 0.002,
        requests: 1,
        seed: 0,
    };
    FleetConfig::new(PoolConfig { base, servers }).with_policy(FleetPolicy {
        deadline_s: Some(0.05),
        shed_expired: true,
        queue_budget_s: Some(0.04),
        queue_cap: Some(256),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_s: 0.002,
            backoff_mult: 2.0,
        },
    })
}

/// A random-but-valid global config: 2–4 cells, a diurnal + flash
/// traffic mix, and 0–3 random correlated cell faults of every kind.
fn arb_config() -> impl Strategy<Value = GlobalConfig> {
    let cells = prop::collection::vec(2usize..=4, 2..=4);
    let faults = prop::collection::vec(
        (0usize..4, 0.0f64..0.8, 0.05f64..0.4, 0usize..3, 0.2f64..1.0),
        0..=3,
    );
    (
        cells,
        faults,
        1_000.0f64..12_000.0,
        0.0f64..0.6,
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(sizes, rawf, rate, amp, seed, failover, scaling)| {
            let n = sizes.len();
            let cells: Vec<Cell> = sizes
                .iter()
                .map(|&s| Cell::new(cell_template(s), 2500.0, s * 2))
                .collect();
            let cell_faults = rawf
                .into_iter()
                .map(|(c, at, dur, kind, frac)| CellFault {
                    cell: c % n,
                    at_s: at,
                    duration_s: dur,
                    kind: match kind {
                        0 => CellFaultKind::Outage,
                        1 => CellFaultKind::Partition,
                        _ => CellFaultKind::Brownout { fraction: frac },
                    },
                })
                .collect();
            GlobalConfig {
                cells,
                traffic: TrafficModel::diurnal(rate, amp, 1.0).with_flash(0.4, 0.2, 1.7),
                cell_faults,
                autoscaler: AutoscalerConfig {
                    enabled: scaling,
                    target_utilization: 0.6,
                    step_servers: 2,
                    provisioning_lag_epochs: 1,
                },
                geo: GeoPolicy {
                    failover,
                    redirect_latency_s: 0.01,
                    overload_threshold: 1.0,
                    detect_epochs: 1,
                },
                epoch_s: 0.1,
                horizon_s: 0.8,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation holds globally and per cell — with redirects
    /// reconciled — for any mix of correlated cell faults, failover
    /// on or off, autoscaling on or off.
    #[test]
    fn global_conservation_under_random_cell_faults(cfg in arb_config()) {
        let r = simulate_global(&model(), &cfg).expect("generated configs are valid");
        prop_assert!(r.conservation_holds());
        // The identity, spelled out.
        prop_assert_eq!(
            r.arrivals,
            r.completed + r.shed + r.dropped + r.failed
        );
        let out: u64 = r.cells.iter().map(|c| c.redirected_out).sum();
        let inn: u64 = r.cells.iter().map(|c| c.redirected_in).sum();
        prop_assert_eq!(out, inn);
        // Serve-through never redirects or geo-sheds.
        if !cfg.geo.failover {
            prop_assert_eq!(r.redirected, 0);
            prop_assert_eq!(r.lb_shed, 0);
        }
        prop_assert!(r.good <= r.completed);
        prop_assert!((0.0..=1.0).contains(&r.availability));
    }

    /// The autoscaler never exceeds any cell's configured maximum and
    /// never drops below its minimum, whatever the traffic does.
    #[test]
    fn autoscaler_respects_bounds(cfg in arb_config()) {
        let r = simulate_global(&model(), &cfg).expect("valid");
        for (c, cr) in r.cells.iter().enumerate() {
            prop_assert!(cr.peak_servers <= cfg.cells[c].max_servers);
            prop_assert!(cr.final_servers >= cfg.cells[c].min_servers);
            prop_assert!(cr.final_servers <= cfg.cells[c].max_servers);
        }
        if !cfg.autoscaler.enabled {
            prop_assert_eq!(r.autoscaler.scale_ups, 0);
            prop_assert_eq!(r.autoscaler.scale_downs, 0);
        }
    }

    /// Recording telemetry never changes the simulation: the recorded
    /// report is bit-identical to the unrecorded one.
    #[test]
    fn recorded_equals_unrecorded(cfg in arb_config()) {
        let plain = simulate_global(&model(), &cfg).expect("valid");
        let mut rec = Recorder::new();
        let traced = simulate_global_recorded(&model(), &cfg, &mut rec).expect("valid");
        prop_assert_eq!(plain, traced);
    }
}
