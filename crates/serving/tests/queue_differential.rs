//! Differential battery for the calendar event queue.
//!
//! Every engine runs the same random valid configs twice — once on the
//! production calendar queue, once on the binary-heap reference (for
//! the decode loop, additionally the production two-source select) —
//! and the reports must match **byte for byte**: same `PartialEq`
//! reports, same telemetry event streams down to timestamp bits, same
//! counters. The pair counts at the top sum to at least 256 (config,
//! seed) pairs across the fleet, generation, and global engines.
//!
//! Config generation is deliberately adversarial for a bucket queue:
//! arrival rates span ~2 decades (bucket widths resolve from the mean
//! interval, so extreme rates stress overflow migration and cursor
//! jumps), retries push events far past the arrival window, and MTBF
//! fault streams interleave probe ticks at yet another timescale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpu_serving::faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};
use tpu_serving::fleet::{
    simulate_global, simulate_global_reference, AutoscalerConfig, Cell, CellFault, CellFaultKind,
    GeoPolicy, GlobalConfig, TrafficModel,
};
use tpu_serving::genmodel::{GenerationModel, TokenDistribution};
use tpu_serving::latency::{GenLatencyModel, LatencyModel};
use tpu_serving::{
    simulate_fleet_recorded, simulate_fleet_recorded_reference, simulate_fleet_with_faults,
    simulate_fleet_with_faults_reference, simulate_generation, simulate_generation_calendar,
    simulate_generation_recorded, simulate_generation_recorded_reference,
    simulate_generation_reference, BatchingMode, FleetConfig, FleetPolicy, GenConfig, PoolConfig,
    RetryPolicy, ServingConfig, Stragglers,
};
use tpu_telemetry::Recorder;

/// (config, seed) pairs per engine; the sum must stay >= 256.
const FLEET_PAIRS: usize = 120;
const GEN_PAIRS: usize = 100;
const GLOBAL_PAIRS: usize = 24;
const RECORDED_PAIRS: usize = 16;

#[test]
fn pair_budget_is_at_least_256() {
    const { assert!(FLEET_PAIRS + GEN_PAIRS + GLOBAL_PAIRS + RECORDED_PAIRS >= 256) }
}

/// A random latency curve: ~0.5–2 ms base, clearly batch-sensitive.
fn random_latency(rng: &mut StdRng) -> LatencyModel {
    let base = rng.gen_range(0.0005..0.002);
    let top = rng.gen_range(0.004..0.012);
    LatencyModel::from_points(vec![(1, base), (128, top)]).expect("monotone points")
}

/// A random-but-valid chaos fleet: rates across two decades, optional
/// deadlines/shedding/caps/retries/stragglers, scheduled + MTBF faults,
/// failover on or off. Everything `FleetConfig::validate` admits.
fn random_fleet(rng: &mut StdRng) -> (FleetConfig, FaultPlan) {
    let servers = rng.gen_range(1usize..7);
    let base = ServingConfig {
        arrival_rate_rps: rng.gen_range(300.0..30_000.0),
        max_batch: rng.gen_range(1u64..33),
        batch_timeout_s: rng.gen_range(0.0002..0.004),
        requests: rng.gen_range(150usize..500),
        seed: rng.gen_range(0..u64::MAX),
    };
    let deadline_s = rng.gen_bool(0.6).then(|| rng.gen_range(0.005..0.05));
    let shed_expired = deadline_s.is_some() && rng.gen_bool(0.7);
    let queue_budget_s = match deadline_s {
        Some(d) if shed_expired && rng.gen_bool(0.5) => Some(d * rng.gen_range(0.5..1.0)),
        _ => None,
    };
    let policy = FleetPolicy {
        deadline_s,
        shed_expired,
        queue_budget_s,
        queue_cap: rng.gen_bool(0.5).then(|| rng.gen_range(16usize..512)),
        retry: RetryPolicy {
            max_retries: rng.gen_range(0u32..3),
            backoff_s: rng.gen_range(0.001..0.01),
            backoff_mult: rng.gen_range(1.0..3.0),
        },
    };
    let stragglers = Stragglers {
        probability: rng.gen_range(0.0..0.3),
        factor: rng.gen_range(1.0..4.0),
    };
    let fleet = FleetConfig::new(PoolConfig { base, servers })
        .with_policy(policy)
        .with_stragglers(stragglers);

    let n_sched = rng.gen_range(0usize..4);
    let scheduled = (0..n_sched)
        .map(|_| ScheduledFault {
            server: rng.gen_range(0..servers),
            at_s: rng.gen_range(0.0..0.2),
            kind: match rng.gen_range(0u32..3) {
                0 => FaultKind::Crash {
                    mttr_s: rng.gen_range(0.01..0.5),
                },
                1 => FaultKind::Hang {
                    duration_s: rng.gen_range(0.005..0.05),
                },
                _ => FaultKind::SlowDegrade {
                    factor: rng.gen_range(1.5..4.0),
                    duration_s: rng.gen_range(0.01..0.1),
                },
            },
        })
        .collect();
    let mtbf = rng.gen_bool(0.4).then(|| MtbfFaults {
        mtbf_s: rng.gen_range(0.02..0.2),
        mttr_s: rng.gen_range(0.005..0.05),
        horizon_s: rng.gen_range(0.5..2.0),
    });
    let probe_interval_s = rng.gen_range(0.001..0.01);
    let plan = FaultPlan {
        scheduled,
        mtbf,
        fault_seed: rng.gen_range(0..u64::MAX),
        failover: FailoverConfig {
            enabled: rng.gen_bool(0.6),
            probe_interval_s,
            probe_timeout_s: probe_interval_s * 0.5,
            recovery_warmup_s: rng.gen_range(0.001..0.01),
        },
    };
    (fleet, plan)
}

/// Production calendar engine vs the binary-heap reference: the whole
/// `ServingReport` (stats, metrics, per-server vectors) must be equal —
/// `PartialEq` on f64 fields means bit-for-bit on every computed time.
#[test]
fn fleet_calendar_matches_heap_reference() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    for case in 0..FLEET_PAIRS {
        let latency = random_latency(&mut rng);
        let (cfg, plan) = random_fleet(&mut rng);
        let cal = simulate_fleet_with_faults(&latency, &cfg, &plan).expect("valid config");
        let heap =
            simulate_fleet_with_faults_reference(&latency, &cfg, &plan).expect("valid config");
        assert_eq!(cal, heap, "fleet report diverged on case {case}: {cfg:?}");
    }
}

/// A random-but-valid decode-loop config in either batching mode.
fn random_gen(rng: &mut StdRng) -> (GenLatencyModel, GenConfig) {
    let lat = GenLatencyModel {
        prefill: LatencyModel::from_points(vec![
            (1, rng.gen_range(0.0005..0.002)),
            (1000, rng.gen_range(0.005..0.02)),
        ])
        .expect("monotone points"),
        decode: LatencyModel::from_points(vec![
            (1, rng.gen_range(0.001..0.004)),
            (32, rng.gen_range(0.004..0.008)),
        ])
        .expect("monotone points"),
    };
    let model = GenerationModel {
        prompt: TokenDistribution::Uniform {
            min: 1,
            max: rng.gen_range(8u64..512),
        },
        output: TokenDistribution::Geometric {
            mean: rng.gen_range(1.0..48.0),
            max: rng.gen_range(16u64..128),
        },
        kv_bytes_per_token: 4096,
    };
    let cfg = GenConfig {
        arrival_rate_rps: rng.gen_range(5.0..400.0),
        requests: rng.gen_range(100usize..400),
        seed: rng.gen_range(0..u64::MAX),
        mode: if rng.gen_bool(0.5) {
            BatchingMode::Continuous
        } else {
            BatchingMode::Static
        },
        max_batch: rng.gen_range(1u64..24),
        kv_capacity_bytes: model.peak_request_kv_bytes() * rng.gen_range(1u64..6),
        ttft_slo_s: rng.gen_bool(0.7).then(|| rng.gen_range(0.05..0.5)),
        model,
    };
    (lat, cfg)
}

/// The decode loop three ways — production two-source select, heap
/// queue, calendar queue — must agree exactly. This also pins the
/// band-separated sequence keys to the production `a <= s` tie rule.
#[test]
fn generation_queue_paths_match_production() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    for case in 0..GEN_PAIRS {
        let (lat, cfg) = random_gen(&mut rng);
        let prod = simulate_generation(&lat, &cfg).expect("valid config");
        let heap = simulate_generation_reference(&lat, &cfg).expect("valid config");
        let cal = simulate_generation_calendar(&lat, &cfg).expect("valid config");
        assert_eq!(prod, heap, "gen heap path diverged on case {case}: {cfg:?}");
        assert_eq!(
            prod, cal,
            "gen calendar path diverged on case {case}: {cfg:?}"
        );
    }
}

/// A random-but-valid global config (compact horizon so the battery
/// stays fast: each run is still epochs x cells full DES runs).
fn random_global(rng: &mut StdRng) -> GlobalConfig {
    let n_cells = rng.gen_range(2usize..5);
    let cells = (0..n_cells)
        .map(|_| {
            let servers = rng.gen_range(2usize..5);
            let (mut fleet, _) = random_fleet(rng);
            fleet.pool.servers = servers;
            // The orchestrator substitutes per-epoch rate/count/seed.
            fleet.pool.base.requests = 1;
            fleet.pool.base.arrival_rate_rps = 1.0;
            Cell::new(fleet, rng.gen_range(1_500.0..4_000.0), servers * 2)
        })
        .collect();
    let n_faults = rng.gen_range(0usize..4);
    let cell_faults = (0..n_faults)
        .map(|_| CellFault {
            cell: rng.gen_range(0..n_cells),
            at_s: rng.gen_range(0.0..0.8),
            duration_s: rng.gen_range(0.05..0.4),
            kind: match rng.gen_range(0u32..3) {
                0 => CellFaultKind::Outage,
                1 => CellFaultKind::Partition,
                _ => CellFaultKind::Brownout {
                    fraction: rng.gen_range(0.2..1.0),
                },
            },
        })
        .collect();
    GlobalConfig {
        cells,
        traffic: TrafficModel::diurnal(
            rng.gen_range(1_000.0..12_000.0),
            rng.gen_range(0.0..0.6),
            1.0,
        )
        .with_flash(0.4, 0.2, 1.7),
        cell_faults,
        autoscaler: AutoscalerConfig {
            enabled: rng.gen_bool(0.5),
            target_utilization: 0.6,
            step_servers: 2,
            provisioning_lag_epochs: 1,
        },
        geo: GeoPolicy {
            failover: rng.gen_bool(0.5),
            redirect_latency_s: 0.01,
            overload_threshold: 1.0,
            detect_epochs: 1,
        },
        epoch_s: 0.1,
        horizon_s: 0.8,
        seed: rng.gen_range(0..u64::MAX),
    }
}

/// Planet-scale runs drive one full per-cell DES per (epoch, cell);
/// the global report must not care which queue ran them.
#[test]
fn global_calendar_matches_heap_reference() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    let latency = random_latency(&mut rng);
    for case in 0..GLOBAL_PAIRS {
        let cfg = random_global(&mut rng);
        let cal = simulate_global(&latency, &cfg).expect("valid config");
        let heap = simulate_global_reference(&latency, &cfg).expect("valid config");
        assert_eq!(cal, heap, "global report diverged on case {case}");
    }
}

/// Telemetry streams are part of the contract: identical event
/// sequences (timestamp *bits*, track, phase, name, id, arg) and
/// identical counter maps, not just identical reports.
fn assert_streams_identical(a: &Recorder, b: &Recorder, what: &str) {
    assert_eq!(a.counters(), b.counters(), "{what}: counters diverged");
    assert_eq!(a.gauges(), b.gauges(), "{what}: gauges diverged");
    assert_eq!(a.len(), b.len(), "{what}: event counts diverged");
    for (i, (x, y)) in a.events().zip(b.events()).enumerate() {
        assert_eq!(
            x.t_s.to_bits(),
            y.t_s.to_bits(),
            "{what}: event {i} timestamp bits diverged ({} vs {})",
            x.t_s,
            y.t_s
        );
        assert_eq!(
            (x.track, x.phase, &x.name, x.id, x.arg),
            (y.track, y.phase, &y.name, y.id, y.arg),
            "{what}: event {i} payload diverged"
        );
    }
}

#[test]
fn recorded_telemetry_streams_are_identical_across_queues() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0004);
    for case in 0..RECORDED_PAIRS {
        let latency = random_latency(&mut rng);
        let (cfg, plan) = random_fleet(&mut rng);
        let mut cal_rec = Recorder::new();
        let mut heap_rec = Recorder::new();
        let cal = simulate_fleet_recorded(&latency, &cfg, &plan, &mut cal_rec).expect("valid");
        let heap =
            simulate_fleet_recorded_reference(&latency, &cfg, &plan, &mut heap_rec).expect("valid");
        assert_eq!(cal, heap, "recorded fleet report diverged on case {case}");
        assert_streams_identical(&cal_rec, &heap_rec, &format!("fleet case {case}"));

        let (glat, gcfg) = random_gen(&mut rng);
        let mut gcal_rec = Recorder::new();
        let mut gheap_rec = Recorder::new();
        let gcal = simulate_generation_recorded(&glat, &gcfg, &mut gcal_rec).expect("valid");
        let gheap =
            simulate_generation_recorded_reference(&glat, &gcfg, &mut gheap_rec).expect("valid");
        assert_eq!(gcal, gheap, "recorded gen report diverged on case {case}");
        assert_streams_identical(&gcal_rec, &gheap_rec, &format!("gen case {case}"));
    }
}
