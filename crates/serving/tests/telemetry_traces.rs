//! Trace invariants on real fleet/chaos runs: monotone timestamps,
//! balanced spans, exact reconciliation with `ServingMetrics`
//! conservation, and the determinism guarantee (telemetry is derived
//! from, never an input to, simulation state).

use tpu_serving::faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};
use tpu_serving::{
    simulate_fleet_recorded, simulate_fleet_with_faults, FleetConfig, FleetPolicy, LatencyModel,
    RetryPolicy, ServingConfig, ServingReport,
};
use tpu_telemetry::{chrome_trace_json, span_balance, validate_chrome_json, Recorder, SpanPhase};

fn model() -> LatencyModel {
    LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid model")
}

/// An overloaded chaos fleet: 4 servers, MTBF crashes/hangs, failover
/// probes, deadline shedding, retries — every lifecycle edge fires.
fn chaos_fleet(requests: usize, seed: u64) -> (FleetConfig, FaultPlan) {
    let base = ServingConfig {
        arrival_rate_rps: 45_000.0,
        max_batch: 16,
        batch_timeout_s: 0.001,
        requests,
        seed,
    };
    let fleet = FleetConfig::new(base.with_servers(4)).with_policy(FleetPolicy {
        deadline_s: Some(0.02),
        shed_expired: true,
        queue_budget_s: Some(0.015),
        queue_cap: Some(256),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_s: 0.002,
            backoff_mult: 2.0,
        },
    });
    let plan = FaultPlan {
        scheduled: vec![ScheduledFault {
            server: 0,
            at_s: 0.05,
            kind: FaultKind::Crash { mttr_s: 5.0 },
        }],
        mtbf: Some(MtbfFaults {
            mtbf_s: 0.04,
            mttr_s: 0.015,
            horizon_s: 1.0,
        }),
        fault_seed: 7,
        failover: FailoverConfig {
            enabled: true,
            probe_interval_s: 0.002,
            probe_timeout_s: 0.001,
            recovery_warmup_s: 0.005,
        },
    };
    (fleet, plan)
}

fn recorded_chaos_run(requests: usize, seed: u64) -> (ServingReport, Recorder) {
    let (fleet, plan) = chaos_fleet(requests, seed);
    let mut rec = Recorder::with_capacity(1 << 20);
    let report =
        simulate_fleet_recorded(&model(), &fleet, &plan, &mut rec).expect("valid chaos config");
    (report, rec)
}

#[test]
fn chaos_run_exercises_every_lifecycle_edge() {
    // Guard: the fixture must actually produce sheds, failures, faults,
    // and recoveries, or the invariant tests below prove nothing.
    let (report, rec) = recorded_chaos_run(4000, 11);
    assert!(report.shed > 0, "fixture should shed");
    assert!(report.failed > 0, "fixture should fail in-flight work");
    assert!(report.metrics.failures_detected.get() > 0);
    assert!(report.metrics.failures_recovered.get() > 0);
    assert!(rec.counter("retry") > 0);
    assert!(rec.counter("down.begin") > 0);
}

#[test]
fn timestamps_are_monotone_nondecreasing() {
    let (_, rec) = recorded_chaos_run(4000, 11);
    assert_eq!(rec.dropped(), 0, "ring must hold the whole run");
    let mut prev = f64::NEG_INFINITY;
    for ev in rec.events() {
        assert!(
            ev.t_s >= prev,
            "time went backwards: {} after {} ({})",
            ev.t_s,
            prev,
            ev.name
        );
        prev = ev.t_s;
    }
}

#[test]
fn spans_are_balanced_on_chaos_runs() {
    let (_, rec) = recorded_chaos_run(4000, 11);
    let events: Vec<_> = rec.events().cloned().collect();
    let balanced = span_balance(&events).expect("every begin has a matching end");
    assert!(balanced > 0);
    // Counter-level balance agrees for each span family.
    for name in ["queued", "batch", "down"] {
        assert_eq!(
            rec.counter(&format!("{name}.begin")),
            rec.counter(&format!("{name}.end")),
            "{name} spans unbalanced"
        );
    }
}

#[test]
fn event_counts_reconcile_exactly_with_serving_metrics() {
    let (report, rec) = recorded_chaos_run(4000, 11);
    let m = &report.metrics;
    assert!(report.conservation_holds());
    // Terminal instants are the conservation identity, event-by-event:
    // arrivals == completed + shed + dropped + failed.
    assert_eq!(rec.counter("arrive"), report.arrivals as u64);
    assert_eq!(rec.counter("complete"), report.completed as u64);
    assert_eq!(rec.counter("shed_permanent"), report.shed as u64);
    assert_eq!(rec.counter("dropped"), report.dropped as u64);
    assert_eq!(rec.counter("failed_permanent"), report.failed as u64);
    assert_eq!(
        rec.counter("arrive"),
        rec.counter("complete")
            + rec.counter("shed_permanent")
            + rec.counter("dropped")
            + rec.counter("failed_permanent")
    );
    // Counter registry mirrors the metrics module exactly.
    assert_eq!(rec.counter("arrive"), m.arrivals.get());
    assert_eq!(rec.counter("complete"), m.completed.get());
    assert_eq!(rec.counter("retry"), m.retries.get());
    assert_eq!(rec.counter("shed_queue_full"), m.shed_queue_full.get());
    assert_eq!(rec.counter("shed_deadline"), m.shed_deadline.get());
    assert_eq!(rec.counter("shed_no_capacity"), m.shed_no_capacity.get());
    assert_eq!(rec.counter("detected"), m.failures_detected.get());
    assert_eq!(rec.counter("recovered"), m.failures_recovered.get());
    assert_eq!(rec.counter("dropped"), m.dropped_at_drain.get());
    assert_eq!(
        rec.counter("crash") + rec.counter("hang"),
        m.failures_injected.get()
    );
    assert_eq!(rec.counter("slow_degrade"), m.degrades_injected.get());
    assert_eq!(rec.counter("events_processed"), m.events_processed.get());
    // Every queue residency that ended in a launch observed its wait.
    assert_eq!(rec.counter("queued.begin"), m.admitted.get());
}

#[test]
fn telemetry_is_derived_not_an_input() {
    // Same config and seed, with and without a recorder attached: the
    // reports must be bit-identical.
    let (fleet, plan) = chaos_fleet(4000, 11);
    let plain = simulate_fleet_with_faults(&model(), &fleet, &plan).expect("valid");
    let (recorded, _) = recorded_chaos_run(4000, 11);
    assert_eq!(plain, recorded);
}

#[test]
fn recorded_event_stream_is_deterministic() {
    let (ra, a) = recorded_chaos_run(4000, 11);
    let (rb, b) = recorded_chaos_run(4000, 11);
    assert_eq!(ra, rb);
    assert_eq!(a.len(), b.len());
    assert!(a.events().zip(b.events()).all(|(x, y)| x == y));
    assert_eq!(a.counters(), b.counters());
    // And the serialized export is byte-identical.
    let ja = chrome_trace_json(a.events());
    let jb = chrome_trace_json(b.events());
    assert_eq!(ja, jb);
}

#[test]
fn chrome_export_of_a_real_run_is_schema_valid() {
    let (_, rec) = recorded_chaos_run(2000, 3);
    let json = chrome_trace_json(rec.events());
    let records = validate_chrome_json(&json).expect("schema-valid chrome trace");
    // Every ring event plus at least the fleet + 4 server tracks'
    // thread_name metadata records.
    assert!(records >= rec.len() + 5);
}

#[test]
fn profiling_attributes_every_dispatched_event() {
    let (fleet, plan) = chaos_fleet(2000, 3);
    let mut rec = Recorder::new();
    rec.enable_profiling(true);
    let report = simulate_fleet_recorded(&model(), &fleet, &plan, &mut rec).expect("valid");
    let profiled: u64 = rec.profile_entries().values().map(|e| e.count).sum();
    assert_eq!(profiled, report.metrics.events_processed.get());
    for kind in ["arrival", "done", "probe", "fault"] {
        assert!(
            rec.profile_entries().contains_key(kind),
            "missing profile kind {kind}"
        );
    }
    // Profiling must not perturb the simulation either.
    let plain = simulate_fleet_with_faults(&model(), &fleet, &plan).expect("valid");
    assert_eq!(plain, report);
}

#[test]
fn shed_instants_partition_by_reason() {
    let (_, rec) = recorded_chaos_run(4000, 11);
    // Every queue residency ends in exactly one of: launch (becomes a
    // batch member), deadline shed, redistribution, or drain. The
    // non-queued shed reasons (queue_full, no_capacity) never open a
    // queued span, so queued.begin >= queued.end contributions from
    // sheds alone — the balance test already pins equality; here we pin
    // that at least one deadline shed and one queue-full shed happened
    // so both paths are covered.
    assert!(rec.counter("shed_deadline") > 0);
    assert!(rec.counter("shed_queue_full") > 0);
    let begins = rec.counter("queued.begin");
    let ends = rec.counter("queued.end");
    assert_eq!(begins, ends);
    // Batch spans saw real traffic on several servers.
    let mut server_tracks: Vec<u32> = rec
        .events()
        .filter(|e| e.track.name == "server" && e.phase == SpanPhase::Begin && e.name == "batch")
        .map(|e| e.track.index)
        .collect();
    server_tracks.sort_unstable();
    server_tracks.dedup();
    assert!(server_tracks.len() >= 2, "batches on at least two servers");
}
