//! Property tests for the serving DES: statistical invariants that must
//! hold for *any* valid configuration — with stragglers, multi-server
//! pools, and overload policies in play.

use proptest::prelude::*;

use tpu_serving::des::{
    simulate_fleet, simulate_fleet_with_faults, simulate_pool_with_stragglers, ConfigError,
    FleetConfig, FleetPolicy, RetryPolicy, ServingConfig, Stragglers,
};
use tpu_serving::faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};
use tpu_serving::latency::LatencyModel;
use tpu_serving::multitenant::{simulate_tenants, MultiTenantConfig, Tenant};
use tpu_serving::slo::{max_batch_within_slo, replicas_for_rate};

fn model() -> LatencyModel {
    // 1 ms fixed + ~0.05 ms per item.
    LatencyModel::from_points(vec![(1, 0.00105), (100, 0.006)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Percentile ordering, bounded utilization, and throughput no
    /// faster than the offered rate hold for any pool with stragglers.
    #[test]
    fn pool_invariants(
        rate in 100.0f64..30_000.0,
        max_batch in 1u64..64,
        servers in 2usize..=8,
        requests in 300usize..1500,
        probability in 0.0f64..0.2,
        factor in 1.0f64..8.0,
        seed in any::<u64>(),
    ) {
        let cfg = ServingConfig {
            arrival_rate_rps: rate,
            max_batch,
            batch_timeout_s: 0.002,
            requests,
            seed,
        };
        let report = simulate_pool_with_stragglers(
            &model(),
            &cfg.with_servers(servers),
            &Stragglers { probability, factor },
        )
        .expect("generated config is valid");
        // Everything completes without an overload policy.
        prop_assert_eq!(report.completed, requests);
        prop_assert!(report.conservation_holds());
        // Percentile ordering.
        prop_assert!(report.p50_s <= report.p99_s + 1e-12);
        prop_assert!(report.p99_s <= report.stats.max_s + 1e-12);
        // Utilization is a fraction.
        prop_assert!(report.server_utilization >= 0.0);
        prop_assert!(report.server_utilization <= 1.0);
        // Goodput never exceeds throughput.
        prop_assert!(report.goodput_rps <= report.throughput_rps + 1e-9);
        // Batches respect the cap.
        prop_assert!(report.mean_batch >= 1.0 - 1e-9);
        prop_assert!(report.mean_batch <= max_batch as f64 + 1e-9);
        // Completed work cannot outpace arrivals by more than the final
        // drain (loose bound: 2x the offered rate).
        prop_assert!(report.throughput_rps <= 2.0 * rate);
    }

    /// The same seed and configuration reproduce the identical report,
    /// straggler injection and fleet policy included.
    #[test]
    fn identical_seeds_reproduce_identical_reports(
        rate in 500.0f64..25_000.0,
        max_batch in 1u64..32,
        servers in 2usize..=8,
        probability in 0.0f64..0.3,
        seed in any::<u64>(),
        deadline_ms in 5.0f64..50.0,
        cap in 8usize..256,
    ) {
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch,
                batch_timeout_s: 0.001,
                requests: 600,
                seed,
            }
            .with_servers(servers),
        )
        .with_stragglers(Stragglers { probability, factor: 5.0 })
        .with_policy(FleetPolicy {
            deadline_s: Some(deadline_ms / 1e3),
            shed_expired: true,
            queue_cap: Some(cap),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let a = simulate_fleet(&model(), &fleet).expect("valid");
        let b = simulate_fleet(&model(), &fleet).expect("valid");
        prop_assert_eq!(a, b);
    }

    /// Request conservation holds under any overload policy, and the
    /// report's counts agree with the metrics counters.
    #[test]
    fn conservation_under_random_policies(
        rate in 5_000.0f64..40_000.0,
        deadline_ms in 2.0f64..30.0,
        shed in any::<bool>(),
        cap in 4usize..128,
        retries in 0u32..3,
        seed in any::<u64>(),
    ) {
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch: 16,
                batch_timeout_s: 0.001,
                requests: 1000,
                seed,
            }
            .with_servers(2),
        )
        .with_policy(FleetPolicy {
            deadline_s: Some(deadline_ms / 1e3),
            shed_expired: shed,
            queue_cap: Some(cap),
            retry: RetryPolicy {
                max_retries: retries,
                backoff_s: 0.001,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let r = simulate_fleet(&model(), &fleet).expect("valid");
        prop_assert!(r.conservation_holds());
        prop_assert_eq!(r.completed as u64, r.metrics.completed.get());
        prop_assert_eq!(r.shed as u64, r.metrics.shed_total());
        prop_assert_eq!(r.dropped as u64, r.metrics.dropped_at_drain.get());
        // Late completions are a subset of completions.
        prop_assert!(r.metrics.completed_late.get() <= r.metrics.completed.get());
    }

    /// The extended conservation invariant and the availability
    /// accounting hold under arbitrary fault plans (scheduled crashes,
    /// hangs, degrades, plus an MTBF stream), with failover on or off.
    #[test]
    fn conservation_and_accounting_under_faults(
        rate in 3_000.0f64..25_000.0,
        servers in 2usize..=6,
        deadline_ms in 5.0f64..40.0,
        retries in 0u32..3,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fault_server in 0usize..6,
        fault_at_ms in 0.0f64..200.0,
        kind_pick in 0usize..3,
        mtbf_ms in 20.0f64..500.0,
        failover_on in any::<bool>(),
    ) {
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch: 16,
                batch_timeout_s: 0.001,
                requests: 800,
                seed,
            }
            .with_servers(servers),
        )
        .with_policy(FleetPolicy {
            deadline_s: Some(deadline_ms / 1e3),
            shed_expired: true,
            queue_cap: Some(64),
            retry: RetryPolicy {
                max_retries: retries,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let kind = match kind_pick {
            0 => FaultKind::Crash { mttr_s: 0.02 },
            1 => FaultKind::Hang { duration_s: 0.01 },
            _ => FaultKind::SlowDegrade { factor: 3.0, duration_s: 0.05 },
        };
        let plan = FaultPlan {
            scheduled: vec![ScheduledFault {
                server: fault_server % servers,
                at_s: fault_at_ms / 1e3,
                kind,
            }],
            mtbf: Some(MtbfFaults {
                mtbf_s: mtbf_ms / 1e3,
                mttr_s: 0.01,
                horizon_s: 0.5,
            }),
            fault_seed,
            failover: FailoverConfig {
                enabled: failover_on,
                ..FailoverConfig::default()
            },
        };
        let r = simulate_fleet_with_faults(&model(), &fleet, &plan).expect("valid plan");
        // Extended conservation: every arrival is accounted for.
        prop_assert!(r.conservation_holds());
        prop_assert_eq!(r.failed as u64, r.metrics.failed_permanent.get());
        // Detection/recovery counters are bounded by injections, and an
        // oblivious fleet never detects anything.
        let injected = r.metrics.failures_injected.get();
        prop_assert!(r.metrics.failures_detected.get() <= injected);
        prop_assert!(r.metrics.failures_recovered.get() <= injected + r.metrics.degrades_injected.get());
        if !failover_on {
            prop_assert_eq!(r.metrics.failures_detected.get(), 0);
        }
        // Availability accounting stays within the run.
        let avail = r.metrics.per_server_availability(r.duration_s);
        for (s, a) in avail.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(a), "server {} availability {}", s, a);
            prop_assert!(r.metrics.per_server_down_s[s] <= r.duration_s + 1e-9);
        }
        // Per-server completions sum to the total.
        let per_server: u64 = r.metrics.per_server_completed.iter().sum();
        prop_assert_eq!(per_server, r.completed as u64);
    }

    /// No completions are ever attributed to a server that is Down for
    /// the whole serving window, and recovery always re-admits a server
    /// (failover on: the health checker must bring it back).
    #[test]
    fn dead_servers_serve_nothing_and_recovery_readmits(
        rate in 4_000.0f64..20_000.0,
        servers in 2usize..=4,
        seed in any::<u64>(),
        dead in 0usize..4,
    ) {
        let dead = dead % servers;
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch: 16,
                batch_timeout_s: 0.001,
                requests: 800,
                seed,
            }
            .with_servers(servers),
        )
        .with_policy(FleetPolicy {
            deadline_s: Some(0.03),
            shed_expired: true,
            ..FleetPolicy::default()
        });
        // Dead for the whole run: crashes at t=0, repairs far beyond it.
        let forever = FaultPlan::scheduled(vec![ScheduledFault {
            server: dead,
            at_s: 0.0,
            kind: FaultKind::Crash { mttr_s: 1e6 },
        }]);
        let r = simulate_fleet_with_faults(&model(), &fleet, &forever).expect("valid");
        prop_assert!(r.conservation_holds());
        prop_assert_eq!(r.metrics.per_server_completed[dead], 0u64);
        prop_assert_eq!(r.metrics.per_server_busy_s[dead], 0.0);

        // A short outage with failover on: the server must recover and
        // be re-admitted (detected, recovered, and serving again).
        let brief = FaultPlan::scheduled(vec![ScheduledFault {
            server: dead,
            at_s: 0.005,
            kind: FaultKind::Crash { mttr_s: 0.005 },
        }]);
        let r2 = simulate_fleet_with_faults(&model(), &fleet, &brief).expect("valid");
        prop_assert!(r2.conservation_holds());
        prop_assert_eq!(r2.metrics.failures_recovered.get(), 1);
        prop_assert!(r2.metrics.per_server_completed[dead] > 0,
            "recovered server {} never re-admitted", dead);
    }

    /// `FaultPlan` validation rejects NaN/negative MTBF, MTTR, and the
    /// rest of the degenerate knobs with typed errors.
    #[test]
    fn fault_plan_rejects_degenerate_knobs(
        bad in prop_oneof![Just(f64::NAN), Just(-1.0), Just(0.0), Just(f64::INFINITY)],
    ) {
        let mk_mtbf = |mtbf_s: f64, mttr_s: f64| FaultPlan {
            scheduled: Vec::new(),
            mtbf: Some(MtbfFaults { mtbf_s, mttr_s, horizon_s: 1.0 }),
            fault_seed: 0,
            failover: FailoverConfig::default(),
        };
        // NaN payloads never compare equal, so match on the variant.
        prop_assert!(matches!(
            mk_mtbf(bad, 0.1).validate(4),
            Err(ConfigError::InvalidMtbf(_))
        ));
        prop_assert!(matches!(
            mk_mtbf(1.0, bad).validate(4),
            Err(ConfigError::InvalidMttr(_))
        ));
        let crash = FaultPlan::scheduled(vec![ScheduledFault {
            server: 0,
            at_s: 0.1,
            kind: FaultKind::Crash { mttr_s: bad },
        }]);
        prop_assert!(matches!(
            crash.validate(4),
            Err(ConfigError::InvalidMttr(_))
        ));
        if bad.is_nan() || bad < 0.0 {
            let late = FaultPlan::scheduled(vec![ScheduledFault {
                server: 0,
                at_s: bad,
                kind: FaultKind::Crash { mttr_s: 0.1 },
            }]);
            prop_assert!(matches!(
                late.validate(4),
                Err(ConfigError::InvalidFaultTime(_))
            ));
        }
    }

    /// Multi-tenant work conservation and fairness bounds: every tenant
    /// gets its full share of requests, residency is exactly the HBM
    /// capacity test, and the fairness metric dominates every tenant.
    #[test]
    fn multitenant_work_conservation_and_residency(
        tenant_specs in prop::collection::vec(
            (0.5f64..3.0, 100.0f64..1200.0, 0.5f64..3.0), // (ms@1, rps, GiB)
            1..6,
        ),
        requests in 200usize..800,
        seed in any::<u64>(),
    ) {
        let chip = tpu_arch::catalog::tpu_v4i();
        let tenants: Vec<Tenant> = tenant_specs
            .iter()
            .enumerate()
            .map(|(i, &(ms, rps, gib))| Tenant {
                name: format!("t{i}"),
                latency: LatencyModel::from_points(vec![
                    (1, ms * 1e-3),
                    (64, ms * 4e-3),
                ])
                .unwrap(),
                weight_bytes: (gib * (1u64 << 30) as f64) as u64,
                arrival_rate_rps: rps,
            })
            .collect();
        let cfg = MultiTenantConfig { requests, seed, ..MultiTenantConfig::default() };
        let r = simulate_tenants(&chip, &tenants, &cfg);

        // Work conservation: each tenant receives exactly its share and
        // every injected request is answered.
        let per = (requests / tenants.len()).max(1);
        prop_assert_eq!(r.per_tenant.len(), tenants.len());
        for (i, s) in r.per_tenant.iter().enumerate() {
            prop_assert!(s.n == per, "tenant {} served {} of {}", i, s.n, per);
        }
        prop_assert_eq!(r.aggregate.n, per * tenants.len());
        prop_assert!(r.throughput_rps > 0.0);

        // Residency is exactly the capacity test, and resident fleets
        // never swap.
        let total: u64 = tenants.iter().map(|t| t.weight_bytes).sum();
        prop_assert_eq!(r.all_resident, total <= chip.hbm.capacity_bytes);
        if r.all_resident {
            prop_assert_eq!(r.swaps, 0);
            prop_assert_eq!(r.swap_seconds, 0.0);
        } else {
            prop_assert!(r.swaps > 0);
            prop_assert!(r.swap_seconds > 0.0);
        }

        // Fairness/share bounds: the worst p99 dominates every tenant,
        // and each tenant's percentile ladder is ordered.
        for s in &r.per_tenant {
            prop_assert!(r.worst_p99_s() >= s.p99_s - 1e-12);
            prop_assert!(s.p50_s <= s.p95_s + 1e-12);
            prop_assert!(s.p95_s <= s.p99_s + 1e-12);
            prop_assert!(s.p99_s <= s.max_s + 1e-12);
            prop_assert!(s.p50_s >= 0.0);
        }
    }

    /// `replicas_for_rate` is monotone in the required rate, antitone in
    /// availability and per-server capacity, and its answer is both
    /// sufficient and minimal (at 1 cell — the pinned legacy behavior).
    #[test]
    fn replicas_for_rate_monotone_sufficient_minimal(
        required in 1.0f64..1e6,
        extra in 0.0f64..1e6,
        per_server in 10.0f64..1e5,
        avail_lo in 0.5f64..1.0,
        avail_bump in 0.0f64..0.5,
    ) {
        let avail_hi = (avail_lo + avail_bump).min(1.0);
        let base = replicas_for_rate(required, per_server, avail_lo, 1);

        // Monotone nondecreasing in the required rate.
        prop_assert!(replicas_for_rate(required + extra, per_server, avail_lo, 1) >= base);
        // Nonincreasing in availability: healthier fleets never need more.
        prop_assert!(replicas_for_rate(required, per_server, avail_hi, 1) <= base);
        // Nonincreasing in per-server capacity.
        prop_assert!(replicas_for_rate(required, per_server * 2.0, avail_lo, 1) <= base);

        // Sufficiency: the sized fleet covers the demand...
        let eff = per_server * avail_lo;
        prop_assert!(
            base as f64 * eff >= required * (1.0 - 1e-9),
            "{} replicas x {} rps < {}", base, eff, required
        );
        // ...and minimality: one fewer replica would not.
        prop_assert!(base >= 1);
        prop_assert!(
            (base - 1) as f64 * eff < required * (1.0 + 1e-9),
            "{} replicas already sufficed for {}", base - 1, required
        );

        // Degenerate demand needs no fleet at all.
        prop_assert_eq!(replicas_for_rate(0.0, per_server, avail_lo, 1), 0);
        prop_assert_eq!(replicas_for_rate(-required, per_server, avail_lo, 1), 0);
    }

    /// The correlated-cell term: the sized fleet survives losing its
    /// largest cell and still meets the rate; more cells never require
    /// a bigger fleet (smaller blast radius); and the multi-cell answer
    /// never undercuts the 1-cell answer.
    #[test]
    fn replicas_for_rate_cell_term(
        required in 1.0f64..1e6,
        per_server in 10.0f64..1e5,
        avail in 0.5f64..1.0,
        cells in 2usize..12,
    ) {
        let independent = replicas_for_rate(required, per_server, avail, 1);
        let n = replicas_for_rate(required, per_server, avail, cells);
        prop_assert!(n >= independent);
        // Losing the largest of `cells` near-equal cells still leaves
        // enough derated capacity.
        let survivors = n - n.div_ceil(cells as u64);
        let eff = per_server * avail;
        prop_assert!(
            survivors as f64 * eff >= required * (1.0 - 1e-9),
            "{n} replicas over {cells} cells leave {survivors} survivors"
        );
        // A finer cell split (smaller largest cell) never needs more.
        prop_assert!(replicas_for_rate(required, per_server, avail, cells + 1) <= n);
    }

    /// The SLO-feasible batch cap is monotone in the SLO: loosening the
    /// latency budget never shrinks the feasible batch.
    #[test]
    fn max_batch_within_slo_monotone_in_slo(
        slo_ms in 2.2f64..20.0,
        slack_ms in 0.0f64..20.0,
        limit in 1u64..2048,
    ) {
        // 2 ms fixed + 0.1 ms per item.
        let m = LatencyModel::from_points(vec![(1, 0.0021), (200, 0.022)]).unwrap();
        let tight = max_batch_within_slo(&m, slo_ms * 1e-3, limit);
        let loose = max_batch_within_slo(&m, (slo_ms + slack_ms) * 1e-3, limit);
        match (tight, loose) {
            (Some(t), Some(l)) => {
                prop_assert!(l >= t);
                prop_assert!(t >= 1 && l <= limit);
                // Feasibility: the returned batch really meets the SLO.
                prop_assert!(m.latency(t) <= slo_ms * 1e-3 + 1e-12);
            }
            (None, Some(_)) | (None, None) => {}
            (Some(_), None) => prop_assert!(false, "loosening the SLO lost feasibility"),
        }
    }
}
