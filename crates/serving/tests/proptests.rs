//! Property tests for the serving DES: statistical invariants that must
//! hold for *any* valid configuration — with stragglers, multi-server
//! pools, and overload policies in play.

use proptest::prelude::*;

use tpu_serving::des::{
    simulate_fleet, simulate_pool_with_stragglers, FleetConfig, FleetPolicy, RetryPolicy,
    ServingConfig, Stragglers,
};
use tpu_serving::latency::LatencyModel;

fn model() -> LatencyModel {
    // 1 ms fixed + ~0.05 ms per item.
    LatencyModel::from_points(vec![(1, 0.00105), (100, 0.006)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Percentile ordering, bounded utilization, and throughput no
    /// faster than the offered rate hold for any pool with stragglers.
    #[test]
    fn pool_invariants(
        rate in 100.0f64..30_000.0,
        max_batch in 1u64..64,
        servers in 2usize..=8,
        requests in 300usize..1500,
        probability in 0.0f64..0.2,
        factor in 1.0f64..8.0,
        seed in any::<u64>(),
    ) {
        let cfg = ServingConfig {
            arrival_rate_rps: rate,
            max_batch,
            batch_timeout_s: 0.002,
            requests,
            seed,
        };
        let report = simulate_pool_with_stragglers(
            &model(),
            &cfg.with_servers(servers),
            &Stragglers { probability, factor },
        )
        .expect("generated config is valid");
        // Everything completes without an overload policy.
        prop_assert_eq!(report.completed, requests);
        prop_assert!(report.conservation_holds());
        // Percentile ordering.
        prop_assert!(report.p50_s <= report.p99_s + 1e-12);
        prop_assert!(report.p99_s <= report.stats.max_s + 1e-12);
        // Utilization is a fraction.
        prop_assert!(report.server_utilization >= 0.0);
        prop_assert!(report.server_utilization <= 1.0);
        // Goodput never exceeds throughput.
        prop_assert!(report.goodput_rps <= report.throughput_rps + 1e-9);
        // Batches respect the cap.
        prop_assert!(report.mean_batch >= 1.0 - 1e-9);
        prop_assert!(report.mean_batch <= max_batch as f64 + 1e-9);
        // Completed work cannot outpace arrivals by more than the final
        // drain (loose bound: 2x the offered rate).
        prop_assert!(report.throughput_rps <= 2.0 * rate);
    }

    /// The same seed and configuration reproduce the identical report,
    /// straggler injection and fleet policy included.
    #[test]
    fn identical_seeds_reproduce_identical_reports(
        rate in 500.0f64..25_000.0,
        max_batch in 1u64..32,
        servers in 2usize..=8,
        probability in 0.0f64..0.3,
        seed in any::<u64>(),
        deadline_ms in 5.0f64..50.0,
        cap in 8usize..256,
    ) {
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch,
                batch_timeout_s: 0.001,
                requests: 600,
                seed,
            }
            .with_servers(servers),
        )
        .with_stragglers(Stragglers { probability, factor: 5.0 })
        .with_policy(FleetPolicy {
            deadline_s: Some(deadline_ms / 1e3),
            shed_expired: true,
            queue_cap: Some(cap),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let a = simulate_fleet(&model(), &fleet).expect("valid");
        let b = simulate_fleet(&model(), &fleet).expect("valid");
        prop_assert_eq!(a, b);
    }

    /// Request conservation holds under any overload policy, and the
    /// report's counts agree with the metrics counters.
    #[test]
    fn conservation_under_random_policies(
        rate in 5_000.0f64..40_000.0,
        deadline_ms in 2.0f64..30.0,
        shed in any::<bool>(),
        cap in 4usize..128,
        retries in 0u32..3,
        seed in any::<u64>(),
    ) {
        let fleet = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: rate,
                max_batch: 16,
                batch_timeout_s: 0.001,
                requests: 1000,
                seed,
            }
            .with_servers(2),
        )
        .with_policy(FleetPolicy {
            deadline_s: Some(deadline_ms / 1e3),
            shed_expired: shed,
            queue_cap: Some(cap),
            retry: RetryPolicy {
                max_retries: retries,
                backoff_s: 0.001,
                backoff_mult: 2.0,
            },
            ..FleetPolicy::default()
        });
        let r = simulate_fleet(&model(), &fleet).expect("valid");
        prop_assert!(r.conservation_holds());
        prop_assert_eq!(r.completed as u64, r.metrics.completed.get());
        prop_assert_eq!(r.shed as u64, r.metrics.shed_total());
        prop_assert_eq!(r.dropped as u64, r.metrics.dropped_at_drain.get());
        // Late completions are a subset of completions.
        prop_assert!(r.metrics.completed_late.get() <= r.metrics.completed.get());
    }
}
