//! One criterion bench per paper table/figure: times the regeneration of
//! each experiment (E1–E14). `cargo bench -p tpu-bench --bench paper`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for id in tpu_bench::ALL_EXPERIMENTS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let out = tpu_bench::run_experiment(id).expect("known experiment id");
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
