//! One timed run per paper table/figure: times the regeneration of each
//! experiment. `cargo bench -p tpu-bench --bench paper`.

use std::time::Duration;

use tpu_bench::quick::Group;

fn main() {
    let group = Group::new("paper").measurement_time(Duration::from_secs(2));
    for id in tpu_bench::ALL_EXPERIMENTS {
        group.bench(id, || {
            tpu_bench::run_experiment(id)
                .expect("known experiment id")
                .len()
        });
    }
}
