//! Microbenchmarks of the substrates: compiler throughput, simulator
//! event rate, ISA round trips, quantization, bf16 conversion, the
//! serving DES. `cargo bench -p tpu-bench --bench micro`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tpu_arch::{catalog, Generation};
use tpu_hlo::{compile, CompilerOptions};
use tpu_numerics::{Bf16, Quantized};
use tpu_serving::des::{simulate, ServingConfig};
use tpu_serving::latency::LatencyModel;
use tpu_sim::Simulator;
use tpu_workloads::production_apps;

fn bench_compile(c: &mut Criterion) {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let mut group = c.benchmark_group("compile");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for app in production_apps() {
        let graph = app.build(8).expect("builds");
        group.bench_function(BenchmarkId::from_parameter(app.spec.name), |b| {
            b.iter(|| {
                let exe = compile(&graph, &chip, &options).expect("compiles");
                std::hint::black_box(exe.plan().len())
            })
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let sim = Simulator::new(chip.clone());
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for app in production_apps() {
        let graph = app.build(8).expect("builds");
        let exe = compile(&graph, &chip, &options).expect("compiles");
        group.bench_function(BenchmarkId::from_parameter(app.spec.name), |b| {
            b.iter(|| {
                let report = sim.run(exe.plan()).expect("simulates");
                std::hint::black_box(report.seconds)
            })
        });
    }
    group.finish();
}

fn bench_isa_round_trip(c: &mut Criterion) {
    let chip = catalog::tpu_v4i();
    let graph = production_apps()[0].build(8).expect("builds");
    let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
    let mut group = c.benchmark_group("isa");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("encode+decode", |b| {
        b.iter(|| {
            let bytes = exe.binary().expect("encodes");
            let p = tpu_isa::decode(&bytes, Generation::TpuV4i).expect("decodes");
            std::hint::black_box(p.len())
        })
    });
    group.finish();
}

fn bench_numerics(c: &mut Criterion) {
    let xs: Vec<f32> = (0..1_000_000)
        .map(|i| ((i * 2_654_435_761usize) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let mut group = c.benchmark_group("numerics");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("quantize/per-tensor-1M", |b| {
        b.iter(|| {
            let q = Quantized::per_tensor(&xs).expect("finite");
            std::hint::black_box(q.codes.len())
        })
    });
    group.bench_function("bf16/convert-1M", |b| {
        b.iter(|| {
            let sum: u32 = xs
                .iter()
                .map(|&x| Bf16::from_f32(x).to_bits() as u32)
                .sum();
            std::hint::black_box(sum)
        })
    });
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let model = LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid");
    let mut group = c.benchmark_group("serving");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("des-10k-requests", |b| {
        b.iter(|| {
            let r = simulate(
                &model,
                &ServingConfig {
                    arrival_rate_rps: 5000.0,
                    max_batch: 32,
                    batch_timeout_s: 0.002,
                    requests: 10_000,
                    seed: 1,
                },
            );
            std::hint::black_box(r.p99_s)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_simulate,
    bench_isa_round_trip,
    bench_numerics,
    bench_serving
);
criterion_main!(benches);
