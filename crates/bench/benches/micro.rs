//! Microbenchmarks of the substrates: compiler throughput, simulator
//! event rate, ISA round trips, quantization, bf16 conversion, the
//! serving DES. `cargo bench -p tpu-bench --bench micro`.

use std::time::Duration;

use tpu_arch::{catalog, Generation};
use tpu_bench::quick::Group;
use tpu_hlo::{compile, CompilerOptions};
use tpu_numerics::{Bf16, Quantized};
use tpu_serving::des::{simulate, ServingConfig};
use tpu_serving::latency::LatencyModel;
use tpu_sim::Simulator;
use tpu_workloads::production_apps;

fn bench_compile() {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let group = Group::new("compile").measurement_time(Duration::from_secs(2));
    for app in production_apps() {
        let graph = app.build(8).expect("builds");
        group.bench(app.spec.name, || {
            let exe = compile(&graph, &chip, &options).expect("compiles");
            exe.plan().len()
        });
    }
}

fn bench_simulate() {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let sim = Simulator::new(chip.clone());
    let group = Group::new("simulate").measurement_time(Duration::from_secs(2));
    for app in production_apps() {
        let graph = app.build(8).expect("builds");
        let exe = compile(&graph, &chip, &options).expect("compiles");
        group.bench(app.spec.name, || {
            sim.run(exe.plan()).expect("simulates").seconds
        });
    }
}

fn bench_isa_round_trip() {
    let chip = catalog::tpu_v4i();
    let graph = production_apps()[0].build(8).expect("builds");
    let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
    let group = Group::new("isa").measurement_time(Duration::from_secs(2));
    group.bench("encode+decode", || {
        let bytes = exe.binary().expect("encodes");
        tpu_isa::decode(&bytes, Generation::TpuV4i)
            .expect("decodes")
            .len()
    });
}

fn bench_numerics() {
    let xs: Vec<f32> = (0..1_000_000)
        .map(|i| ((i * 2_654_435_761usize) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let group = Group::new("numerics").measurement_time(Duration::from_secs(2));
    group.bench("quantize/per-tensor-1M", || {
        Quantized::per_tensor(&xs).expect("finite").codes.len()
    });
    group.bench("bf16/convert-1M", || {
        xs.iter()
            .map(|&x| Bf16::from_f32(x).to_bits() as u32)
            .sum::<u32>()
    });
}

fn bench_serving() {
    let model = LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid");
    let group = Group::new("serving").measurement_time(Duration::from_secs(2));
    group.bench("des-10k-requests", || {
        simulate(
            &model,
            &ServingConfig {
                arrival_rate_rps: 5000.0,
                max_batch: 32,
                batch_timeout_s: 0.002,
                requests: 10_000,
                seed: 1,
            },
        )
        .expect("valid config")
        .p99_s
    });
}

fn main() {
    bench_compile();
    bench_simulate();
    bench_isa_round_trip();
    bench_numerics();
    bench_serving();
}
