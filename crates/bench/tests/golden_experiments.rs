//! Golden-regression net over the experiments binary: `--quick` output
//! is byte-diffed against a checked-in snapshot, so any drift in the
//! analytic tables or the recorded-lifecycle experiment (E24) fails CI
//! with a readable diff.
//!
//! Refresh the snapshot after an intentional change with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p tpu-bench --test golden_experiments
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("experiments_quick.txt")
}

fn run_quick(extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("--quick")
        .args(extra)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "experiments --quick failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// First differing line, for a readable failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}:\n  golden: {la}\n  actual: {lb}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs actual {}",
        a.lines().count(),
        b.lines().count()
    )
}

#[test]
fn quick_experiments_match_golden_snapshot() {
    let actual = run_quick(&[]);
    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); bless it with \
             GOLDEN_BLESS=1 cargo test -p tpu-bench --test golden_experiments",
            path.display()
        )
    });
    assert!(
        golden == actual,
        "experiments --quick drifted from the golden snapshot \
         (intentional? re-bless with GOLDEN_BLESS=1); {}",
        first_diff(&golden, &actual)
    );
}

#[test]
fn quick_experiments_parallel_is_byte_identical_to_sequential() {
    // The determinism contract the telemetry layer and the `--jobs`
    // scheduler both promise: worker threads change nothing.
    let sequential = run_quick(&["--jobs", "1"]);
    let parallel = run_quick(&["--jobs", "4"]);
    assert!(
        sequential == parallel,
        "--jobs 4 diverged from sequential output; {}",
        first_diff(&sequential, &parallel)
    );
}
