//! Multi-seed replication: run N seeded replications of a simulation in
//! parallel and fold the results into statistical envelopes.
//!
//! Every simulator in this workspace is a pure function of its config
//! and seed, so a sweep point's error bars come from replicating it
//! under independent arrival/fault draws. [`MultiSeedRunner`] owns the
//! seed derivation (a splitmix64 lane per replication, so adding
//! replications never perturbs earlier ones) and the fan-out
//! ([`tpu_par::par_map`]); [`Envelope`] is the mean/p50/p99 fold with a
//! normal-approximation confidence interval.
//!
//! Determinism contract: [`MultiSeedRunner::run`] returns results in
//! seed order regardless of worker count, so parallel sweeps are
//! byte-identical to sequential ones (`TPU_SIM_THREADS=1`). The
//! property tests in `tests/determinism.rs` pin this.

/// Derives the deterministic seed lanes for replications.
///
/// splitmix64 (the canonical xoshiro seeding expander): statistically
/// independent streams from consecutive lane indices, with lane 0
/// passing the base seed through unchanged so a single-replication run
/// reproduces the canonical single-seed result exactly.
fn seed_lane(base: u64, lane: u64) -> u64 {
    if lane == 0 {
        return base;
    }
    let mut z = base.wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs N seeded replications of a simulation, in parallel, in
/// deterministic seed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiSeedRunner {
    base_seed: u64,
    replications: usize,
}

impl MultiSeedRunner {
    /// A runner whose first replication uses `base_seed` itself (so the
    /// canonical single-seed run is always replication 0) and whose
    /// remaining replications use splitmix64-derived lanes.
    ///
    /// # Panics
    ///
    /// Panics if `replications == 0`.
    pub fn new(base_seed: u64, replications: usize) -> MultiSeedRunner {
        assert!(replications > 0, "need at least one replication");
        MultiSeedRunner {
            base_seed,
            replications,
        }
    }

    /// The replication count.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The seed of each replication, in order.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.replications as u64)
            .map(|lane| seed_lane(self.base_seed, lane))
            .collect()
    }

    /// Runs `f` once per seed on the [`tpu_par`] worker pool, returning
    /// results in seed order (byte-identical to [`Self::run_sequential`]
    /// for pure `f`).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        tpu_par::par_map(&self.seeds(), |&seed| f(seed))
    }

    /// [`Self::run`] on the caller's thread only — the reference
    /// implementation parallel runs must match.
    pub fn run_sequential<T, F>(&self, f: F) -> Vec<T>
    where
        F: Fn(u64) -> T,
    {
        self.seeds().into_iter().map(f).collect()
    }

    /// Replicates a scalar metric and folds it into an [`Envelope`].
    pub fn envelope<F>(&self, f: F) -> Envelope
    where
        F: Fn(u64) -> f64 + Sync,
    {
        Envelope::from_samples(&self.run(f))
    }
}

/// Summary of one scalar metric across seeded replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Number of replications folded.
    pub n: usize,
    /// Mean across replications.
    pub mean: f64,
    /// Median across replications (lower-of-middle-two for even n).
    pub p50: f64,
    /// 99th-percentile replication (nearest-rank; the max for small n).
    pub p99: f64,
    /// Smallest replication.
    pub min: f64,
    /// Largest replication.
    pub max: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// on the mean: `1.96 * std_dev / sqrt(n)`.
    pub ci95: f64,
}

impl Envelope {
    /// Folds replication samples into an envelope.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set — an envelope of nothing is a bug
    /// in the caller, not a value.
    pub fn from_samples(samples: &[f64]) -> Envelope {
        assert!(!samples.is_empty(), "envelope needs at least one sample");
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let rank = |q: f64| tpu_numerics::stats::nearest_rank_index(q, n);
        Envelope {
            n,
            mean,
            p50: sorted[rank(0.50)],
            p99: sorted[rank(0.99)],
            min: sorted[0],
            max: sorted[n - 1],
            std_dev,
            ci95: 1.96 * std_dev / (n as f64).sqrt(),
        }
    }

    /// Renders `mean ±ci95` with `digits` fractional digits.
    pub fn pm(&self, digits: usize) -> String {
        format!("{:.digits$} ±{:.digits$}", self.mean, self.ci95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_zero_is_the_base_seed() {
        let r = MultiSeedRunner::new(17, 5);
        let seeds = r.seeds();
        assert_eq!(seeds.len(), 5);
        assert_eq!(seeds[0], 17);
        // Lanes are distinct (splitmix64 is a bijection per lane).
        let mut uniq = seeds;
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    fn seeds_are_a_prefix_stable_sequence() {
        // Growing the replication count must not change earlier lanes.
        let small = MultiSeedRunner::new(99, 3).seeds();
        let big = MultiSeedRunner::new(99, 8).seeds();
        assert_eq!(&big[..3], &small[..]);
    }

    #[test]
    fn run_matches_sequential() {
        let r = MultiSeedRunner::new(7, 16);
        let par = r.run(|seed| seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let seq = r.run_sequential(|seed| seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        assert_eq!(par, seq);
    }

    #[test]
    fn envelope_folds_known_samples() {
        let e = Envelope::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.n, 5);
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert_eq!(e.p50, 3.0);
        assert_eq!(e.p99, 5.0);
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 5.0);
        // Sample std dev of 1..5 is sqrt(2.5).
        assert!((e.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((e.ci95 - 1.96 * 2.5f64.sqrt() / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_envelope_is_degenerate() {
        let e = Envelope::from_samples(&[42.0]);
        assert_eq!(e.n, 1);
        assert_eq!(e.mean, 42.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.ci95, 0.0);
        assert_eq!(e.p50, 42.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        MultiSeedRunner::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_envelope_rejected() {
        Envelope::from_samples(&[]);
    }
}
