//! A self-contained micro-benchmark harness (criterion is unavailable
//! offline): warm up, run timed batches, report mean and spread.
//!
//! Deliberately tiny — wall-clock `Instant` batches with outlier-robust
//! reporting (median of batch means), good enough to catch order-of-
//! magnitude regressions in the substrates.

use std::time::{Duration, Instant};

/// One benchmark group, printed as `group/name  <stats>` per function.
pub struct Group {
    name: String,
    /// Target wall-clock spent measuring each function.
    measurement: Duration,
    /// Batches the measurement window is split into.
    batches: usize,
}

impl Group {
    /// Creates a group with default settings (1 s per function).
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_owned(),
            measurement: Duration::from_secs(1),
            batches: 10,
        }
    }

    /// Sets the measurement window per benchmarked function.
    pub fn measurement_time(mut self, d: Duration) -> Group {
        self.measurement = d;
        self
    }

    /// Times `f`, printing `group/name  median ± spread  (iters)`.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: find an iteration count whose batch
        // takes roughly measurement/batches.
        let calibrate_until = Instant::now() + self.measurement / 10;
        let mut iters = 0u64;
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if Instant::now() >= calibrate_until {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let batch_budget = self.measurement.as_secs_f64() / self.batches as f64;
        let batch_iters = ((batch_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut means: Vec<f64> = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            means.push(start.elapsed().as_secs_f64() / batch_iters as f64);
        }
        means.sort_by(|a, b| a.total_cmp(b));
        let median = means[means.len() / 2];
        let min = means[0];
        let max = means[means.len() - 1];
        println!(
            "{}/{name:<24} {:>12}/iter  [{} .. {}]  ({batch_iters} iters x {} batches)",
            self.name,
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            self.batches,
        );
    }
}

/// Formats seconds with an appropriate unit.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        let g = Group::new("self").measurement_time(Duration::from_millis(20));
        g.bench("noop-ish", || std::hint::black_box(1 + 1));
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
