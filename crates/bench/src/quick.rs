//! A self-contained micro-benchmark harness (criterion is unavailable
//! offline): warm up, run timed batches, report mean and spread.
//!
//! Deliberately tiny — wall-clock `Instant` batches with outlier-robust
//! reporting (median of batch means), good enough to catch order-of-
//! magnitude regressions in the substrates.
//!
//! [`Group::bench`] also *returns* its measurement as a [`Stat`], and
//! [`stats_to_json`] serializes a batch of them (JSON is hand-rolled —
//! serde is unavailable offline), so bench binaries can emit
//! machine-readable baselines like `BENCH_serving.json` for CI
//! regression tracking.

use std::time::{Duration, Instant};

/// One measurement: what `group/name` cost per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Stat {
    /// The group the benchmark ran under.
    pub group: String,
    /// The benchmark's name within the group.
    pub name: String,
    /// Median of batch means, seconds per iteration.
    pub median_s: f64,
    /// Fastest batch mean, seconds per iteration.
    pub min_s: f64,
    /// Slowest batch mean, seconds per iteration.
    pub max_s: f64,
    /// Throughput at the median: iterations per second.
    pub iters_per_sec: f64,
    /// Units of work (e.g. DES events) one iteration processes, if the
    /// caller attached a denominator via [`Stat::with_units`].
    pub units_per_iter: Option<u64>,
}

impl Stat {
    /// Attaches a work denominator so the stat can report ns/unit and
    /// units/sec (e.g. DES events per simulation run).
    pub fn with_units(mut self, units_per_iter: u64) -> Stat {
        self.units_per_iter = Some(units_per_iter);
        self
    }

    /// Median nanoseconds per work unit, if a denominator is attached.
    pub fn ns_per_unit(&self) -> Option<f64> {
        self.units_per_iter
            .filter(|&u| u > 0)
            .map(|u| self.median_s / u as f64 * 1e9)
    }

    /// Fastest-batch nanoseconds per work unit, if a denominator is
    /// attached. Wall-clock noise (scheduler preemption, frequency
    /// dips, co-tenants) only ever *inflates* a batch mean, so the
    /// minimum is the robust one-sided estimator regression gates
    /// compare at tight tolerances.
    pub fn min_ns_per_unit(&self) -> Option<f64> {
        self.units_per_iter
            .filter(|&u| u > 0)
            .map(|u| self.min_s / u as f64 * 1e9)
    }

    /// Work units per second at the median, if a denominator is attached.
    pub fn units_per_sec(&self) -> Option<f64> {
        self.units_per_iter
            .filter(|&u| u > 0)
            .map(|u| u as f64 / self.median_s)
    }

    fn json(&self) -> String {
        let mut fields = vec![
            format!("\"group\": {}", json_str(&self.group)),
            format!("\"name\": {}", json_str(&self.name)),
            format!("\"ns_per_iter\": {:.1}", self.median_s * 1e9),
            format!("\"min_ns_per_iter\": {:.1}", self.min_s * 1e9),
            format!("\"max_ns_per_iter\": {:.1}", self.max_s * 1e9),
            format!("\"iters_per_sec\": {:.3}", self.iters_per_sec),
        ];
        if let Some(u) = self.units_per_iter {
            fields.push(format!("\"events_per_iter\": {u}"));
        }
        if let Some(ns) = self.ns_per_unit() {
            fields.push(format!("\"ns_per_event\": {ns:.2}"));
        }
        if let Some(eps) = self.units_per_sec() {
            fields.push(format!("\"events_per_sec\": {eps:.0}"));
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// Escapes a string for JSON (the names here are ASCII identifiers, but
/// stay correct anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes bench stats plus named scalar extras (sweep wall-clocks
/// and the like) into the `BENCH_*.json` baseline format.
pub fn stats_to_json(schema: &str, stats: &[Stat], extras: &[(&str, f64)]) -> String {
    let benches: Vec<String> = stats.iter().map(|s| format!("    {}", s.json())).collect();
    let extra: Vec<String> = extras
        .iter()
        .map(|(k, v)| format!("    {}: {v:.6}", json_str(k)))
        .collect();
    format!(
        "{{\n  \"schema\": {},\n  \"benches\": [\n{}\n  ],\n  \"extras\": {{\n{}\n  }}\n}}\n",
        json_str(schema),
        benches.join(",\n"),
        extra.join(",\n"),
    )
}

/// One benchmark group, printed as `group/name  <stats>` per function.
pub struct Group {
    name: String,
    /// Target wall-clock spent measuring each function.
    measurement: Duration,
    /// Batches the measurement window is split into.
    batches: usize,
}

impl Group {
    /// Creates a group with default settings (1 s per function).
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_owned(),
            measurement: Duration::from_secs(1),
            batches: 10,
        }
    }

    /// Sets the measurement window per benchmarked function.
    pub fn measurement_time(mut self, d: Duration) -> Group {
        self.measurement = d;
        self
    }

    /// Times `f`, printing `group/name  median ± spread  (iters,
    /// throughput)` and returning the measurement.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Stat {
        // Warm-up and calibration: find an iteration count whose batch
        // takes roughly measurement/batches.
        let calibrate_until = Instant::now() + self.measurement / 10;
        let mut iters = 0u64;
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if Instant::now() >= calibrate_until {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let batch_budget = self.measurement.as_secs_f64() / self.batches as f64;
        let batch_iters = ((batch_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut means: Vec<f64> = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            means.push(start.elapsed().as_secs_f64() / batch_iters as f64);
        }
        means.sort_by(|a, b| a.total_cmp(b));
        let median = means[means.len() / 2];
        let min = means[0];
        let max = means[means.len() - 1];
        let iters_per_sec = 1.0 / median.max(1e-12);
        println!(
            "{}/{name:<24} {:>12}/iter  [{} .. {}]  ({batch_iters} iters x {} batches, \
             {iters_per_sec:.0} iters/s)",
            self.name,
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            self.batches,
        );
        Stat {
            group: self.name.clone(),
            name: name.to_owned(),
            median_s: median,
            min_s: min,
            max_s: max,
            iters_per_sec,
            units_per_iter: None,
        }
    }
}

/// Formats seconds with an appropriate unit.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        let g = Group::new("self").measurement_time(Duration::from_millis(20));
        let stat = g.bench("noop-ish", || std::hint::black_box(1 + 1));
        assert_eq!(stat.group, "self");
        assert_eq!(stat.name, "noop-ish");
        assert!(stat.median_s > 0.0);
        assert!(stat.min_s <= stat.median_s && stat.median_s <= stat.max_s);
        assert!((stat.iters_per_sec - 1.0 / stat.median_s).abs() < 1.0);
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }

    #[test]
    fn stats_serialize_to_json() {
        let stat = Stat {
            group: "serving".to_owned(),
            name: "fleet-20k".to_owned(),
            median_s: 1.5e-3,
            min_s: 1.4e-3,
            max_s: 1.6e-3,
            iters_per_sec: 1.0 / 1.5e-3,
            units_per_iter: None,
        }
        .with_units(30_000);
        assert!((stat.ns_per_unit().unwrap() - 50.0).abs() < 1e-9);
        assert!((stat.units_per_sec().unwrap() - 2e7).abs() < 1.0);
        let json = stats_to_json("tpu-bench/serving-v1", &[stat], &[("sweep_wall_s", 0.25)]);
        assert!(json.contains("\"schema\": \"tpu-bench/serving-v1\""));
        assert!(json.contains("\"ns_per_event\": 50.00"));
        assert!(json.contains("\"events_per_iter\": 30000"));
        assert!(json.contains("\"sweep_wall_s\": 0.250000"));
        // Well-formed enough for a line-oriented CI diff: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\there"), "\"tab\\u0009here\"");
    }
}
