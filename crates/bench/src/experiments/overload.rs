//! E21: the goodput cliff — overload behavior with and without load
//! shedding.
//!
//! Lesson 10 at fleet scale: a server that keeps serving every request
//! under overload spends its cycles on work that already blew the SLO,
//! so *goodput* (in-deadline completions) collapses past saturation
//! even though throughput stays flat. Shedding expired requests and
//! capping the queue turns the cliff into a plateau: offered load
//! beyond capacity is turned away (some retried) and everything that is
//! served still counts.

use tpu_arch::catalog;
use tpu_core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpu_hlo::CompilerOptions;
use tpu_workloads::zoo;

use crate::multiseed::{Envelope, MultiSeedRunner};
use crate::util::{f, Table};

/// One point of the E21 sweep.
///
/// Scalar fields are the canonical replication (seed
/// [`DEFAULT_SWEEP_SEED`], always replication 0 of the runner) so the
/// published table stays reproducible; the envelopes fold all
/// [`REPLICATIONS`] arrival seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSweepPoint {
    /// Offered load as a multiple of ideal capacity.
    pub load_factor: f64,
    /// Whether overload protection (shed + cap + retry) was on.
    pub shedding: bool,
    /// In-deadline completions per second.
    pub goodput_rps: f64,
    /// All completions per second.
    pub throughput_rps: f64,
    /// Requests permanently shed.
    pub shed: usize,
    /// Retries scheduled.
    pub retries: u64,
    /// Completions that missed the deadline.
    pub late: u64,
    /// Simulated p99 of completed requests, ms.
    pub p99_ms: f64,
    /// Goodput across all seeded replications.
    pub goodput_env: Envelope,
    /// p99 latency (ms) across all seeded replications.
    pub p99_env: Envelope,
}

/// The load factors the sweep visits: below, at, and past saturation.
pub const LOAD_FACTORS: [f64; 6] = [0.5, 0.8, 1.0, 1.2, 1.5, 2.0];

/// Seeded replications per sweep point.
pub const REPLICATIONS: usize = 5;

/// E21 data: BERT0 on TPUv4i, offered 0.5x–2x its SLO-capped capacity,
/// with and without overload protection. The app is profiled once; each
/// grid point then replicates the DES run across [`REPLICATIONS`]
/// arrival seeds in parallel.
pub fn overload_data() -> Vec<OverloadSweepPoint> {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let profiled = ProfiledApp::new(&app, &chip, &options)
        .expect("BERT0 profiles and the sweep config is valid");
    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let mut out = Vec::new();
    for shedding in [false, true] {
        for factor in LOAD_FACTORS {
            let reps = runner.run(|seed| {
                let p = profiled
                    .overload_point(factor, shedding, 4000, seed)
                    .expect("BERT0 profiles and the sweep config is valid");
                assert!(
                    p.report.conservation_holds(),
                    "lost requests at {factor}x (seed {seed})"
                );
                p
            });
            let canonical = &reps[0];
            out.push(OverloadSweepPoint {
                load_factor: factor,
                shedding,
                goodput_rps: canonical.report.goodput_rps,
                throughput_rps: canonical.report.throughput_rps,
                shed: canonical.report.shed,
                retries: canonical.report.metrics.retries.get(),
                late: canonical.report.metrics.completed_late.get(),
                p99_ms: canonical.report.p99_s * 1e3,
                goodput_env: Envelope::from_samples(
                    &reps
                        .iter()
                        .map(|p| p.report.goodput_rps)
                        .collect::<Vec<_>>(),
                ),
                p99_env: Envelope::from_samples(
                    &reps
                        .iter()
                        .map(|p| p.report.p99_s * 1e3)
                        .collect::<Vec<_>>(),
                ),
            });
        }
    }
    out
}

/// E21 (extension) — the goodput cliff with and without shedding.
pub fn e21_overload() -> String {
    let mut t = Table::new(&[
        "policy",
        "load",
        "goodput/s",
        "goodput ±ci95",
        "thpt/s",
        "shed",
        "retries",
        "late",
        "p99 ms",
    ]);
    let data = overload_data();
    let n = data.first().map_or(0, |p| p.goodput_env.n);
    for p in data {
        t.row(vec![
            if p.shedding {
                "shed+retry"
            } else {
                "serve all"
            }
            .to_owned(),
            format!("{}x", f(p.load_factor, 1)),
            f(p.goodput_rps, 0),
            p.goodput_env.pm(0),
            f(p.throughput_rps, 0),
            p.shed.to_string(),
            p.retries.to_string(),
            p.late.to_string(),
            f(p.p99_ms, 2),
        ]);
    }
    format!(
        "E21 (extension) — goodput under overload, BERT0 on TPUv4i (Lesson 10 at fleet scale; \
         {n} seeded replications per point)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_shedding_flattens_the_goodput_cliff() {
        let data = overload_data();
        let at = |factor: f64, shedding: bool| {
            data.iter()
                .find(|p| p.load_factor == factor && p.shedding == shedding)
                .unwrap()
        };
        // Below saturation the policies agree: nothing to shed.
        let below_plain = at(0.5, false);
        let below_shed = at(0.5, true);
        assert_eq!(below_shed.shed, 0);
        assert!(
            (below_plain.goodput_rps - below_shed.goodput_rps).abs()
                < 0.05 * below_plain.goodput_rps
        );
        // Past saturation, serve-all collapses: goodput at 2x load falls
        // far below its sub-saturation peak...
        let plain_peak = at(0.8, false).goodput_rps;
        let plain_over = at(2.0, false).goodput_rps;
        assert!(
            plain_over < 0.5 * plain_peak,
            "no cliff without shedding: {plain_over} vs peak {plain_peak}"
        );
        // ...while shedding holds goodput near the peak through 2x.
        let shed_peak = at(0.8, true).goodput_rps;
        let shed_over = at(2.0, true).goodput_rps;
        assert!(
            shed_over > 0.7 * shed_peak,
            "shedding should hold the plateau: {shed_over} vs peak {shed_peak}"
        );
        // The protected fleet visibly sheds and retries under overload.
        assert!(at(2.0, true).shed > 0);
        assert!(at(2.0, true).retries > 0);
        // Serve-all never sheds; it just serves late.
        for factor in LOAD_FACTORS {
            assert_eq!(at(factor, false).shed, 0);
        }
        assert!(at(2.0, false).late > 0);

        // Envelopes fold every replication, contain the canonical run,
        // and the goodput gap at 2x holds across the whole envelope —
        // the shedding fleet's *worst* seed beats serve-all's *best*.
        for p in &data {
            assert_eq!(p.goodput_env.n, REPLICATIONS);
            assert!(p.goodput_env.min <= p.goodput_rps && p.goodput_rps <= p.goodput_env.max);
            assert!(p.goodput_env.min <= p.goodput_env.mean);
            assert!(p.goodput_env.mean <= p.goodput_env.max);
        }
        assert!(at(2.0, true).goodput_env.min > at(2.0, false).goodput_env.max);
    }
}
