//! E19 (extension): DNN workloads evolve (Lesson 9).
//!
//! TPUv1 was designed against a 2015 mix of MLPs, LSTMs and CNNs; by
//! 2020 transformers carried 29% of the load and several apps had
//! outgrown post-training int8. A generation's *coverage* of the 2020
//! production mix — the share it can serve at production quality with
//! resident weights — quantifies the over-specialization risk the
//! lesson warns about.

use tpu_arch::{catalog, ChipConfig};
use tpu_numerics::DType;
use tpu_workloads::{production_apps, App};

use crate::util::{f, Table};

/// Why a chip cannot serve an app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// The app needs floating point the chip lacks (Lesson 6 meets 9).
    NeedsFloat,
    /// The app's weights exceed the chip's HBM.
    WeightsTooBig,
}

/// One generation's coverage of the 2020 production mix.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRow {
    /// Chip name.
    pub chip: String,
    /// Deployment year.
    pub year: u32,
    /// Share of the 2020 mix the chip serves at production quality.
    pub servable_share: f64,
    /// Share of the 2020 mix that did not exist when the chip shipped
    /// (the chip was designed blind to it).
    pub unseen_share: f64,
    /// Apps the chip cannot serve, with reasons.
    pub blocked: Vec<(String, Blocker)>,
}

/// Whether a chip can serve an app at production quality with the
/// weights resident.
pub fn blocker(app: &App, chip: &ChipConfig) -> Option<Blocker> {
    let has_float = chip.native_types.iter().any(|t| t.is_float());
    if !app.spec.int8_servable && !has_float {
        return Some(Blocker::NeedsFloat);
    }
    let dtype = if app.spec.int8_servable && chip.native_types.contains(&DType::Int8) {
        DType::Int8
    } else {
        DType::Bf16
    };
    let weights = app
        .build_with(1, dtype)
        .expect("zoo apps build")
        .weight_bytes();
    if weights > chip.hbm.capacity_bytes {
        return Some(Blocker::WeightsTooBig);
    }
    None
}

/// E19 data: per-generation coverage of the 2020 mix.
pub fn e19_data() -> Vec<CoverageRow> {
    let apps = production_apps();
    catalog::tpu_generations()
        .into_iter()
        .map(|chip| {
            let mut servable_share = 0.0;
            let mut unseen_share = 0.0;
            let mut blocked = Vec::new();
            for app in &apps {
                match blocker(app, &chip) {
                    None => servable_share += app.spec.fleet_share,
                    Some(b) => blocked.push((app.spec.name.to_owned(), b)),
                }
                if app.spec.since_year > chip.year {
                    unseen_share += app.spec.fleet_share;
                }
            }
            CoverageRow {
                chip: chip.name.clone(),
                year: chip.year,
                servable_share,
                unseen_share,
                blocked,
            }
        })
        .collect()
}

/// E19 — workload evolution: coverage of the 2020 mix per generation.
pub fn e19_workload_evolution() -> String {
    let mut t = Table::new(&[
        "chip",
        "year",
        "serves 2020 mix",
        "unseen at design",
        "blocked apps",
    ]);
    for r in e19_data() {
        let blocked = if r.blocked.is_empty() {
            "-".to_owned()
        } else {
            r.blocked
                .iter()
                .map(|(name, b)| {
                    format!(
                        "{name}({})",
                        match b {
                            Blocker::NeedsFloat => "fp",
                            Blocker::WeightsTooBig => "mem",
                        }
                    )
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.row(vec![
            r.chip,
            r.year.to_string(),
            format!("{}%", f(r.servable_share * 100.0, 0)),
            format!("{}%", f(r.unseen_share * 100.0, 0)),
            blocked,
        ]);
    }
    format!(
        "E19 (extension) — workloads evolve (Lesson 9): coverage of the 2020 production mix\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpuv1_cannot_serve_the_fp_apps() {
        let rows = e19_data();
        let v1 = rows.iter().find(|r| r.chip == "TPUv1").unwrap();
        // RNN0 + BERT0 + BERT1 = 53% of the 2020 mix needs floating point.
        assert!(
            (v1.servable_share - 0.47).abs() < 0.01,
            "{}",
            v1.servable_share
        );
        assert_eq!(v1.blocked.len(), 3);
        assert!(v1.blocked.iter().all(|(_, b)| *b == Blocker::NeedsFloat));
        // 45% of the 2020 load (the BERTs plus the 2016 apps) did not
        // exist when TPUv1 shipped in 2015.
        assert!((v1.unseen_share - 0.45).abs() < 0.01);
    }

    #[test]
    fn every_fp_capable_generation_covers_everything() {
        for r in e19_data() {
            if r.chip != "TPUv1" {
                assert!(
                    (r.servable_share - 1.0).abs() < 1e-9,
                    "{}: {}",
                    r.chip,
                    r.servable_share
                );
            }
        }
    }

    #[test]
    fn unseen_share_shrinks_with_newer_chips() {
        let rows = e19_data();
        for pair in rows.windows(2) {
            assert!(pair[1].unseen_share <= pair[0].unseen_share);
        }
        let v4i = rows.iter().find(|r| r.chip == "TPUv4i").unwrap();
        assert_eq!(v4i.unseen_share, 0.0);
    }
}
