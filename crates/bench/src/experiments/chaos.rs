//! E22: chaos — goodput and p99 under injected server faults, with and
//! without failover.
//!
//! The paper's availability framing (and TPUv4's routing around failed
//! machines) at serving scale: machines crash, hang, and slow down, and
//! the fleet either *detects and reroutes* (health checks pull dead
//! replicas from rotation, their queues redistribute to survivors) or it
//! *serves through* (an oblivious router keeps feeding dead replicas
//! until every request routed there expires). Both fleets face the
//! **identical** injected fault plan — materialization is independent of
//! the failover switch — so the gap is pure failover value.
//!
//! Paper-shape expectation: failover holds goodput near the no-fault
//! plateau (survivors absorb the rerouted traffic up to their capacity)
//! while serve-through collapses roughly with the fraction of traffic
//! routed at dead machines; past the first crash the failover fleet
//! retains at least 2x the goodput of the oblivious one.

use tpu_arch::catalog;
use tpu_core::{ChaosPoint, ProfiledApp, DEFAULT_SWEEP_SEED};
use tpu_hlo::CompilerOptions;
use tpu_serving::faults::{FailoverConfig, FaultKind, FaultPlan, MtbfFaults, ScheduledFault};
use tpu_workloads::zoo;

use crate::multiseed::{Envelope, MultiSeedRunner};
use crate::util::{f, Table};

/// One point of the E22 chaos sweep.
///
/// Scalar fields are the canonical replication (arrival seed
/// [`DEFAULT_SWEEP_SEED`], always replication 0); `goodput_env` folds
/// all [`REPLICATIONS`] arrival seeds. The fault plan (including its
/// fault seed) is identical across replications — only arrivals vary —
/// so failover-on/off comparisons stay apples-to-apples per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSweepPoint {
    /// Human-readable fault scenario.
    pub scenario: String,
    /// Whether health checking + failover routing was on.
    pub failover: bool,
    /// In-deadline completions per second.
    pub goodput_rps: f64,
    /// All completions per second.
    pub throughput_rps: f64,
    /// Simulated p99 of completed requests, ms.
    pub p99_ms: f64,
    /// Requests permanently lost to shedding.
    pub shed: usize,
    /// Requests permanently lost to crashes mid-service.
    pub failed: usize,
    /// Faults the health checker detected.
    pub detected: u64,
    /// Faults recovered (server back to Up).
    pub recovered: u64,
    /// Requests drained from dead servers' queues onto survivors.
    pub redistributed: u64,
    /// Mean per-server uptime fraction over the run.
    pub fleet_availability: f64,
    /// Goodput across all seeded replications.
    pub goodput_env: Envelope,
}

/// Replicas in the E22 fleet.
pub const SERVERS: usize = 4;
/// Offered load as a multiple of *one* replica's capacity (1.35x: more
/// than any single survivor can serve, well under the healthy fleet's
/// 4x — the regime where failover has room to matter).
pub const LOAD_FACTOR: f64 = 1.35;
/// Requests per run.
pub const REQUESTS: usize = 6000;
/// Seeded replications per sweep point.
pub const REPLICATIONS: usize = 5;

fn fleet_availability(point: &ChaosPoint) -> f64 {
    let avail = point
        .report
        .metrics
        .per_server_availability(point.report.duration_s);
    avail.iter().sum::<f64>() / avail.len().max(1) as f64
}

/// E22 data: BERT0 on a 4-replica TPUv4i fleet under scheduled crashes
/// and an MTBF sweep, failover on vs off at identical fault plans. The
/// app is profiled once; each scenario then replicates the DES run
/// across [`REPLICATIONS`] arrival seeds in parallel.
pub fn chaos_data() -> Vec<ChaosSweepPoint> {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let profiled = ProfiledApp::new(&app, &chip, &options)
        .expect("BERT0 profiles and the chaos config is valid");
    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let replicate = |plan: &FaultPlan| {
        runner.run(|seed| {
            let p = profiled
                .chaos_point(SERVERS, LOAD_FACTOR, plan, REQUESTS, seed)
                .expect("BERT0 profiles and the chaos config is valid");
            assert!(
                p.report.conservation_holds(),
                "lost requests under fault plan (seed {seed})"
            );
            p
        })
    };
    let point = |scenario: &str, failover: bool, reps: &[ChaosPoint]| {
        let canonical = &reps[0];
        ChaosSweepPoint {
            scenario: scenario.to_owned(),
            failover,
            goodput_rps: canonical.report.goodput_rps,
            throughput_rps: canonical.report.throughput_rps,
            p99_ms: canonical.report.p99_s * 1e3,
            shed: canonical.report.shed,
            failed: canonical.report.failed,
            detected: canonical.report.metrics.failures_detected.get(),
            recovered: canonical.report.metrics.failures_recovered.get(),
            redistributed: canonical.report.metrics.failover_redistributed.get(),
            fleet_availability: fleet_availability(canonical),
            goodput_env: Envelope::from_samples(
                &reps
                    .iter()
                    .map(|p| p.report.goodput_rps)
                    .collect::<Vec<_>>(),
            ),
        }
    };

    // Calibration: the canonical no-fault run sets the wall-clock scale
    // every fault plan is expressed in (replication 0 = canonical seed,
    // so the scale matches the previously published single-seed tables).
    let baseline_reps = replicate(&FaultPlan::none());
    let d = baseline_reps[0].report.duration_s;
    let failover = FailoverConfig {
        enabled: true,
        probe_interval_s: 0.005 * d,
        probe_timeout_s: 0.002 * d,
        recovery_warmup_s: 0.005 * d,
    };

    let crash = |server: usize| ScheduledFault {
        server,
        at_s: 0.1 * d,
        kind: FaultKind::Crash { mttr_s: 10.0 * d },
    };
    let mtbf = |factor: f64| FaultPlan {
        scheduled: Vec::new(),
        mtbf: Some(MtbfFaults {
            mtbf_s: factor * d,
            mttr_s: 0.05 * d,
            horizon_s: d,
        }),
        fault_seed: 7,
        failover,
    };
    let scenarios: Vec<(String, FaultPlan)> = vec![
        (
            "3/4 crash @10%".to_owned(),
            FaultPlan::scheduled(vec![crash(1), crash(2), crash(3)]).with_failover(failover),
        ),
        ("mtbf 0.5x run".to_owned(), mtbf(0.5)),
        ("mtbf 0.2x run".to_owned(), mtbf(0.2)),
    ];

    let mut out = vec![point("no faults", true, &baseline_reps)];
    for (scenario, plan) in scenarios {
        for enabled in [true, false] {
            let plan = if enabled {
                plan.clone()
            } else {
                plan.clone().without_failover()
            };
            out.push(point(&scenario, enabled, &replicate(&plan)));
        }
    }
    out
}

/// E22 (extension) — goodput under injected faults, failover on vs off.
pub fn e22_chaos() -> String {
    let mut t = Table::new(&[
        "scenario",
        "failover",
        "goodput/s",
        "goodput ±ci95",
        "thpt/s",
        "p99 ms",
        "shed",
        "failed",
        "det",
        "rec",
        "redist",
        "avail",
    ]);
    for p in chaos_data() {
        t.row(vec![
            p.scenario.clone(),
            if p.failover { "on" } else { "off" }.to_owned(),
            f(p.goodput_rps, 0),
            p.goodput_env.pm(0),
            f(p.throughput_rps, 0),
            f(p.p99_ms, 2),
            p.shed.to_string(),
            p.failed.to_string(),
            p.detected.to_string(),
            p.recovered.to_string(),
            p.redistributed.to_string(),
            f(p.fleet_availability, 3),
        ]);
    }
    format!(
        "E22 (extension) — chaos: goodput under injected faults, BERT0 x{SERVERS} on TPUv4i \
         ({}x one replica offered; {REPLICATIONS} seeded replications per point)\n{}",
        f(LOAD_FACTOR, 2),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_failover_retains_2x_goodput_past_the_first_crash() {
        let data = chaos_data();
        let at = |scenario: &str, failover: bool| {
            data.iter()
                .find(|p| p.scenario == scenario && p.failover == failover)
                .unwrap()
        };
        let baseline = at("no faults", true);
        assert_eq!(baseline.detected, 0);
        assert!((baseline.fleet_availability - 1.0).abs() < 1e-9);

        // The acceptance bar: same fault plan, same seed; failover keeps
        // >= 2x the goodput of serve-through after 3 of 4 replicas die.
        let on = at("3/4 crash @10%", true);
        let off = at("3/4 crash @10%", false);
        assert!(
            on.goodput_rps >= 2.0 * off.goodput_rps,
            "failover-on {} not >= 2x failover-off {}",
            on.goodput_rps,
            off.goodput_rps
        );
        // The health checker saw all three crashes; the oblivious fleet
        // saw none.
        assert!(on.detected >= 3);
        assert_eq!(off.detected, 0);
        assert!(on.redistributed > 0);
        // Downtime shows up in availability accounting either way.
        assert!(on.fleet_availability < 1.0);
        assert!(off.fleet_availability < 1.0);
        // Failover holds goodput near the no-fault plateau scaled to the
        // surviving capacity; serve-through collapses below half of it.
        assert!(off.goodput_rps < 0.5 * baseline.goodput_rps);

        // MTBF-driven faults: failover never hurts goodput materially.
        for scenario in ["mtbf 0.5x run", "mtbf 0.2x run"] {
            let on = at(scenario, true);
            let off = at(scenario, false);
            assert!(
                on.goodput_rps >= 0.9 * off.goodput_rps,
                "{scenario}: failover {} much worse than off {}",
                on.goodput_rps,
                off.goodput_rps
            );
        }

        // Envelopes fold every replication and contain the canonical
        // run; the crash-scenario failover gap holds envelope-wide.
        for p in &data {
            assert_eq!(p.goodput_env.n, REPLICATIONS);
            assert!(p.goodput_env.min <= p.goodput_rps && p.goodput_rps <= p.goodput_env.max);
        }
        assert!(on.goodput_env.min > off.goodput_env.max);
    }
}
