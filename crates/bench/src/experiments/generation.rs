//! E25: continuous vs static batching for autoregressive serving.
//!
//! Lesson 10 said applications limit latency, not batch size — and
//! autoregressive inference is the workload that turned that lesson into
//! a scheduler design problem. Decode is weight-streaming-bound: every
//! step reads the whole model from HBM whether one request or thirty are
//! in flight, so the *only* way to buy tokens/s is to keep the in-flight
//! batch full. Static batching can't: a batch decodes until its slowest
//! member finishes, and every early finisher pads the batch while new
//! arrivals queue. Continuous batching retires finished requests at step
//! boundaries and admits waiting ones immediately — bounded only by the
//! batch cap and by KV-cache HBM, the resource this sweep deliberately
//! makes scarce.

use tpu_arch::catalog;
use tpu_core::DEFAULT_SWEEP_SEED;
use tpu_numerics::DType;
use tpu_serving::des::{simulate_generation, BatchingMode, GenConfig};
use tpu_serving::genmodel::{GenerationModel, TokenDistribution};
use tpu_serving::latency::{GenLatencyModel, LatencyModel};

use crate::multiseed::{Envelope, MultiSeedRunner};
use crate::util::{f, Table};

/// The v4i-derived generation fixture shared by E25 and the
/// `llm_serving` example.
#[derive(Debug, Clone)]
pub struct GenerationSetup {
    /// Prefill and decode cost curves derived from the v4i datasheet.
    pub lat: GenLatencyModel,
    /// Base config (rate is a placeholder; the sweep scales it).
    pub base: GenConfig,
    /// Analytic capacity estimate, requests/second, used to place the
    /// load factors below/at/past saturation.
    pub capacity_rps: f64,
}

/// Builds the E25 fixture from the TPUv4i chip model: a 2 GiB-weight
/// int8 decoder resident in the chip's 8 GiB HBM, the rest available
/// for KV-cache.
///
/// - one decode step streams the weights once: `weights / hbm_bw`
///   (~3.5 ms), nearly flat in batch — the marginal in-flight request
///   costs only its KV reads;
/// - prefill is compute-bound: `2 FLOPs/param/token` at half of int8
///   peak;
/// - the KV footprint per resident token is sized so KV binds (~20
///   concurrent mean-shaped requests) *below* the batch cap of 24 —
///   admission control, not the cap, is the active constraint.
pub fn v4i_generation_setup() -> GenerationSetup {
    let chip = catalog::tpu_v4i();
    let params: f64 = 2e9;
    let weights_bytes = params as u64; // int8: one byte per parameter
    let kv_capacity_bytes = chip.hbm.capacity_bytes - weights_bytes;

    // Decode: one full weight stream per step, plus a mild batch slope
    // for KV traffic and scheduling overhead.
    let step_base = weights_bytes as f64 / chip.hbm.bandwidth_bps;
    let decode = LatencyModel::from_points(vec![
        (1, 1.02 * step_base),
        (8, 1.10 * step_base),
        (32, 1.45 * step_base),
        (128, 2.60 * step_base),
    ])
    .expect("increasing batches");

    // Prefill: 2 FLOPs per parameter per prompt token at 50% of int8
    // peak, plus a small launch overhead.
    let peak = chip.peak_flops(DType::Int8).expect("v4i serves int8");
    let s_per_token = 2.0 * params / (0.5 * peak);
    let prefill = LatencyModel::from_points(vec![
        (1, 2e-4 + s_per_token),
        (2048, 2e-4 + 2048.0 * s_per_token),
    ])
    .expect("increasing token counts");

    let model = GenerationModel {
        prompt: TokenDistribution::Uniform { min: 64, max: 1024 },
        output: TokenDistribution::Geometric {
            mean: 64.0,
            max: 256,
        },
        kv_bytes_per_token: 512 * 1024,
    };

    // Analytic capacity: each request costs its prefill exclusively plus
    // its share of decode steps at the KV-bound effective batch.
    let mean_prompt = model.prompt.mean_tokens();
    let mean_output = model.output.mean_tokens();
    let kv_tokens = (kv_capacity_bytes / model.kv_bytes_per_token) as f64;
    let max_batch = 24u64;
    let b_eff = (kv_tokens / (mean_prompt + mean_output)).min(max_batch as f64);
    let lat = GenLatencyModel { prefill, decode };
    let step_eff = lat.decode_step_s(b_eff.round() as u64);
    let capacity_rps =
        1.0 / (lat.prefill_s(mean_prompt.round() as u64) + mean_output * step_eff / b_eff);

    GenerationSetup {
        lat,
        base: GenConfig {
            arrival_rate_rps: 1.0,
            requests: REQUESTS,
            seed: DEFAULT_SWEEP_SEED,
            mode: BatchingMode::Continuous,
            max_batch,
            kv_capacity_bytes,
            ttft_slo_s: Some(0.25),
            model,
        },
        capacity_rps,
    }
}

/// One point of the E25 sweep.
///
/// Scalar fields are the canonical replication (seed
/// [`DEFAULT_SWEEP_SEED`], replication 0 of the runner); the envelopes
/// fold all [`REPLICATIONS`] arrival/token seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationSweepPoint {
    /// Offered load as a multiple of estimated capacity.
    pub load_factor: f64,
    /// Static or continuous batching.
    pub mode: BatchingMode,
    /// Completions whose TTFT met the 250 ms SLO, per second.
    pub goodput_rps: f64,
    /// p99 time-to-first-token, ms.
    pub p99_ttft_ms: f64,
    /// p99 time-per-output-token, ms.
    pub p99_tpot_ms: f64,
    /// Generated tokens per second.
    pub tokens_per_s: f64,
    /// Scheduling boundaries blocked on KV capacity.
    pub kv_deferrals: u64,
    /// Mean in-flight batch over decode steps.
    pub mean_decode_batch: f64,
    /// Goodput across all seeded replications.
    pub goodput_env: Envelope,
    /// p99 TTFT (ms) across all seeded replications.
    pub ttft_env: Envelope,
    /// p99 TPOT (ms) across all seeded replications.
    pub tpot_env: Envelope,
}

/// The load factors the sweep visits: below, at, and past saturation.
pub const LOAD_FACTORS: [f64; 4] = [0.6, 1.0, 1.5, 2.0];

/// Seeded replications per sweep point.
pub const REPLICATIONS: usize = 5;

/// Requests per run.
pub const REQUESTS: usize = 600;

/// E25 data: the 2 GiB int8 decoder on TPUv4i, offered 0.6x–2x its
/// estimated capacity under static and continuous batching. Every run
/// asserts per-token conservation before its numbers are folded.
pub fn generation_data() -> Vec<GenerationSweepPoint> {
    let setup = v4i_generation_setup();
    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let mut out = Vec::new();
    for mode in [BatchingMode::Static, BatchingMode::Continuous] {
        for factor in LOAD_FACTORS {
            let reps = runner.run(|seed| {
                let mut cfg = setup.base;
                cfg.mode = mode;
                cfg.seed = seed;
                cfg.arrival_rate_rps = factor * setup.capacity_rps;
                let r = simulate_generation(&setup.lat, &cfg).expect("sweep config is valid");
                assert!(
                    r.conservation_holds(),
                    "lost tokens at {factor}x {mode:?} (seed {seed})"
                );
                r
            });
            let canonical = &reps[0];
            out.push(GenerationSweepPoint {
                load_factor: factor,
                mode,
                goodput_rps: canonical.goodput_rps,
                p99_ttft_ms: canonical.p99_ttft_s * 1e3,
                p99_tpot_ms: canonical.p99_tpot_s * 1e3,
                tokens_per_s: canonical.tokens_per_s,
                kv_deferrals: canonical.metrics.kv_deferrals.get(),
                mean_decode_batch: canonical.metrics.decode_batch.mean(),
                goodput_env: Envelope::from_samples(
                    &reps.iter().map(|r| r.goodput_rps).collect::<Vec<_>>(),
                ),
                ttft_env: Envelope::from_samples(
                    &reps.iter().map(|r| r.p99_ttft_s * 1e3).collect::<Vec<_>>(),
                ),
                tpot_env: Envelope::from_samples(
                    &reps.iter().map(|r| r.p99_tpot_s * 1e3).collect::<Vec<_>>(),
                ),
            });
        }
    }
    out
}

/// E25 (extension) — continuous vs static batching under overload.
pub fn e25_generation() -> String {
    let mut t = Table::new(&[
        "batching",
        "load",
        "goodput/s",
        "goodput ±ci95",
        "p99 TTFT ms",
        "TTFT ±ci95",
        "p99 TPOT ms",
        "tok/s",
        "kv defers",
        "batch",
    ]);
    let data = generation_data();
    let n = data.first().map_or(0, |p| p.goodput_env.n);
    for p in &data {
        t.row(vec![
            match p.mode {
                BatchingMode::Static => "static",
                BatchingMode::Continuous => "continuous",
            }
            .to_owned(),
            format!("{}x", f(p.load_factor, 1)),
            f(p.goodput_rps, 1),
            p.goodput_env.pm(1),
            f(p.p99_ttft_ms, 0),
            p.ttft_env.pm(0),
            f(p.p99_tpot_ms, 2),
            f(p.tokens_per_s, 0),
            p.kv_deferrals.to_string(),
            f(p.mean_decode_batch, 1),
        ]);
    }
    format!(
        "E25 (extension) — continuous vs static batching, 2 GiB int8 decoder on TPUv4i \
         (decode loop with KV-cache admission; {n} seeded replications per point)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_kv_bound_below_the_batch_cap() {
        let s = v4i_generation_setup();
        assert!(s.base.validate().is_ok());
        // KV holds ~20 mean-shaped requests: less than the cap of 24, so
        // admission control is the active constraint.
        let kv_tokens = s.base.kv_capacity_bytes / s.base.model.kv_bytes_per_token;
        let mean_tokens = s.base.model.prompt.mean_tokens() + s.base.model.output.mean_tokens();
        let concurrent = kv_tokens as f64 / mean_tokens;
        assert!(
            concurrent < s.base.max_batch as f64,
            "KV fits {concurrent:.1} requests, cap {}",
            s.base.max_batch
        );
        assert!(concurrent > 4.0, "KV too tight to batch at all");
        // Capacity lands in a plausible band for ~3.5 ms steps.
        assert!(
            s.capacity_rps > 5.0 && s.capacity_rps < 200.0,
            "capacity {} rps",
            s.capacity_rps
        );
    }

    #[test]
    fn e25_continuous_beats_static_past_saturation() {
        let data = generation_data();
        let at = |factor: f64, mode: BatchingMode| {
            data.iter()
                .find(|p| p.load_factor == factor && p.mode == mode)
                .unwrap()
        };
        for factor in [1.5, 2.0] {
            let s = at(factor, BatchingMode::Static);
            let c = at(factor, BatchingMode::Continuous);
            // The gap holds across the whole envelope: continuous's
            // worst seed beats static's best.
            assert!(
                c.goodput_env.min > s.goodput_env.max,
                "{factor}x: continuous {} vs static {}",
                c.goodput_env.min,
                s.goodput_env.max
            );
            assert!(
                c.ttft_env.max < s.ttft_env.min,
                "{factor}x: continuous p99 TTFT {} vs static {}",
                c.ttft_env.max,
                s.ttft_env.min
            );
            // Continuous turns batch slots into useful tokens; static's
            // slots are partly padding (its *observed* batch is larger,
            // but much of it is finished members waiting for the drain).
            assert!(c.tokens_per_s > s.tokens_per_s);
        }
        // Below saturation both modes meet the SLO for nearly everyone.
        let light_s = at(0.6, BatchingMode::Static);
        let light_c = at(0.6, BatchingMode::Continuous);
        assert!(light_c.goodput_rps >= light_s.goodput_rps * 0.95);
        // Envelopes fold every replication and contain the canonical run.
        for p in &data {
            assert_eq!(p.goodput_env.n, REPLICATIONS);
            assert!(p.goodput_env.min <= p.goodput_rps && p.goodput_rps <= p.goodput_env.max);
        }
    }
}
