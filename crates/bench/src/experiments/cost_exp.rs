//! E10, E12, E13: TCO, DNN growth, cooling economics.

use tpu_arch::catalog;
use tpu_arch::cooling::{required_cooling, RackEnvelope};
use tpu_hlo::{compile, CompilerOptions};
use tpu_sim::Simulator;
use tpu_tco::{capex, TcoModel};
use tpu_workloads::growth;
use tpu_workloads::production_apps;

use crate::experiments::perf::serving_dtype;
use crate::util::{f, geomean, Table};

/// One E10 row.
#[derive(Debug, Clone, PartialEq)]
pub struct TcoRow {
    /// Chip name.
    pub chip: String,
    /// Geomean inferences/s over the eight apps at batch 8.
    pub perf: f64,
    /// CapEx, USD.
    pub capex_usd: f64,
    /// 3-year OpEx, USD.
    pub opex_usd: f64,
    /// TCO, USD.
    pub tco_usd: f64,
    /// perf per CapEx dollar.
    pub perf_per_capex: f64,
    /// perf per TCO dollar.
    pub perf_per_tco: f64,
}

/// E10 data: performance and cost per chip.
pub fn e10_data() -> Vec<TcoRow> {
    let model = TcoModel::default();
    let options = CompilerOptions::default();
    let chips = catalog::inference_comparison_set();
    chips
        .into_iter()
        .map(|chip| {
            let sim = Simulator::new(chip.clone());
            let rates: Vec<f64> = production_apps()
                .iter()
                .map(|app| {
                    let dtype = serving_dtype(app, &chip);
                    let g = app.build_with(8, dtype).expect("builds");
                    let exe = compile(&g, &chip, &options).expect("compiles");
                    let r = sim.run(exe.plan()).expect("simulates");
                    8.0 / r.seconds
                })
                .collect();
            let perf = geomean(&rates);
            let cap = capex(&chip).total_usd();
            let report = model.report(&chip);
            TcoRow {
                chip: chip.name,
                perf,
                capex_usd: cap,
                opex_usd: report.opex_usd,
                tco_usd: report.tco_usd,
                perf_per_capex: perf / cap,
                perf_per_tco: perf / report.tco_usd,
            }
        })
        .collect()
}

/// E10 — perf/CapEx vs perf/TCO (Lesson 3).
pub fn e10_tco() -> String {
    let rows = e10_data();
    let mut t = Table::new(&[
        "chip",
        "geomean inf/s",
        "CapEx $",
        "OpEx $ (3y)",
        "TCO $",
        "perf/CapEx$",
        "perf/TCO$",
    ]);
    for r in &rows {
        t.row(vec![
            r.chip.clone(),
            f(r.perf, 0),
            f(r.capex_usd, 0),
            f(r.opex_usd, 0),
            f(r.tco_usd, 0),
            f(r.perf_per_capex, 1),
            f(r.perf_per_tco, 1),
        ]);
    }
    let rank = |key: fn(&TcoRow) -> f64| -> Vec<String> {
        let mut v: Vec<&TcoRow> = rows.iter().collect();
        v.sort_by(|a, b| key(b).total_cmp(&key(a)));
        v.into_iter().map(|r| r.chip.clone()).collect()
    };
    // Quantify Lesson 3: judging by CapEx alone understates how much the
    // coolest chip beats the hottest one, because it ignores the OpEx
    // the hot chip keeps burning for its whole service life.
    let hot = rows.iter().max_by(|a, b| a.opex_usd.total_cmp(&b.opex_usd));
    let cool = rows.iter().min_by(|a, b| a.opex_usd.total_cmp(&b.opex_usd));
    let lesson = match (hot, cool) {
        (Some(hot), Some(cool)) if hot.chip != cool.chip => format!(
            "{cool} vs {hot}: {capex_adv}x by perf/CapEx but {tco_adv}x by perf/TCO — \
             CapEx alone understates the efficient chip's advantage (Lesson 3)\n",
            cool = cool.chip,
            hot = hot.chip,
            capex_adv = f(cool.perf_per_capex / hot.perf_per_capex, 2),
            tco_adv = f(cool.perf_per_tco / hot.perf_per_tco, 2),
        ),
        _ => String::new(),
    };
    format!(
        "E10 / Table — design for perf/TCO, not perf/CapEx (Lesson 3)\n{}\nranking by perf/CapEx: {:?}\nranking by perf/TCO:   {:?}\n{}",
        t.render(),
        rank(|r| r.perf_per_capex),
        rank(|r| r.perf_per_tco),
        lesson
    )
}

/// E12 — DNN demand grows 1.5x/year vs chip capability (Lesson 8).
pub fn e12_growth() -> String {
    let series = growth::demand_vs_capability(0.5, 50.0, 2016, 2021);
    let mut t = Table::new(&[
        "year",
        "model GiB",
        "model GFLOP",
        "newest chip",
        "HBM GiB",
        "peak TFLOPS",
    ]);
    for p in &series {
        t.row(vec![
            p.year.to_string(),
            f(p.model_gib, 2),
            f(p.model_gflop, 0),
            p.chip.clone(),
            f(p.chip_hbm_gib, 0),
            f(p.chip_tflops, 0),
        ]);
    }
    let v4i = catalog::tpu_v4i();
    // Grown-model checkpoints: when do MLP0/BERT0 descendants outgrow
    // TPUv4i's memories?
    let cmem = v4i.cmem.expect("v4i has CMEM").capacity_bytes;
    let hbm = v4i.hbm.capacity_bytes;
    let mlp_cmem = growth::outgrows_in_years(
        |y| growth::mlp0_grown(1, y).expect("builds").weight_bytes(),
        cmem,
        12,
    );
    let bert_hbm = growth::outgrows_in_years(
        |y| growth::bert0_grown(1, y).expect("builds").weight_bytes(),
        hbm,
        12,
    );
    format!(
        "E12 / Fig — DNN growth 1.5x/yr vs chip capability (0.5 GiB / 50 GFLOP model in 2016)\n{}\nHBM headroom for a 2 GiB model on TPUv4i: {} years\nMLP0's descendant outgrows v4i's 128 MiB CMEM in year {}; BERT0's outgrows the 8 GiB HBM in year {}\n",
        t.render(),
        f(growth::hbm_headroom_years(&v4i, 2.0), 1),
        mlp_cmem.map_or("-".to_owned(), |y| y.to_string()),
        bert_hbm.map_or("-".to_owned(), |y| y.to_string()),
    )
}

/// One E13 row.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingRow {
    /// Chip name.
    pub chip: String,
    /// TDP, watts.
    pub tdp_w: f64,
    /// Cheapest cooling technology able to handle it.
    pub cooling: String,
    /// Chips per standard rack.
    pub chips_per_rack: u32,
    /// Chips per rack weighted by fleet availability of the cooling tech.
    pub fleet_weighted: f64,
    /// Cooling infrastructure CapEx share, USD.
    pub cooling_capex_usd: f64,
}

/// E13 data: deployment envelopes per generation.
pub fn e13_data() -> Vec<CoolingRow> {
    let rack = RackEnvelope::default();
    catalog::all_chips()
        .into_iter()
        .map(|chip| {
            // Sanity: the catalog's deployment choice is always at least
            // as capable as the minimum the TDP requires.
            let minimum = required_cooling(chip.tdp_w);
            debug_assert!(minimum.is_some(), "{} undeployable", chip.name);
            CoolingRow {
                tdp_w: chip.tdp_w,
                cooling: chip.cooling.to_string(),
                chips_per_rack: rack.chips_per_rack(chip.tdp_w),
                fleet_weighted: rack.chips_per_rack(chip.tdp_w) as f64
                    * chip.cooling.fleet_availability(),
                cooling_capex_usd: capex(&chip).cooling_usd,
                chip: chip.name,
            }
        })
        .collect()
}

/// E13 — inference DSAs need air cooling (Lesson 5).
pub fn e13_cooling() -> String {
    let mut t = Table::new(&[
        "chip",
        "TDP W",
        "cooling",
        "chips/rack",
        "fleet-weighted",
        "cooling CapEx $",
    ]);
    for r in e13_data() {
        t.row(vec![
            r.chip,
            f(r.tdp_w, 0),
            r.cooling,
            r.chips_per_rack.to_string(),
            f(r.fleet_weighted, 1),
            f(r.cooling_capex_usd, 0),
        ]);
    }
    format!(
        "E13 / Fig — cooling envelopes (20 kW rack, 64 slots; Lesson 5)\n{}",
        t.render()
    )
}

/// One row of the E18 fleet-sizing table.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRow {
    /// Chip name.
    pub chip: String,
    /// Chips needed to serve the target mix within every SLO.
    pub chips: f64,
    /// Racks needed (20 kW each).
    pub racks: f64,
    /// Fleet CapEx, USD.
    pub fleet_capex_usd: f64,
    /// Fleet 3-year TCO, USD.
    pub fleet_tco_usd: f64,
}

/// E18 data: fleet sizing — how many chips of each generation serve one
/// million inferences/second of the production mix within every app's
/// SLO, and what that fleet costs. This is the question the paper's
/// lessons ultimately answer at once: perf (E5) x SLO (E8) x TCO (E10)
/// x deployability (E13).
pub fn e18_data(target_total_rps: f64) -> Vec<FleetRow> {
    let model = TcoModel::default();
    let options = CompilerOptions::default();
    let rack = RackEnvelope::default();
    catalog::inference_comparison_set()
        .into_iter()
        .map(|chip| {
            let chips: f64 = production_apps()
                .iter()
                .map(|app| {
                    let rate = crate::experiments::perf::slo_throughput_rps(app, &chip, &options);
                    target_total_rps * app.spec.fleet_share / rate.max(1e-9)
                })
                .sum();
            let per_chip_tco = model.report(&chip).tco_usd;
            let per_chip_capex = capex(&chip).total_usd();
            let per_rack = rack.chips_per_rack(chip.tdp_w).max(1) as f64;
            FleetRow {
                chips,
                racks: chips / per_rack,
                fleet_capex_usd: chips * per_chip_capex,
                fleet_tco_usd: chips * per_chip_tco,
                chip: chip.name,
            }
        })
        .collect()
}

/// E18 (extension) — fleet sizing for 1M inferences/s of the mix.
pub fn e18_fleet_sizing() -> String {
    let target = 1e6;
    let mut t = Table::new(&[
        "chip",
        "chips for 1M inf/s",
        "racks",
        "fleet CapEx $M",
        "fleet TCO $M (3y)",
    ]);
    for r in e18_data(target) {
        t.row(vec![
            r.chip,
            f(r.chips, 0),
            f(r.racks, 1),
            f(r.fleet_capex_usd / 1e6, 2),
            f(r.fleet_tco_usd / 1e6, 2),
        ]);
    }
    format!(
        "E18 (extension) — fleet to serve 1M inferences/s of the production mix within SLOs\n{}",
        t.render()
    )
}

/// A4 (ablation): perf/TCO sensitivity to the electricity price —
/// Lesson 3's conclusion strengthens wherever power is expensive.
pub fn a4_electricity() -> String {
    use tpu_tco::TcoModel;
    // TPUv4i's OpEx/CapEx ratio happens to track TPUv3's, so its lead is
    // price-insensitive; the GPU (70 W vs 450 W) is the pair where the
    // electricity price visibly moves the ranking gap.
    let rows = e10_data();
    let mut t = Table::new(&[
        "$/kWh",
        "TPUv3 perf/TCO$",
        "GPU-T4 perf/TCO$",
        "GPU advantage",
    ]);
    for price in [0.04f64, 0.08, 0.16, 0.32] {
        let model = TcoModel {
            usd_per_kwh: price,
            ..TcoModel::default()
        };
        let score = |name: &str| {
            let r = rows.iter().find(|r| r.chip == name).expect("present");
            let chip = catalog::inference_comparison_set()
                .into_iter()
                .find(|c| c.name == name)
                .expect("present");
            model.perf_per_tco(&chip, r.perf)
        };
        let v3 = score("TPUv3");
        let gpu = score("GPU-T4");
        t.row(vec![
            f(price, 2),
            f(v3, 1),
            f(gpu, 1),
            format!("{}x", f(gpu / v3, 2)),
        ]);
    }
    format!(
        "A4 (ablation) — perf/TCO vs electricity price: expensive power widens \
         the efficient chip's lead (Lesson 3)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_v4i_air_cooled_deploys_widest() {
        let rows = e13_data();
        let v4i = rows.iter().find(|r| r.chip == "TPUv4i").unwrap();
        let v3 = rows.iter().find(|r| r.chip == "TPUv3").unwrap();
        assert_eq!(v4i.cooling, "air");
        assert_eq!(v3.cooling, "liquid");
        assert!(v4i.fleet_weighted > 5.0 * v3.fleet_weighted);
    }

    #[test]
    fn e18_v4i_fleet_is_smallest_and_cheapest() {
        let rows = e18_data(1e6);
        let by = |name: &str| rows.iter().find(|r| r.chip == name).unwrap();
        let v4i = by("TPUv4i");
        for other in ["TPUv2", "TPUv3", "GPU-T4"] {
            let o = by(other);
            assert!(v4i.chips < o.chips, "{other}");
            assert!(v4i.fleet_tco_usd < o.fleet_tco_usd, "{other}");
        }
        // Sanity: fleets are hundreds-to-thousands of chips, not millions.
        for r in &rows {
            assert!(r.chips > 10.0 && r.chips < 1e6, "{}: {}", r.chip, r.chips);
            assert!(r.fleet_tco_usd > r.fleet_capex_usd);
        }
    }

    #[test]
    fn a4_advantage_grows_with_electricity_price() {
        let s = a4_electricity();
        assert!(s.contains("0.04") && s.contains("0.32"));
        // Parse the advantage column monotonicity via the data directly.
        use tpu_tco::TcoModel;
        let rows = e10_data();
        let chips = catalog::inference_comparison_set();
        let mut last = 0.0f64;
        for price in [0.04f64, 0.32] {
            let model = TcoModel {
                usd_per_kwh: price,
                ..TcoModel::default()
            };
            let get = |name: &str| {
                let r = rows.iter().find(|r| r.chip == name).unwrap();
                let chip = chips.iter().find(|c| c.name == name).unwrap();
                model.perf_per_tco(chip, r.perf)
            };
            let adv = get("GPU-T4") / get("TPUv3");
            assert!(adv > last, "advantage must grow with price");
            last = adv;
        }
    }

    #[test]
    fn e12_mentions_growth() {
        let s = e12_growth();
        assert!(s.contains("2016"));
        assert!(s.contains("2021"));
        assert!(s.contains("TPUv4"));
    }
}
