//! E1–E3: the static tables (generation catalog, technology scaling,
//! production app table).

use tpu_arch::{catalog, ProcessNode};
use tpu_numerics::DType;
use tpu_workloads::production_apps;

use crate::util::{f, Table};

/// E1 — Table 1: key characteristics of the five TPU generations (plus
/// the GPU baseline used in E5).
pub fn e1_table1() -> String {
    let mut t = Table::new(&[
        "chip",
        "year",
        "node",
        "MHz",
        "TDP W",
        "idle W",
        "die mm2",
        "MXUs",
        "bf16 TFLOPS",
        "int8 TOPS",
        "HBM GiB",
        "GB/s",
        "on-chip MiB",
        "cooling",
    ]);
    for c in catalog::all_chips() {
        let mxus = c.cores * c.mxus_per_core;
        let bf16 = c
            .peak_flops(DType::Bf16)
            .or_else(|| c.peak_flops(DType::Fp16))
            .map(|x| f(x / 1e12, 1))
            .unwrap_or_else(|| "-".to_owned());
        let int8 = c
            .peak_flops(DType::Int8)
            .map(|x| f(x / 1e12, 1))
            .unwrap_or_else(|| "-".to_owned());
        t.row(vec![
            c.name.clone(),
            c.year.to_string(),
            c.node.to_string(),
            f(c.clock_hz / 1e6, 0),
            f(c.tdp_w, 0),
            f(c.idle_w, 0),
            f(c.die_mm2, 0),
            format!("{mxus}x{}", c.mxu_dim),
            bf16,
            int8,
            f(c.hbm.capacity_gib(), 0),
            f(c.hbm.bandwidth_gbps(), 0),
            f(c.on_chip_sram_bytes() as f64 / (1 << 20) as f64, 0),
            c.cooling.to_string(),
        ]);
    }
    format!(
        "E1 / Table 1 — five TPU generations + GPU baseline\n{}",
        t.render()
    )
}

/// One row of the E2 scaling figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TechRow {
    /// Process node.
    pub node: ProcessNode,
    /// Improvement factors vs 45 nm: (logic, sram, dram, wire).
    pub improvement: (f64, f64, f64, f64),
    /// HBM bytes' cost in bf16-MAC equivalents.
    pub hbm_byte_per_mac: f64,
}

/// E2 data: per-node energies and improvement factors.
pub fn e2_data() -> Vec<TechRow> {
    ProcessNode::ALL
        .iter()
        .map(|&node| {
            let e = node.energy();
            TechRow {
                node,
                improvement: e.improvement_vs_reference(),
                hbm_byte_per_mac: e.hbm_byte_per_bf16_mac(),
            }
        })
        .collect()
}

/// E2 — technology scales unequally (Lesson 1).
pub fn e2_tech_scaling() -> String {
    let mut t = Table::new(&[
        "node",
        "int8 MAC pJ",
        "bf16 MAC pJ",
        "fp32 MAC pJ",
        "SRAM pJ/B",
        "HBM pJ/B",
        "logic gain",
        "SRAM gain",
        "DRAM gain",
        "HBM B / bf16 MAC",
    ]);
    for row in e2_data() {
        let e = row.node.energy();
        let (l, s, d, _w) = row.improvement;
        t.row(vec![
            row.node.to_string(),
            f(e.mac_int8_pj, 3),
            f(e.mac_bf16_pj, 3),
            f(e.mac_fp32_pj, 3),
            f(e.sram_pj_per_byte, 2),
            f(e.hbm_pj_per_byte, 1),
            format!("{}x", f(l, 1)),
            format!("{}x", f(s, 1)),
            format!("{}x", f(d, 1)),
            f(row.hbm_byte_per_mac, 0),
        ]);
    }
    format!(
        "E2 / Fig — technology advances unequally (energy per op by node)\n{}",
        t.render()
    )
}

/// E3 — the production inference app table.
pub fn e3_app_table() -> String {
    let mut t = Table::new(&[
        "app",
        "class",
        "params M",
        "GFLOP@b=1",
        "FLOP/byte",
        "nonlinearity",
        "p99 SLO ms",
        "int8 OK",
        "fleet share",
    ]);
    for app in production_apps() {
        let g = app.build(1).expect("apps build at batch 1");
        t.row(vec![
            app.spec.name.to_owned(),
            app.spec.class.to_string(),
            f(g.weight_count() as f64 / 1e6, 1),
            f(g.flops() as f64 / 1e9, 2),
            f(g.intensity_estimate(), 1),
            app.spec.nonlinearity.to_owned(),
            f(app.spec.slo_p99_ms, 0),
            if app.spec.int8_servable { "yes" } else { "NO" }.to_owned(),
            format!("{}%", f(app.spec.fleet_share * 100.0, 0)),
        ]);
    }
    format!(
        "E3 / Table — production inference apps (stand-ins; see DESIGN.md)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_lists_all_chips() {
        let s = e1_table1();
        for name in ["TPUv1", "TPUv2", "TPUv3", "TPUv4i", "TPUv4", "GPU-T4"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("137.6") || s.contains("137.5"), "v4i peak");
    }

    #[test]
    fn e2_shape_holds() {
        let rows = e2_data();
        let last = rows.last().unwrap();
        let (l, s, d, w) = last.improvement;
        assert!(l > s && s > d && d > w);
        assert!(last.hbm_byte_per_mac > 100.0);
        assert!(e2_tech_scaling().contains("7nm"));
    }

    #[test]
    fn e3_lists_all_apps() {
        let s = e3_app_table();
        for name in ["MLP0", "CNN0", "RNN0", "BERT1"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("NO"), "some app must require FP");
    }
}
