//! E4–E7: roofline, perf/Watt comparison, CMEM ablation, compiler gains.

use tpu_arch::{catalog, ChipConfig};
use tpu_hlo::{compile, CompilerOptions, OptLevel};
use tpu_numerics::DType;
use tpu_serving::latency::LatencyModel;
use tpu_serving::slo::max_batch_within_slo;
use tpu_sim::{SimReport, Simulator};
use tpu_workloads::{production_apps, App};

use crate::util::{f, geomean, Table};

/// Batch sizes profiled when picking SLO operating points (a reduced
/// grid keeps the full experiment suite fast).
const PROFILE_BATCHES: [u64; 5] = [1, 4, 16, 64, 256];

/// Compiles and simulates one app at a batch/precision on a chip.
fn run_once(
    app: &App,
    chip: &ChipConfig,
    batch: u64,
    dtype: DType,
    options: &CompilerOptions,
) -> SimReport {
    let graph = app
        .build_with(batch, dtype)
        .expect("zoo apps build at any positive batch");
    let exe = compile(&graph, chip, options).expect("zoo apps compile on catalog chips");
    Simulator::new(chip.clone())
        .run(exe.plan())
        .expect("catalog chips simulate compiled plans")
}

/// Profiles latency-vs-batch at a precision.
fn profile(app: &App, chip: &ChipConfig, dtype: DType, options: &CompilerOptions) -> LatencyModel {
    let points = PROFILE_BATCHES
        .iter()
        .map(|&b| (b, run_once(app, chip, b, dtype, options).seconds))
        .collect();
    LatencyModel::from_points(points).expect("strictly increasing batches")
}

/// The largest batch meeting the app's p99 SLO on this chip (1 if none).
///
/// Capped at 128: chip service time is only part of the production p99
/// budget (host, network, queueing), so serving never runs the thousand-
/// request batches a bare-latency search would admit.
fn slo_batch(app: &App, chip: &ChipConfig, dtype: DType, options: &CompilerOptions) -> u64 {
    let model = profile(app, chip, dtype, options);
    max_batch_within_slo(&model, app.spec.slo_p99_ms / 1e3, 128).unwrap_or(1)
}

/// Sustained SLO-constrained serving throughput of one app on one chip,
/// inferences/second: the largest SLO-meeting batch's ideal rate derated
/// to 70% (headroom for queueing, per E8). Used by the fleet-sizing
/// experiment (E18).
pub fn slo_throughput_rps(app: &App, chip: &ChipConfig, options: &CompilerOptions) -> f64 {
    let dtype = serving_dtype(app, chip);
    let model = profile(app, chip, dtype, options);
    let batch = max_batch_within_slo(&model, app.spec.slo_p99_ms / 1e3, 128).unwrap_or(1);
    0.7 * model.throughput(batch)
}

/// The serving precision an app uses on a chip: int8 where production
/// quality allows *and* the chip has native int8, else bf16 (Lesson 6).
pub fn serving_dtype(app: &App, chip: &ChipConfig) -> DType {
    if app.spec.int8_servable && chip.native_types.contains(&DType::Int8) {
        DType::Int8
    } else {
        DType::Bf16
    }
}

/// One point of the E4 roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// App name.
    pub app: String,
    /// SLO-derived batch.
    pub batch: u64,
    /// HBM operational intensity with weights streamed from HBM (the
    /// classic roofline x-coordinate), FLOP/byte.
    pub intensity: f64,
    /// Achieved TFLOP/s with weights in HBM (on the classic roofline).
    pub tflops_hbm: f64,
    /// Achieved TFLOP/s with CMEM enabled (the lift CMEM provides).
    pub tflops_cmem: f64,
    /// Fraction of the chip's peak (CMEM run) at the app's precision.
    pub fraction_of_peak: f64,
    /// Whether the app sits below the HBM ridge (memory bound without
    /// CMEM).
    pub memory_bound: bool,
}

/// E4 data: the production apps on TPUv4i's roofline.
///
/// The roofline proper uses weights-from-HBM (how TPUv2/v3 and the
/// no-CMEM ablation behave); the `tflops_cmem` column shows how CMEM
/// lifts the memory-bound apps above the HBM roof — TPUv4i's headline
/// architectural bet.
pub fn e4_data() -> Vec<RooflinePoint> {
    let chip = catalog::tpu_v4i();
    let no_cmem = CompilerOptions::no_cmem();
    let with_cmem = CompilerOptions::default();
    production_apps()
        .iter()
        .map(|app| {
            let dtype = serving_dtype(app, &chip);
            let batch = slo_batch(app, &chip, dtype, &no_cmem);
            let hbm_run = run_once(app, &chip, batch, dtype, &no_cmem);
            let cmem_run = run_once(app, &chip, batch, dtype, &with_cmem);
            let peak = chip.peak_flops(dtype).expect("serving dtype is native");
            let ridge = chip.ridge_flops_per_byte(dtype).expect("native");
            let intensity = hbm_run.achieved_intensity();
            RooflinePoint {
                app: app.spec.name.to_owned(),
                batch,
                intensity,
                tflops_hbm: hbm_run.tflops(),
                tflops_cmem: cmem_run.tflops(),
                fraction_of_peak: cmem_run.flops_per_second() / peak,
                memory_bound: intensity < ridge,
            }
        })
        .collect()
}

/// E4 — the TPUv4i roofline with the production apps.
pub fn e4_roofline() -> String {
    let chip = catalog::tpu_v4i();
    let ridge_bf16 = chip.ridge_flops_per_byte(DType::Bf16).expect("native");
    let ridge_int8 = chip.ridge_flops_per_byte(DType::Int8).expect("native");
    let mut t = Table::new(&[
        "app",
        "SLO batch",
        "FLOP/byte",
        "TFLOP/s (HBM)",
        "TFLOP/s (CMEM)",
        "% of peak",
        "bound (vs HBM roof)",
    ]);
    for p in e4_data() {
        t.row(vec![
            p.app,
            p.batch.to_string(),
            if p.intensity.is_finite() {
                f(p.intensity, 1)
            } else {
                "inf".into()
            },
            f(p.tflops_hbm, 1),
            f(p.tflops_cmem, 1),
            f(p.fraction_of_peak * 100.0, 1),
            if p.memory_bound { "memory" } else { "compute" }.to_owned(),
        ]);
    }
    format!(
        "E4 / Fig — TPUv4i roofline (ridge: {:.0} FLOP/B bf16, {:.0} FLOP/B int8; peak {:.0} bf16 / {:.0} int8 TFLOPS)\n{}",
        ridge_bf16,
        ridge_int8,
        chip.peak_flops(DType::Bf16).unwrap() / 1e12,
        chip.peak_flops(DType::Int8).unwrap() / 1e12,
        t.render()
    )
}

/// One row of the E5 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Chip name.
    pub chip: String,
    /// App name.
    pub app: String,
    /// Serving precision used.
    pub dtype: DType,
    /// SLO-derived batch.
    pub batch: u64,
    /// Inferences per second at that batch.
    pub inferences_per_sec: f64,
    /// Average power during the run, watts.
    pub watts: f64,
    /// Inferences per joule.
    pub inferences_per_joule: f64,
}

/// E5 data: every comparison chip x every app at its SLO batch.
pub fn e5_data() -> Vec<PerfRow> {
    let options = CompilerOptions::default();
    let mut rows = Vec::new();
    for chip in catalog::inference_comparison_set() {
        for app in production_apps() {
            let dtype = serving_dtype(&app, &chip);
            let batch = slo_batch(&app, &chip, dtype, &options);
            let report = run_once(&app, &chip, batch, dtype, &options);
            rows.push(PerfRow {
                chip: chip.name.clone(),
                app: app.spec.name.to_owned(),
                dtype,
                batch,
                inferences_per_sec: batch as f64 / report.seconds,
                watts: report.average_watts(),
                inferences_per_joule: batch as f64 / report.energy_joules,
            });
        }
    }
    rows
}

/// Geomean perf and perf/W of each chip relative to TPUv3 from E5 rows.
pub fn e5_relative_to_v3(rows: &[PerfRow]) -> Vec<(String, f64, f64)> {
    let v3: Vec<&PerfRow> = rows.iter().filter(|r| r.chip == "TPUv3").collect();
    let chips: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.chip.clone()).collect();
        v.dedup();
        v
    };
    chips
        .into_iter()
        .map(|chip| {
            let mut perf_ratios = Vec::new();
            let mut ppw_ratios = Vec::new();
            for r in rows.iter().filter(|r| r.chip == chip) {
                if let Some(base) = v3.iter().find(|b| b.app == r.app) {
                    perf_ratios.push(r.inferences_per_sec / base.inferences_per_sec);
                    ppw_ratios.push(r.inferences_per_joule / base.inferences_per_joule);
                }
            }
            (chip, geomean(&perf_ratios), geomean(&ppw_ratios))
        })
        .collect()
}

/// E5 — perf and perf/Watt across TPUv2, TPUv3, TPUv4i and the GPU.
pub fn e5_perf_per_watt() -> String {
    let rows = e5_data();
    let mut t = Table::new(&["chip", "app", "dtype", "batch", "inf/s", "avg W", "inf/J"]);
    for r in &rows {
        t.row(vec![
            r.chip.clone(),
            r.app.clone(),
            r.dtype.to_string(),
            r.batch.to_string(),
            f(r.inferences_per_sec, 0),
            f(r.watts, 0),
            f(r.inferences_per_joule, 1),
        ]);
    }
    let mut summary = Table::new(&["chip", "geomean perf vs TPUv3", "geomean perf/W vs TPUv3"]);
    for (chip, perf, ppw) in e5_relative_to_v3(&rows) {
        summary.row(vec![
            chip,
            format!("{}x", f(perf, 2)),
            format!("{}x", f(ppw, 2)),
        ]);
    }
    format!(
        "E5 / Fig — per-app performance and perf/Watt at SLO batch\n{}\nSummary (geomean over the 8 apps):\n{}",
        t.render(),
        summary.render()
    )
}

/// One point of the E6 CMEM-capacity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CmemPoint {
    /// CMEM budget in MiB.
    pub budget_mib: u64,
    /// Geomean speedup over the 0 MiB baseline across apps.
    pub geomean_speedup: f64,
    /// Per-app speedups `(app, speedup)`.
    pub per_app: Vec<(String, f64)>,
}

/// E6 data: latency vs CMEM budget on TPUv4i (batch 1, bf16).
///
/// Batch 1 is the memory-bound extreme where CMEM matters most; at
/// larger batches the compute-bound apps pin the geomean near 1x.
pub fn e6_data() -> Vec<CmemPoint> {
    let chip = catalog::tpu_v4i();
    let budgets: [u64; 8] = [0, 16, 32, 64, 96, 128, 160, 192];
    let apps = production_apps();
    // Baselines at 0 MiB.
    let base: Vec<(String, f64)> = apps
        .iter()
        .map(|app| {
            let r = run_once(
                app,
                &chip,
                1,
                DType::Bf16,
                &CompilerOptions::with_cmem_budget(0),
            );
            (app.spec.name.to_owned(), r.seconds)
        })
        .collect();
    budgets
        .iter()
        .map(|&mib| {
            let options = CompilerOptions::with_cmem_budget(mib << 20);
            let per_app: Vec<(String, f64)> = apps
                .iter()
                .zip(&base)
                .map(|(app, (name, t0))| {
                    let t = run_once(app, &chip, 1, DType::Bf16, &options).seconds;
                    (name.clone(), t0 / t)
                })
                .collect();
            let speedups: Vec<f64> = per_app.iter().map(|(_, s)| *s).collect();
            CmemPoint {
                budget_mib: mib,
                geomean_speedup: geomean(&speedups),
                per_app,
            }
        })
        .collect()
}

/// E6 — the CMEM capacity ablation (the 128 MiB design point).
pub fn e6_cmem_sweep() -> String {
    let points = e6_data();
    let apps: Vec<String> = points[0].per_app.iter().map(|(n, _)| n.clone()).collect();
    let mut header: Vec<&str> = vec!["CMEM MiB", "geomean"];
    for a in &apps {
        header.push(a.as_str());
    }
    let mut t = Table::new(&header);
    for p in &points {
        let mut row = vec![
            p.budget_mib.to_string(),
            format!("{}x", f(p.geomean_speedup, 2)),
        ];
        for (_, s) in &p.per_app {
            row.push(format!("{}x", f(*s, 2)));
        }
        t.row(row);
    }
    format!(
        "E6 / Fig — speedup vs CMEM capacity on TPUv4i (batch 1, bf16, vs 0 MiB)\n{}",
        t.render()
    )
}

/// One level of the E7 compiler-gains series.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerGain {
    /// Optimization level (stands in for compiler releases over time).
    pub level: OptLevel,
    /// Geomean speedup over O0 across the apps.
    pub geomean_speedup: f64,
}

/// E7 data: geomean speedup per optimization level on TPUv4i (batch 8).
pub fn e7_data() -> Vec<CompilerGain> {
    let chip = catalog::tpu_v4i();
    let apps = production_apps();
    let base: Vec<f64> = apps
        .iter()
        .map(|app| {
            run_once(
                app,
                &chip,
                8,
                DType::Bf16,
                &CompilerOptions::level(OptLevel::O0),
            )
            .seconds
        })
        .collect();
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let speedups: Vec<f64> = apps
                .iter()
                .zip(&base)
                .map(|(app, &t0)| {
                    let t = run_once(app, &chip, 8, DType::Bf16, &CompilerOptions::level(level))
                        .seconds;
                    t0 / t
                })
                .collect();
            CompilerGain {
                level,
                geomean_speedup: geomean(&speedups),
            }
        })
        .collect()
}

/// E7 — compiler gains over time (XLA's pass maturation).
pub fn e7_compiler_gains() -> String {
    let mut t = Table::new(&["level", "passes", "geomean speedup vs O0"]);
    for g in e7_data() {
        let passes = match g.level {
            OptLevel::O0 => "naive lowering",
            OptLevel::O1 => "+ fusion",
            OptLevel::O2 => "+ double buffering",
            OptLevel::O3 => "+ CMEM placement",
        };
        t.row(vec![
            format!("{:?}", g.level),
            passes.to_owned(),
            format!("{}x", f(g.geomean_speedup, 2)),
        ]);
    }
    format!(
        "E7 / Fig — compiler gains over time on TPUv4i (batch 8, bf16)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_dtype_rules() {
        let v4i = catalog::tpu_v4i();
        let v3 = catalog::tpu_v3();
        let apps = production_apps();
        let mlp0 = &apps[0];
        let rnn0 = &apps[4];
        assert_eq!(serving_dtype(mlp0, &v4i), DType::Int8);
        assert_eq!(serving_dtype(mlp0, &v3), DType::Bf16); // no native int8
        assert_eq!(serving_dtype(rnn0, &v4i), DType::Bf16); // FP required
    }

    #[test]
    fn e4_has_both_memory_and_compute_bound_apps() {
        let points = e4_data();
        assert_eq!(points.len(), 8);
        assert!(
            points.iter().any(|p| p.memory_bound),
            "MLPs are memory bound"
        );
        assert!(
            points.iter().any(|p| !p.memory_bound),
            "CNN0 should be compute bound"
        );
        for p in &points {
            assert!(
                p.fraction_of_peak <= 1.0 + 1e-9,
                "{}: {}",
                p.app,
                p.fraction_of_peak
            );
            assert!(p.tflops_hbm > 0.0);
            // CMEM never meaningfully hurts (compute-bound apps can see
            // sub-percent noise from channel re-serialization).
            assert!(p.tflops_cmem >= p.tflops_hbm * 0.99, "{}", p.app);
        }
    }
}

/// One app's energy breakdown on TPUv4i (E16, extension).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// App name.
    pub app: String,
    /// Fraction of total energy that is static (idle power).
    pub static_frac: f64,
    /// Fraction spent in the MXUs.
    pub mxu_frac: f64,
    /// Fraction spent in the VPU.
    pub vpu_frac: f64,
    /// Fraction spent moving data (DMA incl. HBM/CMEM transfer energy).
    pub dma_frac: f64,
}

/// E16 data: where each app's energy goes on TPUv4i at batch 8.
pub fn e16_data() -> Vec<EnergyRow> {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    production_apps()
        .iter()
        .map(|app| {
            let dtype = serving_dtype(app, &chip);
            let r = run_once(app, &chip, 8, dtype, &options);
            use tpu_sim::Resource;
            EnergyRow {
                app: app.spec.name.to_owned(),
                static_frac: r.static_fraction(),
                mxu_frac: r.energy_fraction(Resource::Mxu),
                vpu_frac: r.energy_fraction(Resource::Vpu),
                dma_frac: r.energy_fraction(Resource::Dma) + r.energy_fraction(Resource::Ici),
            }
        })
        .collect()
}

/// E16 (extension) — energy breakdown per app on TPUv4i.
pub fn e16_energy_breakdown() -> String {
    let mut t = Table::new(&["app", "static", "mxu", "vpu", "data movement"]);
    for r in e16_data() {
        let pct = |x: f64| format!("{}%", f(x * 100.0, 0));
        t.row(vec![
            r.app,
            pct(r.static_frac),
            pct(r.mxu_frac),
            pct(r.vpu_frac),
            pct(r.dma_frac),
        ]);
    }
    format!(
        "E16 (extension) — where the energy goes on TPUv4i (batch 8, serving dtype)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod energy_tests {
    use super::*;

    #[test]
    fn e16_fractions_form_a_partition() {
        for r in e16_data() {
            let total = r.static_frac + r.mxu_frac + r.vpu_frac + r.dma_frac;
            assert!(
                (total - 1.0).abs() < 0.02,
                "{}: fractions sum to {total}",
                r.app
            );
            assert!(r.static_frac > 0.0, "{}", r.app);
        }
        // Data movement should dominate the memory-bound MLPs more than
        // the compute-bound CNN0 (Lesson 1's consequence).
        let rows = e16_data();
        let mlp0 = rows.iter().find(|r| r.app == "MLP0").unwrap();
        let cnn0 = rows.iter().find(|r| r.app == "CNN0").unwrap();
        assert!(mlp0.dma_frac > cnn0.dma_frac);
        assert!(cnn0.mxu_frac > mlp0.mxu_frac);
    }
}
