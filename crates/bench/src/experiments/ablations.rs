//! A1–A3: design-choice ablations around the TPUv4i configuration.
//!
//! DESIGN.md calls out three first-order design choices the paper
//! discusses: how many MXUs per core (v4i chose 4), how much HBM
//! bandwidth to buy (614 GB/s), and the clock (1.05 GHz). Each ablation
//! perturbs one knob of the v4i configuration and re-runs the app suite,
//! showing why the shipped point is a knee.

use tpu_arch::{catalog, ChipConfig};
use tpu_hlo::{compile, CompilerOptions};
use tpu_sim::Simulator;
use tpu_workloads::production_apps;

use crate::experiments::perf::serving_dtype;
use crate::util::{f, geomean, Table};

/// Geomean inferences/s over the eight apps at batch 8 on a chip.
fn suite_geomean(chip: &ChipConfig) -> f64 {
    suite_geomean_with(chip, &CompilerOptions::default())
}

/// Like [`suite_geomean`] with explicit compiler options.
fn suite_geomean_with(chip: &ChipConfig, options: &CompilerOptions) -> f64 {
    let sim = Simulator::new(chip.clone());
    let rates: Vec<f64> = production_apps()
        .iter()
        .map(|app| {
            let dtype = serving_dtype(app, chip);
            let g = app.build_with(8, dtype).expect("builds");
            let exe = compile(&g, chip, options).expect("compiles");
            8.0 / sim.run(exe.plan()).expect("simulates").seconds
        })
        .collect();
    geomean(&rates)
}

/// One ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Human label of the configuration.
    pub label: String,
    /// Geomean inferences/s over the suite.
    pub perf: f64,
    /// Perf relative to the shipped TPUv4i configuration.
    pub vs_shipped: f64,
}

fn sweep(configs: Vec<(String, ChipConfig)>) -> Vec<AblationPoint> {
    let shipped = suite_geomean(&catalog::tpu_v4i());
    configs
        .into_iter()
        .map(|(label, chip)| {
            let perf = suite_geomean(&chip);
            AblationPoint {
                label,
                perf,
                vs_shipped: perf / shipped,
            }
        })
        .collect()
}

/// A1 data: MXUs per core, 1..4 (the encoding caps v4i at 4).
pub fn a1_data() -> Vec<AblationPoint> {
    let configs = [1u32, 2, 4]
        .iter()
        .map(|&m| {
            let mut chip = catalog::tpu_v4i();
            chip.mxus_per_core = m;
            chip.name = format!("v4i-{m}mxu");
            (format!("{m} MXUs"), chip)
        })
        .collect();
    sweep(configs)
}

/// A1 — MXU count ablation.
pub fn a1_mxu_count() -> String {
    let mut t = Table::new(&["config", "geomean inf/s", "vs shipped (4 MXUs)"]);
    for p in a1_data() {
        t.row(vec![
            p.label,
            f(p.perf, 0),
            format!("{}x", f(p.vs_shipped, 2)),
        ]);
    }
    format!(
        "A1 (ablation) — MXUs per core on TPUv4i (batch 8, suite geomean)\n{}",
        t.render()
    )
}

/// A2 data: HBM bandwidth at 0.5x, 1x, 2x of the shipped 614 GB/s.
pub fn a2_data() -> Vec<AblationPoint> {
    let configs = [0.5f64, 1.0, 2.0]
        .iter()
        .map(|&scale| {
            let mut chip = catalog::tpu_v4i();
            chip.hbm.bandwidth_bps *= scale;
            chip.name = format!("v4i-{:.0}GBs", chip.hbm.bandwidth_gbps());
            (format!("{:.0} GB/s", chip.hbm.bandwidth_gbps()), chip)
        })
        .collect();
    sweep(configs)
}

/// A2 data without CMEM: what the bandwidth sweep looks like on a
/// TPUv3-style memory system (weights always stream from HBM).
pub fn a2_data_no_cmem() -> Vec<AblationPoint> {
    let options = CompilerOptions::no_cmem();
    let shipped = suite_geomean_with(&catalog::tpu_v4i(), &options);
    [0.5f64, 1.0, 2.0]
        .iter()
        .map(|&scale| {
            let mut chip = catalog::tpu_v4i();
            chip.hbm.bandwidth_bps *= scale;
            chip.name = format!("v4i-nocmem-{:.0}GBs", chip.hbm.bandwidth_gbps());
            let perf = suite_geomean_with(&chip, &options);
            AblationPoint {
                label: format!("{:.0} GB/s", chip.hbm.bandwidth_gbps()),
                perf,
                vs_shipped: perf / shipped,
            }
        })
        .collect()
}

/// A2 — HBM bandwidth ablation, with and without CMEM.
pub fn a2_hbm_bandwidth() -> String {
    let with = a2_data();
    let without = a2_data_no_cmem();
    let mut t = Table::new(&["HBM BW", "with CMEM (vs 614)", "without CMEM (vs 614)"]);
    for (w, wo) in with.iter().zip(&without) {
        t.row(vec![
            w.label.clone(),
            format!("{}x", f(w.vs_shipped, 2)),
            format!("{}x", f(wo.vs_shipped, 2)),
        ]);
    }
    format!(
        "A2 (ablation) — HBM bandwidth on TPUv4i: CMEM blunts the dependence \
         that dominates a CMEM-less design\n{}",
        t.render()
    )
}

/// A3 data: core clock at 0.7x, 1x, 1.33x of the shipped 1.05 GHz.
pub fn a3_data() -> Vec<AblationPoint> {
    let configs = [0.7f64, 1.0, 1.33]
        .iter()
        .map(|&scale| {
            let mut chip = catalog::tpu_v4i();
            chip.clock_hz *= scale;
            chip.name = format!("v4i-{:.0}MHz", chip.clock_hz / 1e6);
            (format!("{:.0} MHz", chip.clock_hz / 1e6), chip)
        })
        .collect();
    sweep(configs)
}

/// A3 — clock-frequency ablation.
pub fn a3_clock() -> String {
    let mut t = Table::new(&["config", "geomean inf/s", "vs shipped (1050 MHz)"]);
    for p in a3_data() {
        t.row(vec![
            p.label,
            f(p.perf, 0),
            format!("{}x", f(p.vs_shipped, 2)),
        ]);
    }
    format!(
        "A3 (ablation) — clock frequency on TPUv4i; memory-bound apps cap the return\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_more_mxus_help_with_diminishing_returns() {
        let points = a1_data();
        assert!(points[1].perf > points[0].perf, "2 MXUs beat 1");
        assert!(points[2].perf > points[1].perf, "4 MXUs beat 2");
        let gain_12 = points[1].perf / points[0].perf;
        let gain_24 = points[2].perf / points[1].perf;
        assert!(
            gain_24 < gain_12,
            "returns must diminish: {gain_12:.2} then {gain_24:.2}"
        );
        // The shipped config is the 4-MXU row.
        assert!((points[2].vs_shipped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn a2_bandwidth_matters_less_with_cmem() {
        let with = a2_data();
        let without = a2_data_no_cmem();
        // With CMEM, halving HBM barely hurts; without, it hurts a lot.
        assert!(
            with[0].vs_shipped > 0.9,
            "with CMEM: {}",
            with[0].vs_shipped
        );
        assert!(
            without[0].vs_shipped < with[0].vs_shipped,
            "no-CMEM must be more bandwidth-sensitive"
        );
        assert!(
            without[0].vs_shipped < 0.9,
            "no CMEM: {}",
            without[0].vs_shipped
        );
        // Doubling helps little in either steady state at batch 8.
        assert!(with[2].vs_shipped < 1.5);
    }

    #[test]
    fn a3_clock_scaling_is_sublinear() {
        let points = a3_data();
        let slow = &points[0];
        let fast = &points[2];
        assert!(slow.vs_shipped < 1.0 && fast.vs_shipped > 1.0);
        // +33% clock must yield <+33% performance (memory-bound floor).
        assert!(fast.vs_shipped < 1.33);
    }
}
