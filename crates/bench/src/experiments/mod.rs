//! The experiments, grouped by flavor.

pub mod ablations;
pub mod chaos;
pub mod compiler_exp;
pub mod cost_exp;
pub mod evolution;
pub mod fleet_exp;
pub mod generation;
pub mod numerics_exp;
pub mod observability;
pub mod overload;
pub mod perf;
pub mod queue_exp;
pub mod scaleout;
pub mod serving_exp;
pub mod tables;
