//! E8 and E11: the serving experiments (latency vs batch under a p99
//! SLO; multi-tenancy).

use tpu_arch::catalog;
use tpu_hlo::CompilerOptions;
use tpu_serving::des::{simulate, ServingConfig};
use tpu_serving::latency::LatencyModel;
use tpu_serving::multitenant::{simulate_tenants, MultiTenantConfig, Tenant};
use tpu_serving::slo::max_batch_within_slo;
use tpu_workloads::{production_apps, zoo};

use crate::util::{f, Table};

/// One app's E8 row.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyVsBatch {
    /// App name.
    pub app: String,
    /// p99 SLO, ms.
    pub slo_ms: f64,
    /// Service latency (ms) at batches 1, 8, 32, 128.
    pub latency_ms: [f64; 4],
    /// Largest batch whose service latency meets the SLO.
    pub max_batch: u64,
    /// Simulated p99 (ms) serving at ~70% of capacity with that cap.
    pub p99_at_load_ms: f64,
    /// Throughput at that load, inferences/s.
    pub throughput_rps: f64,
}

/// E8 data on TPUv4i.
pub fn e8_data() -> Vec<LatencyVsBatch> {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    production_apps()
        .iter()
        .map(|app| {
            let model = LatencyModel::profile(app, &chip, &options, &[1, 8, 32, 128, 256])
                .expect("profiles");
            let slo_s = app.spec.slo_p99_ms / 1e3;
            let max_batch = max_batch_within_slo(&model, slo_s, 512).unwrap_or(1);
            let rate = 0.7 * model.throughput(max_batch);
            let report = simulate(
                &model,
                &ServingConfig {
                    arrival_rate_rps: rate,
                    max_batch,
                    batch_timeout_s: slo_s * 0.1,
                    requests: 3000,
                    seed: 9,
                },
            )
            .expect("valid serving config");
            LatencyVsBatch {
                app: app.spec.name.to_owned(),
                slo_ms: app.spec.slo_p99_ms,
                latency_ms: [
                    model.latency(1) * 1e3,
                    model.latency(8) * 1e3,
                    model.latency(32) * 1e3,
                    model.latency(128) * 1e3,
                ],
                max_batch,
                p99_at_load_ms: report.p99_s * 1e3,
                throughput_rps: report.throughput_rps,
            }
        })
        .collect()
}

/// E8 — latency vs batch: applications limit latency, not batch size.
pub fn e8_latency_vs_batch() -> String {
    let mut t = Table::new(&[
        "app",
        "SLO ms",
        "lat@1",
        "lat@8",
        "lat@32",
        "lat@128",
        "max batch",
        "p99@70% ms",
        "inf/s",
    ]);
    for r in e8_data() {
        t.row(vec![
            r.app,
            f(r.slo_ms, 0),
            f(r.latency_ms[0], 2),
            f(r.latency_ms[1], 2),
            f(r.latency_ms[2], 2),
            f(r.latency_ms[3], 2),
            r.max_batch.to_string(),
            f(r.p99_at_load_ms, 2),
            f(r.throughput_rps, 0),
        ]);
    }
    format!(
        "E8 / Fig — latency vs batch on TPUv4i; the SLO picks the batch (Lesson 10)\n{}",
        t.render()
    )
}

/// One point of the E11 tenant sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyPoint {
    /// Chip name.
    pub chip: String,
    /// Number of resident tenants requested.
    pub tenants: usize,
    /// Whether all fit HBM simultaneously.
    pub all_resident: bool,
    /// Weight swaps during the run.
    pub swaps: usize,
    /// Worst per-tenant p99, ms.
    pub worst_p99_ms: f64,
    /// Aggregate throughput, inferences/s.
    pub throughput_rps: f64,
}

/// E11 data: tenant-count sweep on TPUv4i (8 GiB) and TPUv3 (32 GiB).
///
/// Tenants are MLP0-latency models with 1.75 GiB weight footprints, so
/// four fit TPUv4i's HBM and more start swapping over the host link.
/// CMEM is *partitioned* across resident tenants: each tenant's latency
/// model is re-profiled with a `CMEM / n` budget, so packing more
/// tenants also degrades per-request service time (the second cost of
/// multi-tenancy the paper calls out).
pub fn e11_data() -> Vec<TenancyPoint> {
    let mut out = Vec::new();
    for chip in [catalog::tpu_v4i(), catalog::tpu_v3()] {
        let cmem_total = chip.cmem.map_or(0, |c| c.capacity_bytes);
        for &n in &[1usize, 2, 4, 6, 8] {
            let options = CompilerOptions::with_cmem_budget(cmem_total / n as u64);
            let model = LatencyModel::profile(&zoo::mlp0(), &chip, &options, &[1, 8, 32])
                .expect("profiles");
            let tenants: Vec<Tenant> = (0..n)
                .map(|i| Tenant {
                    name: format!("tenant{i}"),
                    latency: model.clone(),
                    weight_bytes: (1.75 * (1u64 << 30) as f64) as u64,
                    arrival_rate_rps: 400.0,
                })
                .collect();
            let report = simulate_tenants(&chip, &tenants, &MultiTenantConfig::default());
            out.push(TenancyPoint {
                chip: chip.name.clone(),
                tenants: n,
                all_resident: report.all_resident,
                swaps: report.swaps,
                worst_p99_ms: report.worst_p99_s() * 1e3,
                throughput_rps: report.throughput_rps,
            });
        }
    }
    out
}

/// E11 — multi-tenancy: tail latency vs resident tenant count.
pub fn e11_multitenancy() -> String {
    let mut t = Table::new(&[
        "chip",
        "tenants",
        "all resident",
        "swaps",
        "worst p99 ms",
        "inf/s",
    ]);
    for p in e11_data() {
        t.row(vec![
            p.chip,
            p.tenants.to_string(),
            if p.all_resident { "yes" } else { "NO" }.to_owned(),
            p.swaps.to_string(),
            f(p.worst_p99_ms, 2),
            f(p.throughput_rps, 0),
        ]);
    }
    format!(
        "E11 / Fig — multi-tenancy (1.75 GiB/tenant, MLP0 latency, 400 rps each; Lesson 7)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_swapping_starts_past_hbm_capacity() {
        let data = e11_data();
        let v4i_4 = data
            .iter()
            .find(|p| p.chip == "TPUv4i" && p.tenants == 4)
            .unwrap();
        let v4i_6 = data
            .iter()
            .find(|p| p.chip == "TPUv4i" && p.tenants == 6)
            .unwrap();
        assert!(v4i_4.all_resident && v4i_4.swaps == 0);
        assert!(!v4i_6.all_resident && v4i_6.swaps > 0);
        assert!(v4i_6.worst_p99_ms > 3.0 * v4i_4.worst_p99_ms);
        // TPUv3's 32 GiB holds all 8.
        let v3_8 = data
            .iter()
            .find(|p| p.chip == "TPUv3" && p.tenants == 8)
            .unwrap();
        assert!(v3_8.all_resident);
    }
}

/// One policy point of E17.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyPoint {
    /// Policy label.
    pub policy: String,
    /// p50 latency, ms.
    pub p50_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
    /// Mean formed batch.
    pub mean_batch: f64,
    /// Whether the p99 SLO held.
    pub meets_slo: bool,
}

/// E17 data: batching policies for BERT0 on TPUv4i at a fixed load.
///
/// The production trade-off behind Lesson 10: batch aggressively and the
/// tail blows the SLO; batch timidly and the chip starves. The policy
/// axis here is the batch-formation timeout at a fixed batch cap.
pub fn e17_data() -> Vec<PolicyPoint> {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let model = LatencyModel::profile(&app, &chip, &options, &[1, 8, 32, 128]).expect("profiles");
    let slo_s = app.spec.slo_p99_ms / 1e3;
    let cap = max_batch_within_slo(&model, slo_s, 256).unwrap_or(1);
    // Fixed offered load: 60% of the capped capacity.
    let rate = 0.6 * model.throughput(cap);
    let policies: Vec<(String, u64, f64)> = vec![
        ("no batching".to_owned(), 1, 0.0),
        ("greedy (cap, no wait)".to_owned(), cap, 0.0),
        ("timeout 10% of SLO".to_owned(), cap, slo_s * 0.1),
        ("timeout 50% of SLO".to_owned(), cap, slo_s * 0.5),
        ("timeout 100% of SLO".to_owned(), cap, slo_s),
    ];
    policies
        .into_iter()
        .map(|(policy, max_batch, timeout)| {
            let r = simulate(
                &model,
                &ServingConfig {
                    arrival_rate_rps: rate,
                    max_batch,
                    batch_timeout_s: timeout,
                    requests: 4000,
                    seed: 21,
                },
            )
            .expect("valid serving config");
            PolicyPoint {
                policy,
                p50_ms: r.p50_s * 1e3,
                p99_ms: r.p99_s * 1e3,
                mean_batch: r.mean_batch,
                meets_slo: r.p99_s <= slo_s,
            }
        })
        .collect()
}

/// E17 (extension) — batching-policy comparison under a p99 SLO.
pub fn e17_batching_policies() -> String {
    let mut t = Table::new(&["policy", "p50 ms", "p99 ms", "mean batch", "meets 10ms SLO"]);
    for p in e17_data() {
        t.row(vec![
            p.policy,
            f(p.p50_ms, 2),
            f(p.p99_ms, 2),
            f(p.mean_batch, 1),
            if p.meets_slo { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    format!(
        "E17 (extension) — batching policies for BERT0 on TPUv4i at 60% load\n{}",
        t.render()
    )
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn e17_policy_tradeoffs() {
        let points = e17_data();
        let by = |name: &str| points.iter().find(|p| p.policy.starts_with(name)).unwrap();
        // Longer waits form bigger batches...
        assert!(by("timeout 50%").mean_batch > by("greedy").mean_batch);
        // ...and cost tail latency.
        assert!(by("timeout 100%").p99_ms > by("greedy").p99_ms);
        // Waiting the whole SLO on batch formation cannot meet the SLO
        // (service time still has to fit).
        assert!(!by("timeout 100%").meets_slo);
        // A moderate timeout keeps the SLO.
        assert!(by("timeout 10%").meets_slo);
    }
}

/// One co-location pair of E20.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferencePoint {
    /// The two co-located apps.
    pub pair: (String, String),
    /// Each alone, ms.
    pub alone_ms: (f64, f64),
    /// Both sharing the chip, ms (one batch each, concurrent).
    pub together_ms: f64,
    /// `together / max(alone)`: 1.0 = free co-location, 2.0 = fully
    /// serialized.
    pub interference: f64,
}

/// E20 data: chip-level co-location interference on TPUv4i.
///
/// Multi-tenancy costs more than memory capacity (E11): two tenants'
/// kernels contend for MXUs and memory channels. We merge two compiled
/// step plans (no dependencies between them) and let the simulator's
/// resource model arbitrate — the slowdown over the slower tenant alone
/// is the interference Lesson 7's isolation machinery must manage.
pub fn e20_data() -> Vec<InterferencePoint> {
    use tpu_hlo::compile;
    use tpu_sim::Simulator;
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let sim = Simulator::new(chip.clone());
    let plan_of = |app: &tpu_workloads::App| {
        let g = app.build(8).expect("builds");
        compile(&g, &chip, &options)
            .expect("compiles")
            .plan()
            .clone()
    };
    let pairs = [
        (zoo::mlp0(), zoo::mlp0()),  // two bandwidth-hungry tenants
        (zoo::mlp0(), zoo::cnn0()),  // bandwidth + compute: complementary
        (zoo::cnn0(), zoo::cnn0()),  // two compute-bound tenants
        (zoo::bert0(), zoo::mlp1()), // heavyweight + lightweight
    ];
    pairs
        .iter()
        .map(|(a, b)| {
            let pa = plan_of(a);
            let pb = plan_of(b);
            let ta = sim.run(&pa).expect("simulates").seconds;
            let tb = sim.run(&pb).expect("simulates").seconds;
            let mut merged = pa;
            merged.append(&pb, None);
            let tab = sim.run(&merged).expect("simulates").seconds;
            InterferencePoint {
                pair: (a.spec.name.to_owned(), b.spec.name.to_owned()),
                alone_ms: (ta * 1e3, tb * 1e3),
                together_ms: tab * 1e3,
                interference: tab / ta.max(tb),
            }
        })
        .collect()
}

/// E20 (extension) — co-location interference at the chip level.
pub fn e20_interference() -> String {
    let mut t = Table::new(&[
        "tenants",
        "A alone ms",
        "B alone ms",
        "together ms",
        "interference",
    ]);
    for p in e20_data() {
        t.row(vec![
            format!("{}+{}", p.pair.0, p.pair.1),
            f(p.alone_ms.0, 3),
            f(p.alone_ms.1, 3),
            f(p.together_ms, 3),
            format!("{}x", f(p.interference, 2)),
        ]);
    }
    format!(
        "E20 (extension) — chip-level co-location interference on TPUv4i (batch 8 each)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod interference_tests {
    use super::*;

    #[test]
    fn e20_interference_is_bounded_and_complementary_pairs_overlap() {
        let points = e20_data();
        for p in &points {
            // Co-location is never free lunch below the slower tenant and
            // never worse than full serialization (within engine noise).
            assert!(p.interference >= 0.99, "{:?}: {}", p.pair, p.interference);
            let serial = p.alone_ms.0 + p.alone_ms.1;
            assert!(
                p.together_ms <= serial * 1.01,
                "{:?}: together {} > serial {serial}",
                p.pair,
                p.together_ms
            );
        }
        // Two bandwidth-bound MLPs fight over the one HBM channel; a
        // bandwidth-bound MLP and a compute-bound CNN overlap almost for
        // free (they want different resources).
        let same = points
            .iter()
            .find(|p| p.pair == ("MLP0".to_owned(), "MLP0".to_owned()))
            .unwrap();
        let mixed = points
            .iter()
            .find(|p| p.pair == ("MLP0".to_owned(), "CNN0".to_owned()))
            .unwrap();
        assert!(
            same.interference > 1.5,
            "identical bandwidth-bound tenants must contend: {}",
            same.interference
        );
        assert!(
            mixed.interference < 1.2,
            "complementary tenants should co-locate nearly free: {}",
            mixed.interference
        );
    }
}
