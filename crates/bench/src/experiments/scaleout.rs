//! E15 (extension): multi-chip pipeline inference over ICI.
//!
//! The paper notes TPUv4i deploys in boards of four chips connected by
//! ICI so that models too large or too slow for one chip can be served
//! by a pod. This experiment pipelines BERT1 (whose 666 MiB of bf16
//! weights overflow a single 128 MiB CMEM) across 1–4 TPUv4i chips.

use tpu_arch::catalog;
use tpu_core::multichip::{simulate_pipeline, PipelineReport};
use tpu_hlo::CompilerOptions;
use tpu_numerics::DType;
use tpu_workloads::zoo::{self, BERT1_CONFIG};

use crate::util::{f, Table};

/// One row of the pod sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutPoint {
    /// Chips in the pipeline.
    pub chips: u64,
    /// The pipeline report.
    pub report: PipelineReport,
    /// Throughput scaling efficiency vs one chip.
    pub efficiency: f64,
}

/// E15 data: BERT1 over 1, 2, 3, 4 TPUv4i chips at batch 8.
pub fn e15_data() -> Vec<ScaleoutPoint> {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let batch = 8;
    let hop = zoo::bert_stage_activation_bytes(&BERT1_CONFIG, batch, DType::Bf16);
    let single = {
        let stages = zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, 1).expect("builds");
        simulate_pipeline(&stages, &chip, &options, hop).expect("simulates")
    };
    [1u64, 2, 3, 4]
        .iter()
        .map(|&chips| {
            let stages =
                zoo::bert_pipeline(&BERT1_CONFIG, batch, DType::Bf16, chips).expect("builds");
            let report = simulate_pipeline(&stages, &chip, &options, hop).expect("simulates");
            let efficiency = report.scaling_efficiency(&single);
            ScaleoutPoint {
                chips,
                report,
                efficiency,
            }
        })
        .collect()
}

/// E15 — pipeline scale-out of BERT1 over a TPUv4i pod.
pub fn e15_scaleout() -> String {
    let mut t = Table::new(&[
        "chips",
        "latency ms",
        "batches/s",
        "efficiency",
        "CMEM-resident weights",
        "bottleneck",
    ]);
    for p in e15_data() {
        let max_stage = p
            .report
            .stage_seconds
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let max_hop = p.report.hop_seconds.iter().cloned().fold(0.0f64, f64::max);
        t.row(vec![
            p.chips.to_string(),
            f(p.report.latency_s * 1e3, 2),
            f(p.report.batches_per_sec, 0),
            format!("{}%", f(p.efficiency * 100.0, 0)),
            format!("{}%", f(p.report.cmem_fraction * 100.0, 0)),
            if max_hop > max_stage {
                "ICI"
            } else {
                "compute"
            }
            .to_owned(),
        ]);
    }
    format!(
        "E15 (extension) — BERT1 pipelined over a TPUv4i pod (batch 8, bf16)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_throughput_scales_and_cmem_residency_grows() {
        let points = e15_data();
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].report.batches_per_sec > pair[0].report.batches_per_sec,
                "throughput must grow with chips"
            );
            assert!(pair[1].report.cmem_fraction >= pair[0].report.cmem_fraction);
        }
        let four = &points[3];
        assert!(
            four.efficiency > 0.6,
            "4-chip efficiency {}",
            four.efficiency
        );
        // Compute, not ICI, should be the bottleneck at seq 128 / batch 8.
        let max_stage = four
            .report
            .stage_seconds
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let max_hop = four.report.hop_seconds.iter().cloned().fold(0.0, f64::max);
        assert!(max_stage > max_hop);
    }
}
